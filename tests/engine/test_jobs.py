"""JobPlan invariants and the per-job seeding contract."""

import numpy as np
import pytest

from repro.engine import Job, JobPlan
from repro.simkit.rng import seed_fingerprint, spawn_seedseq


def _value(params, seed_seq):
    return params


def _plan(names, seed=11):
    jobs = [Job(name=n, fn=_value, params={"n": n}) for n in names]
    return JobPlan(experiment="toy", seed=seed, jobs=jobs, reduce=lambda values: values)


def test_duplicate_job_names_rejected():
    with pytest.raises(ValueError, match="duplicate job names"):
        _plan(["a", "b", "a"])


def test_job_seedseq_matches_spawn_contract():
    plan = _plan(["a", "b"])
    seq = plan.job_seedseq(plan.jobs[0])
    expected = spawn_seedseq(11, "toy", "a")
    assert seed_fingerprint(seq) == seed_fingerprint(expected)


def test_job_seeds_independent_of_plan_composition():
    # the same job in a bigger plan keeps the same seed: subsets reproduce slices
    small = _plan(["a"])
    big = _plan(["c", "b", "a"])
    assert small.job_seeds()["a"] == big.job_seeds()["a"]


def test_job_seeds_differ_across_experiments():
    a = JobPlan(experiment="exp1", seed=5, jobs=[Job("j", _value)], reduce=dict)
    b = JobPlan(experiment="exp2", seed=5, jobs=[Job("j", _value)], reduce=dict)
    assert a.job_seeds()["j"] != b.job_seeds()["j"]


def test_job_seedseq_yields_working_generator():
    plan = _plan(["a"])
    rng = np.random.default_rng(plan.job_seedseq(plan.jobs[0]))
    assert 0.0 <= rng.random() < 1.0

"""TOPO — figure2-style survivability grids over the topology catalog.

The generalization ROADMAP item 2 asks for: the same P[Success]-vs-size
story as Figure 2, but over *any* family in
:mod:`repro.topology.builders` — the paper's dual-hub cluster (whose fast
path replays the specialized kernel's exact streams), k-hub clusters,
two- and three-level fat trees, and multi-cluster WAN interconnects.

The decomposition mirrors :mod:`~repro.experiments.figure2`: one engine
job per (topology spec, size) runs the common-random-numbers sweep kernel
(:func:`repro.analysis.topokernel.simulate_topology_grid`) over the whole
f-grid in a single sampling pass, with each job's stream spawned from
``(seed, "topologysweep", job name)`` — so ``--jobs N``, checkpoint
resume, and any subset of the grid reproduce the full run bit for bit.
Manifests record each family's :meth:`~repro.topology.model.Topology.describe`
block, and every precision cell carries the topology name for ``repro obs
precision``/``watch``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import exact_topology_success, simulate_topology_grid
from repro.engine import ExperimentSpec, Job, JobPlan, cell_point, register, run_plan
from repro.experiments.base import (
    ExperimentResult,
    add_precision_artifacts,
    collect_precision_cells,
)
from repro.topology import build_topology, parse_topology_spec

#: one spec per shipped family — the end-to-end default sweep
DEFAULT_TOPOLOGIES = ("dual-hub", "khub:hubs=3", "fattree2", "fattree3", "multicluster")
F_VALUES = tuple(range(1, 9))
SIZES = (4, 6, 8, 12, 16)

#: exhaustive-enumeration budget for the exact overlay (beyond it the
#: overlay is skipped for that cell rather than stalling the reduction)
EXACT_BUDGET = 200_000


def _topo_grid(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> dict[str, Any]:
    """Engine job: the CRN f-grid for one (topology spec, size) point.

    Returns string-keyed rows exactly like figure2's ``_mc_curve`` —
    floats for fixed-count runs, :meth:`CellPrecision.to_row` dicts (with
    the topology name) under ``target_ci`` — so the checkpoint codec and
    the shared precision tooling apply unchanged.
    """
    topology = build_topology(params["spec"], size=params["size"])
    rng = np.random.default_rng(seed_seq)
    fs = tuple(f for f in params["fs"] if f <= topology.width)
    target = params.get("target_ci")
    method = params.get("method", "crn")
    if target is not None:
        cells = simulate_topology_grid(
            topology,
            fs,
            params["iterations"],
            rng,
            target_half_width=target,
            confidence=params.get("ci_confidence", 0.95),
            method=method,
        )
        return {str(f): cell.to_row() for f, cell in cells.items()}
    estimates = simulate_topology_grid(topology, fs, params["iterations"], rng, method=method)
    return {str(f): p for f, p in estimates.items()}


def build_plan(
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    sizes: tuple[int, ...] = SIZES,
    f_values: tuple[int, ...] = F_VALUES,
    mc_iterations: int = 20_000,
    seed: int = 2100,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
) -> JobPlan:
    """One sweep job per (topology spec, size) grid point."""
    for spec in topologies:
        parse_topology_spec(spec)  # fail before any job runs, with the catalog
    jobs = []
    for spec in topologies:
        for size in sizes:
            params: dict[str, Any] = {
                "spec": spec,
                "size": size,
                "fs": list(f_values),
                "iterations": mc_iterations,
            }
            if target_ci is not None:
                params["target_ci"] = target_ci
                params["ci_confidence"] = ci_confidence
            if mc_method != "crn":
                params["method"] = mc_method
            jobs.append(Job(name=f"mc/{spec}/size={size}", fn=_topo_grid, params=params))

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("topologysweep")
        described = {spec: build_topology(spec, size=sizes[-1]).describe() for spec in topologies}
        result.meta = {
            "seed": seed,
            "topologies": described,
            "sizes": list(sizes),
            "f_values": list(f_values),
            "mc_iterations": mc_iterations,
            "mc_method": mc_method,
        }
        if target_ci is not None:
            result.meta["target_ci"] = target_ci
            result.meta["ci_confidence"] = ci_confidence
        xs = list(sizes)
        for spec in topologies:
            curves = {
                f"f={f}": (
                    xs,
                    [cell_point(values, f"mc/{spec}/size={size}", str(f)) for size in sizes],
                )
                for f in f_values
            }
            result.add_series(
                f"mc_{spec.replace(':', '_').replace(',', '_').replace('=', '')}",
                curves,
                caption=f"P[Success] vs size: {spec} ({mc_iterations} iterations/point)"
                if target_ci is None
                else f"P[Success] vs size: {spec} (adaptive to ±{target_ci:g})",
                x_label="size",
                y_label="P[Success]",
            )
        # exact anchors where a closed form or a small enumeration exists:
        # the generic-vs-exact agreement the acceptance criteria pin down
        rows = []
        for spec in topologies:
            for size in sizes:
                topology = build_topology(spec, size=size)
                for f in f_values:
                    if f > topology.width:
                        continue
                    mc = cell_point(values, f"mc/{spec}/size={size}", str(f))
                    try:
                        exact_p = exact_topology_success(topology, f, max_combinations=EXACT_BUDGET)
                    except ValueError:  # universe too large to enumerate
                        continue
                    rows.append([spec, size, f, exact_p, mc, abs(mc - exact_p)])
        if rows:
            result.add_table(
                "exact_check",
                ["topology", "size", "f", "exact", "montecarlo", "abs_error"],
                rows,
                caption="Generic kernel vs exact survivability (closed form or enumeration)",
            )
        result.add_table(
            "families",
            ["topology", "family", "vertices", "width", "terminals", "predicate"],
            [
                [spec, d["family"], d["vertices"], d["width"], d["terminals"], d["predicate"]]
                for spec, d in described.items()
            ],
            caption=f"Topology catalog at size={sizes[-1]}",
        )
        cells = []
        for spec in topologies:
            cells.extend(collect_precision_cells(values, prefix=f"mc/{spec}/size="))
        add_precision_artifacts(result, cells, target_ci, ci_confidence)
        return result

    return JobPlan(
        experiment="topologysweep",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        meta={
            "total_trials": sum(j.params.get("iterations", 0) for j in jobs),
            "topology": ",".join(topologies),
        },
    )


def run(
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    sizes: tuple[int, ...] = SIZES,
    f_values: tuple[int, ...] = F_VALUES,
    mc_iterations: int = 20_000,
    seed: int = 2100,
    topology: str | None = None,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Survivability grid per topology family.

    ``topology`` (the CLI's ``--topology`` spec string, e.g.
    ``"khub:hubs=3"``) restricts the sweep to one family; otherwise every
    entry of ``topologies`` runs.  ``target_ci`` switches every cell to
    adaptive interval-targeted stopping, exactly as in figure2.
    ``mc_method="stratified"`` uses hub/spine/core-state stratification on
    families that declare strata (``"stratified-cv"`` additionally needs
    the dual-hub closed-form control variate).
    """
    if topology is not None:
        topologies = (topology,)
    plan = build_plan(
        topologies=topologies,
        sizes=sizes,
        f_values=f_values,
        mc_iterations=mc_iterations,
        seed=seed,
        target_ci=target_ci,
        ci_confidence=ci_confidence,
        mc_method=mc_method,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="topologysweep",
        run=run,
        profiles={
            "quick": {"mc_iterations": 2_000, "sizes": (4, 6, 8)},
            "full": {},
        },
        parallel=True,
        order=150,  # after every paper artifact: this is the generalization
        description="P[Success] grids over the pluggable topology catalog",
    )
)

"""End-to-end tests of each experiment driver at reduced scale."""

import math

import pytest

from repro.experiments import (
    ablations,
    crossovers,
    desvalidation,
    failover,
    figure1,
    figure2,
    figure3,
    motivation,
)


def test_figure1_checkpoints_and_des_validation():
    result = figure1.run(n_max=30, validate_des=True, des_nodes=4)
    readoff = {row[0]: row for row in result.tables["readoff"].rows}
    # monotone: larger budget supports more nodes within 1s
    assert readoff["5%"][1] < readoff["10%"][1] < readoff["25%"][1]
    # 10% budget at N=90 near one second (paper checkpoint)
    assert 0.9 < readoff["10%"][2] < 1.2
    # DES-measured probe fraction within 10% of target
    for row in result.tables["des_validation"].rows:
        assert abs(row[3] - 1.0) < 0.10, row


def test_figure2_curves_rise_toward_one():
    result = figure2.run(f_values=(2, 5), n_max=40, mc_iterations=500)
    eq = result.series["equation1"].curves
    for name, (ns, ps) in eq.items():
        assert ps[-1] > ps[0]
        assert ps[-1] > 0.9
    assert "montecarlo" in result.series
    endpoints = result.tables["endpoints"].rows
    assert [row[0] for row in endpoints] == [2, 5]


def test_figure3_mad_decreases():
    result = figure3.run(f_values=(3,), iteration_grid=(10, 1_000), n_max=25)
    xs, mad = result.series["mad"].curves["f=3"]
    assert mad[-1] < mad[0]
    assert result.tables["at_1000_iterations"].rows[0][1] < 0.02


def test_crossovers_match_paper():
    result = crossovers.run(f_values=(2, 3, 4))
    rows = {row[0]: row[1] for row in result.tables["crossovers"].rows}
    assert rows == {2: 18, 3: 32, 4: 45}


def test_motivation_near_13_percent():
    result = motivation.run(fleet_years=10, seed=0)
    headline = result.tables["headline"].rows[0]
    assert abs(headline[1] - 0.13) < 0.03


def test_failover_drs_beats_reactive():
    drs = failover.run_one("drs", "peer-nic", post_failure_s=20.0)
    reactive = failover.run_one("reactive", "peer-nic", post_failure_s=20.0)
    static = failover.run_one("static", "peer-nic", post_failure_s=20.0)
    assert drs.recovered and reactive.recovered and not static.recovered
    assert drs.worst_latency_s < reactive.worst_latency_s
    assert drs.repair_latency_s < reactive.repair_latency_s
    assert drs.delivered_fraction == 1.0
    assert static.delivered_fraction < 1.0


def test_failover_crossed_scenario_two_hop():
    drs = failover.run_one("drs", "crossed", post_failure_s=20.0)
    assert drs.recovered and drs.delivered_fraction == 1.0


def test_failover_matrix_runs():
    result = failover.run(protocols=("drs", "static"), scenarios=("hub",), post_failure_s=10.0)
    assert len(result.tables["matrix"].rows) == 2


def test_desvalidation_within_noise():
    result = desvalidation.run(n=6, f_values=(2,), replicates=20, seed=5)
    row = result.tables["validation"].rows[0]
    measured, expected, diff, two_sigma = row[3], row[4], row[5], row[6]
    assert abs(diff) <= max(2 * two_sigma, 0.15)
    assert 0 <= measured <= 1


def test_desvalidation_process_pool_path():
    import numpy as np

    from repro.experiments.desvalidation import empirical_success

    # the parallel path must produce a sane estimate (determinism holds per
    # rng state; worker count must not change the sampled seeds)
    serial = empirical_success(4, 2, 12, np.random.default_rng(3), workers=1)
    parallel = empirical_success(4, 2, 12, np.random.default_rng(3), workers=2)
    assert 0 <= serial <= 1 and 0 <= parallel <= 1
    # note: serial path consumes rng differently (no pre-drawn seeds), so
    # only the parallel path is seed-for-seed deterministic:
    parallel_again = empirical_success(4, 2, 12, np.random.default_rng(3), workers=2)
    assert parallel == parallel_again


def test_desvalidation_curve_tracks_equation1():
    result = desvalidation.run_curve(f=2, n_values=(4, 6), replicates=25, seed=9)
    rows = result.tables["curve_points"].rows
    assert len(rows) == 2
    for n, measured, analytic, diff, two_sigma in rows:
        assert abs(diff) < max(0.2, 2 * two_sigma)  # coarse at 25 replicates
    assert "Equation 1" in result.series["curve"].curves
    assert "DES (live DRS)" in result.series["curve"].curves


def test_ablations_orderings():
    result = ablations.run(
        n_values=(10, 30),
        f_values=(2,),
        mc_iterations=20_000,
        sweep_periods=(0.5, 2.0),
        run_des=True,
    )
    for row in result.tables["survivability"].rows:
        n, f, full, no_two_hop, single = row
        assert no_two_hop <= full + 0.01
        assert single < full
    periods = result.tables["sweep_period"].rows
    # longer sweep -> later detection
    assert periods[0][1] < periods[1][1]
    # longer sweep -> less probe traffic
    assert periods[0][2] > periods[1][2]


def test_single_backplane_closed_form_brute_force():
    from itertools import combinations

    from repro.experiments.ablations import single_backplane_success

    for n in (3, 5, 7):
        for f in range(0, n + 2):
            good = total = 0
            for failure_set in combinations(range(n + 1), f):
                failed = set(failure_set)
                total += 1
                hub_up = 0 not in failed
                a_up = 1 not in failed
                b_up = 2 not in failed
                good += hub_up and a_up and b_up
            assert single_backplane_success(n, f) == pytest.approx(good / total), (n, f)


def test_runner_cli_list_and_unknown(capsys):
    from repro.experiments.runner import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "figure2" in out and "desval" in out
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_runner_cli_runs_one(tmp_path, capsys):
    from repro.experiments.runner import main

    assert main(["crossovers", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "crossovers.txt").exists()
    assert (tmp_path / "crossovers_crossovers.csv").exists()

"""Unit tests for the metrics registry, gauges, and histograms."""

import json

import pytest

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    ensure_core_metrics,
    resolve_registry,
    use_registry,
)
from repro.obs.metrics import CORE_COUNTERS, CORE_GAUGES, CORE_HISTOGRAMS
from repro.simkit import Counter


def test_gauge_set_add_reset():
    g = Gauge("depth")
    g.set(3.0)
    g.add(-1.0)
    assert g.value == 2.0
    g.reset()
    assert g.value == 0.0


def test_histogram_observe_and_stats():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(106.5)
    assert h.mean() == pytest.approx(21.3)
    assert h.min == 0.5 and h.max == 100.0
    # counts: <=1: 1, <=2: 2, <=4: 1, +inf: 1
    assert h.counts == [1, 2, 1, 1]


def test_histogram_quantile_interpolates():
    h = Histogram("lat", buckets=(1.0, 2.0))
    for _ in range(10):
        h.observe(0.5)  # all in the first bucket
    # target = 5 of 10 within [0, 1] -> interpolated midpoint
    assert h.quantile(0.5) == pytest.approx(0.5)
    assert h.quantile(1.0) == pytest.approx(1.0)


def test_histogram_quantile_empty_and_overflow():
    h = Histogram("lat", buckets=(1.0,))
    assert h.quantile(0.5) == 0.0
    h.observe(50.0)
    # +inf observations can only report the largest finite bound
    assert h.quantile(0.99) == 1.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("x", buckets=())
    with pytest.raises(ValueError):
        Histogram("x", buckets=(2.0, 1.0))


def test_registry_get_or_create_shares_objects():
    reg = MetricsRegistry()
    a = reg.counter("frames_total")
    b = reg.counter("frames_total")
    assert a is b
    assert reg.get("frames_total") is a
    # same name, different labels -> distinct series
    c = reg.counter("frames_total", labels={"nic": "0"})
    assert c is not a
    assert len(reg) == 2


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_registry_attach_legacy_counter():
    reg = MetricsRegistry()
    legacy = Counter("bits_carried")
    assert reg.attach(legacy) is legacy
    assert reg.get("bits_carried") is legacy
    # attaching again under the same name returns the registered one
    assert reg.attach(Counter("bits_carried")) is legacy


def test_snapshot_shapes():
    reg = MetricsRegistry()
    reg.counter("c").add(2.0)
    reg.gauge("g").set(1.5)
    h = reg.histogram("h", buckets=(1.0, 2.0))
    h.observe(0.5)
    rows = {row["name"]: row for row in reg.snapshot()}
    assert rows["c"]["kind"] == "counter" and rows["c"]["value"] == 2.0
    assert rows["g"]["kind"] == "gauge" and rows["g"]["value"] == 1.5
    hist = rows["h"]
    assert hist["count"] == 1 and hist["min"] == 0.5 and hist["max"] == 0.5
    assert hist["buckets"][-1] == ["+inf", 0]
    # every snapshot row must be JSON-serializable as-is
    for row in reg.snapshot():
        json.dumps(row)


def test_prometheus_rendering():
    reg = MetricsRegistry()
    reg.counter("frames_total", labels={"nic": "0"}).add(3)
    h = reg.histogram("rtt_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(5.0)
    text = reg.render_prometheus()
    assert "# TYPE frames_total counter" in text
    assert 'frames_total{nic="0"} 3' in text
    # cumulative buckets: 1 at le=0.1, still 1 at le=1.0, 2 at +Inf
    assert 'rtt_seconds_bucket{le="0.1"} 1' in text
    assert 'rtt_seconds_bucket{le="1"} 1' in text
    assert 'rtt_seconds_bucket{le="+Inf"} 2' in text
    assert "rtt_seconds_sum 5.05" in text
    assert "rtt_seconds_count 2" in text


def test_registry_reset_keeps_registrations():
    reg = MetricsRegistry()
    reg.counter("c").add(5)
    reg.histogram("h").observe(1.0)
    reg.reset()
    assert reg.counter("c").value == 0
    assert reg.histogram("h").count == 0
    assert len(reg) == 2


def test_use_registry_scopes_current():
    outer = current_registry()
    scoped = MetricsRegistry()
    with use_registry(scoped):
        assert current_registry() is scoped
        assert resolve_registry(None) is scoped
        explicit = MetricsRegistry()
        assert resolve_registry(explicit) is explicit
    assert current_registry() is outer


def test_ensure_core_metrics_registers_stable_schema():
    reg = ensure_core_metrics(MetricsRegistry())
    names = set(reg.names())
    for name, _buckets, _help in CORE_HISTOGRAMS:
        assert name in names
    for name, _help in CORE_COUNTERS:
        assert name in names
    for name, _help in CORE_GAUGES:
        assert name in names
    # idempotent: re-running never duplicates or re-kinds anything
    assert ensure_core_metrics(reg) is reg
    assert reg.histogram("drs_broadcast_fanout").bounds == tuple(float(b) for b in DEFAULT_COUNT_BUCKETS)


def test_histogram_observation_on_bucket_bound_is_inclusive():
    # Bounds are Prometheus-style upper bounds (le): a value exactly on a
    # bound must land in that bucket, not the next one.
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
    h.observe(1.0)
    h.observe(2.0)
    h.observe(4.0)
    assert h.counts == [1, 1, 1, 0]
    assert h.quantile(0.0) == 0.0  # q=0 interpolates from the bucket floor


def test_histogram_negative_observation_lands_in_first_bucket():
    h = Histogram("delta", buckets=(0.0, 1.0))
    h.observe(-3.5)
    h.observe(0.5)
    assert h.counts == [1, 1, 0]
    assert h.min == -3.5 and h.max == 0.5
    assert h.sum == pytest.approx(-3.0)


def test_histogram_empty_snapshot_renders():
    from repro.viz import metrics_summary_table

    registry = MetricsRegistry()
    registry.histogram("never_observed_seconds")
    snapshot = registry.snapshot()
    (row,) = snapshot
    assert row["count"] == 0 and row["min"] is None and row["max"] is None
    text = metrics_summary_table(snapshot, title="t")
    assert "never_observed_seconds" in text and "-" in text
    assert metrics_summary_table([], title="t") == "t: (empty)"

"""FIG1 bench — response time vs nodes per bandwidth budget (100 Mb/s).

Regenerates Figure 1's curve family and read-off table; asserts the paper's
"~90 hosts in under a second at 10%" checkpoint and curve orderings.
"""

import numpy as np

from repro.analysis import max_nodes_within, response_time_curve, sweep_time_s
from repro.experiments import figure1


def test_figure1_curves(benchmark):
    ns = np.arange(2, 121)

    def build():
        return response_time_curve(ns, budgets=[0.05, 0.10, 0.15, 0.25])

    curves = benchmark(build)
    # paper shape: quadratic growth, ordered by budget
    for budget, series in curves.items():
        assert series[-1] > series[0]
    assert (curves[0.25] < curves[0.05]).all()
    # paper checkpoint
    assert 0.9 < sweep_time_s(90, 0.10) < 1.2
    assert max_nodes_within(1.1, 0.10) >= 90


def test_figure1_report(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure1.run(n_max=120, validate_des=False), rounds=1, iterations=1, warmup_rounds=0
    )
    rows = result.tables["readoff"].rows
    with capsys.disabled():
        print()
        print(result.render())
    budgets = [row[0] for row in rows]
    assert budgets == ["5%", "10%", "15%", "25%"]


def test_figure1_des_cross_validation(once):
    result = once(figure1.run, n_max=10, validate_des=True, des_nodes=6)
    for row in result.tables["des_validation"].rows:
        # measured probe fraction within 10% of the configured budget
        assert abs(row[3] - 1.0) < 0.10, row

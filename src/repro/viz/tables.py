"""Aligned plain-text tables."""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows under headers with column alignment.

    Numbers are right-aligned, text left-aligned; floats use %.6g.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    numeric = [
        bool(rows) and all(isinstance(row[i], (int, float)) for row in rows)
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)

"""repro — reproduction of the DRS network-survivability study.

A. Chowdhury, O. Frieder, P. Luse, P.-J. Wan, *Network Survivability
Simulation of a Commercially Deployed Dynamic Routing System Protocol*,
IPDPS 2000 Workshops, LNCS 1800.

The package layers, bottom to top:

* :mod:`repro.simkit` — deterministic discrete-event simulation kernel,
* :mod:`repro.netsim` — the dual-backplane cluster substrate (hubs, NICs,
  fault injection),
* :mod:`repro.protocols` — host stack: routing tables, forwarding IP layer,
  ICMP, UDP, TCP-lite,
* :mod:`repro.drs` — the Dynamic Routing System protocol (the paper's
  contribution): proactive link monitoring + failover,
* :mod:`repro.baselines` — reactive rerouting, RIP-like distance vector,
  static routing,
* :mod:`repro.analysis` — Equation 1 closed form, Monte Carlo validation,
  proactive-cost model,
* :mod:`repro.cluster` — messaging layer, voice-mail workload, fleet
  failure-log generator,
* :mod:`repro.experiments` — drivers regenerating every figure and table.

Quickstart::

    from repro import (
        Simulator, build_dual_backplane_cluster, install_stacks,
        DrsConfig, install_drs, success_probability,
    )

    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n=10)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.5))
    sim.run(until=2.0)
    cluster.faults.fail("nic3.0")      # kill a NIC...
    sim.run(until=4.0)                  # ...DRS reroutes around it
    print(stacks[0].table.lookup(3))    # -> direct route on network 1

    success_probability(18, 2)          # Equation 1: 0.9900...
"""

from repro.simkit import Simulator
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.drs import DrsConfig, install_drs
from repro.baselines import install_distvector, install_reactive, install_static_only
from repro.analysis import (
    crossover_n,
    simulate_success_probability,
    success_curve,
    success_probability,
    sweep_time_s,
)
from repro.cluster import install_messaging
from repro.scenario import load_scenario, run_scenario

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "build_dual_backplane_cluster",
    "install_stacks",
    "DrsConfig",
    "install_drs",
    "install_reactive",
    "install_distvector",
    "install_static_only",
    "install_messaging",
    "success_probability",
    "success_curve",
    "crossover_n",
    "simulate_success_probability",
    "sweep_time_s",
    "load_scenario",
    "run_scenario",
    "__version__",
]

"""Tests for scenario execution and the drs-sim CLI."""

import json

import pytest

from repro.scenario import ScenarioError, ScenarioSpec, run_scenario
from repro.scenario.cli import main


def _spec(**overrides):
    raw = {
        "name": "test",
        "nodes": 4,
        "duration_s": 8.0,
        "protocol": {"kind": "drs", "sweep_period_s": 0.2, "probe_timeout_s": 0.01},
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


def test_bare_scenario_runs():
    report = run_scenario(_spec())
    assert report.duration_s == 8.0
    assert report.faults_injected == 0
    assert report.wire_bits > 0  # DRS probes ran
    assert "metric" in report.render()


def test_fault_script_executes_and_repairs():
    report = run_scenario(_spec(faults=[{"at": 2.0, "fail": "nic1.0"}, {"at": 5.0, "repair": "nic1.0"}]))
    assert report.faults_injected == 2
    assert report.routing_repairs >= 1
    assert report.repair_latencies and min(report.repair_latencies) >= 0


def test_unknown_component_rejected():
    with pytest.raises(ScenarioError, match="unknown component"):
        run_scenario(_spec(faults=[{"at": 1.0, "fail": "nic99.7"}]))


def test_stream_workload_metrics():
    report = run_scenario(
        _spec(workload={"kind": "stream", "src": 0, "dst": 2, "interval_s": 0.2, "message_bytes": 128})
    )
    metrics = report.workload_metrics
    assert metrics["stream messages sent"] > 20
    assert metrics["stream messages delivered"] > 20


def test_stream_workload_validation():
    with pytest.raises(ScenarioError, match="src/dst"):
        run_scenario(_spec(workload={"kind": "stream", "src": 0, "dst": 0}))
    with pytest.raises(ScenarioError, match="unknown stream options"):
        run_scenario(_spec(workload={"kind": "stream", "sizee": 1}))


def test_voicemail_workload_runs():
    report = run_scenario(
        _spec(nodes=5, workload={"kind": "voicemail", "call_rate_per_s": 20.0, "message_bytes": 1000})
    )
    assert report.workload_metrics["voicemail operations"] > 20


def test_mpi_workload_runs():
    report = run_scenario(
        _spec(nodes=5, workload={"kind": "mpi", "iterations": 10, "compute_time_s": 0.01})
    )
    assert report.workload_metrics["mpi job completed"] is True


def test_bad_protocol_options_rejected():
    with pytest.raises(ScenarioError, match="bad protocol options"):
        run_scenario(_spec(protocol={"kind": "drs", "swep_period_s": 1.0}))
    with pytest.raises(ScenarioError, match="static protocol takes no options"):
        run_scenario(_spec(protocol={"kind": "static", "x": 1}))


def test_all_protocols_run():
    for protocol in ({"kind": "static"}, {"kind": "reactive"}, {"kind": "distvector"}, {"kind": "linkstate"}):
        report = run_scenario(_spec(protocol=protocol))
        assert report.duration_s == 8.0


def test_cli_single_report(tmp_path, capsys):
    path = tmp_path / "s.json"
    path.write_text(json.dumps({"name": "cli", "nodes": 3, "duration_s": 2.0}))
    assert main([str(path)]) == 0
    assert "scenario: cli" in capsys.readouterr().out


def test_cli_compare_mode(tmp_path, capsys):
    paths = []
    for i, name in enumerate(("a", "b")):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps({"name": name, "nodes": 3, "duration_s": 2.0}))
        paths.append(str(path))
    assert main(paths + ["--compare"]) == 0
    out = capsys.readouterr().out
    assert "scenario comparison" in out and "a" in out and "b" in out


def test_cli_reports_spec_errors(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "x", "nodes": 1, "duration_s": 2.0}))
    assert main([str(path)]) == 2
    assert "error" in capsys.readouterr().err

"""Cross-process observability aggregation: registry merge + heartbeat absorb."""

import pytest

from repro.obs.metrics import MetricsRegistry, ensure_core_metrics
from repro.obs.progress import ProgressReporter


def test_merge_counters_adds_values_and_events():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("hits").add(3)
    b.counter("hits").add(4)
    b.counter("only_b").add(2)
    a.merge(b)
    assert a.counter("hits").value == 7
    assert a.counter("only_b").value == 2


def test_merge_gauges_adds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("inflight").set(2)
    b.gauge("inflight").set(5)
    a.merge(b)
    assert a.gauge("inflight").value == 7


def test_merge_histograms_combines_counts_and_extremes():
    a, b = MetricsRegistry(), MetricsRegistry()
    bounds = (0.1, 1.0, 10.0)
    ha = a.histogram("latency", buckets=bounds)
    hb = b.histogram("latency", buckets=bounds)
    ha.observe(0.05)
    hb.observe(5.0)
    hb.observe(20.0)
    a.merge(b)
    merged = a.histogram("latency", buckets=bounds)
    assert merged.count == 3
    assert merged.min == 0.05
    assert merged.max == 20.0
    assert merged.sum == pytest.approx(25.05)


def test_merge_histogram_bounds_mismatch_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("latency", buckets=(1.0, 2.0))
    b.histogram("latency", buckets=(1.0, 5.0)).observe(1.5)
    with pytest.raises(ValueError, match="bucket bounds"):
        a.merge(b)


def test_merge_core_registries_round_trips():
    parent = ensure_core_metrics(MetricsRegistry())
    worker = ensure_core_metrics(MetricsRegistry())
    worker.counter("sim_events_total").add(100)
    parent.merge(worker)
    assert parent.counter("sim_events_total").value == 100


def test_absorb_folds_worker_summary_into_parent():
    parent = ProgressReporter("run", interval_s=1e12)
    parent.add(10, jobs=1)
    worker = ProgressReporter("run", interval_s=1e12)
    worker.add(25, pair_down=2)
    parent.absorb(worker.summary())
    summary = parent.summary()
    assert summary["trials"] == 35
    assert summary["counts"] == {"jobs": 1, "pair_down": 2}


def test_absorb_tolerates_minimal_summary():
    parent = ProgressReporter("run", interval_s=1e12)
    parent.absorb({})
    assert parent.summary()["trials"] == 0


def _worker_registry(trials: int, latency_obs: list[float], hook_errors: int) -> MetricsRegistry:
    """One simulated pool worker's registry, the shape executors merge back."""
    registry = ensure_core_metrics(MetricsRegistry())
    registry.counter("sim_events_total").add(trials)
    registry.counter("hook_errors_total").add(hook_errors)
    histogram = registry.histogram("failover_latency_seconds", buckets=(0.1, 1.0, 10.0))
    for value in latency_obs:
        histogram.observe(value)
    return registry


class TestFleetMerge:
    """Three-plus worker registries folding into one parent, as a pool run does."""

    def test_three_workers_with_overlapping_histograms(self):
        parent = ensure_core_metrics(MetricsRegistry())
        workers = [
            _worker_registry(100, [0.05, 0.5], hook_errors=0),
            _worker_registry(250, [0.5, 5.0], hook_errors=2),
            _worker_registry(150, [5.0, 50.0], hook_errors=1),
        ]
        for worker in workers:
            parent.merge(worker)
        assert parent.counter("sim_events_total").value == 500
        assert parent.counter("hook_errors_total").value == 3
        merged = parent.histogram("failover_latency_seconds", buckets=(0.1, 1.0, 10.0))
        assert merged.count == 6
        assert merged.min == 0.05
        assert merged.max == 50.0
        assert merged.sum == pytest.approx(61.05)

    def test_merge_is_order_independent(self):
        workers = [
            _worker_registry(10, [0.2], hook_errors=1),
            _worker_registry(20, [2.0], hook_errors=0),
            _worker_registry(30, [20.0], hook_errors=4),
        ]
        forward = ensure_core_metrics(MetricsRegistry())
        for worker in workers:
            forward.merge(worker)
        backward = ensure_core_metrics(MetricsRegistry())
        for worker in reversed(workers):
            backward.merge(worker)
        assert forward.snapshot() == backward.snapshot()

    def test_absorbing_three_worker_reporters(self):
        parent = ProgressReporter("run", interval_s=1e12)
        for trials, counts in ((100, {"jobs": 3}), (250, {"jobs": 5, "pair_down": 2}),
                               (150, {"jobs": 4, "hook_errors": 1})):
            worker = ProgressReporter("run", interval_s=1e12)
            worker.add(trials, **counts)
            parent.absorb(worker.summary())
        summary = parent.summary()
        assert summary["trials"] == 500
        assert summary["counts"] == {"jobs": 12, "pair_down": 2, "hook_errors": 1}

"""Bench telemetry: persist pytest-benchmark results as ``BENCH_*.json``.

``benchmarks/`` guards the hot paths, but until now its numbers evaporated
with the terminal: there was no committed trajectory to compare a perf PR
against.  The hook in ``benchmarks/conftest.py`` calls
:func:`write_bench_snapshots` at session end, writing one
``BENCH_<module>.json`` per benchmark module with min/mean/max/stddev/ops
per test plus environment provenance.  Committing a snapshot after a perf
change gives the next PR a baseline to diff (`git diff` on the JSON is the
whole comparison tool).

Set ``BENCH_TELEMETRY_DIR`` to redirect the snapshots (e.g. to a scratch
directory in CI); set it to an empty string to disable writing entirely.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Iterable

BENCH_SCHEMA_VERSION = 1

#: stat fields copied from pytest-benchmark's Stats object when present
STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "iqr", "ops", "rounds", "total")


def _bench_row(bench: Any) -> dict[str, Any]:
    """Extract one benchmark's identity + stats, tolerant of API drift."""
    row: dict[str, Any] = {
        "name": getattr(bench, "name", "?"),
        "fullname": getattr(bench, "fullname", getattr(bench, "name", "?")),
        "group": getattr(bench, "group", None),
    }
    stats = getattr(bench, "stats", None)
    # pytest-benchmark nests the Stats object under Metadata.stats
    inner = getattr(stats, "stats", stats)
    for field in STAT_FIELDS:
        value = getattr(inner, field, None)
        if isinstance(value, (int, float)):
            row[field] = float(value)
    # benchmark.extra_info entries (e.g. a measured speedup ratio) ride along
    extra = getattr(bench, "extra_info", None)
    if isinstance(extra, dict) and extra:
        row["extra_info"] = {
            k: (float(v) if isinstance(v, (int, float)) else str(v)) for k, v in extra.items()
        }
    return row


def _module_of(fullname: str) -> str:
    """``benchmarks/bench_x.py::test_y`` -> ``bench_x``."""
    file_part = fullname.split("::", 1)[0]
    return Path(file_part).stem or "bench"


def write_bench_snapshots(benchmarks: Iterable[Any], out_dir: str | Path) -> list[Path]:
    """Write one ``BENCH_<module>.json`` per benchmark module; returns paths.

    Rows are sorted by test name so reruns diff cleanly; the volatile parts
    (timings, timestamp) are exactly what a perf PR wants to see change.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for bench in benchmarks:
        row = _bench_row(bench)
        groups.setdefault(_module_of(row["fullname"]), []).append(row)
    out_dir = Path(out_dir)
    paths: list[Path] = []
    for module, rows in sorted(groups.items()):
        doc = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "module": module,
            "created_unix": time.time(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": sorted(rows, key=lambda r: str(r["fullname"])),
        }
        path = out_dir / f"BENCH_{module}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def load_bench_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot back (schema-checked)."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path}: not a bench telemetry snapshot")
    return doc

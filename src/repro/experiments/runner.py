"""``drs-experiments`` CLI: regenerate every paper artifact.

Usage::

    drs-experiments                      # run everything into ./results
    drs-experiments figure2 crossovers   # a subset
    drs-experiments --quick              # reduced iteration counts
    drs-experiments --quick --jobs 4     # sweeps fan out over 4 processes
    drs-experiments --out /tmp/results
    drs-experiments --resume results     # pick up an interrupted run
    drs-experiments --quick --target-ci 0.01   # adaptive: stop each MC cell
                                               # at Wilson half-width 0.01
    drs-experiments --backend distributed --jobs 2       # TCP coordinator
                                                         # + 2 local workers
    drs-experiments --backend distributed --jobs 0 \
        --coordinator 0.0.0.0:7077    # wait for remote drs-worker joins

The experiments come from the declarative registry in :mod:`repro.engine`:
each :mod:`repro.experiments.*` module registers an
:class:`~repro.engine.ExperimentSpec` with ``quick``/``full`` parameter
profiles, and sweep-style experiments decompose into independent jobs with
deterministic spawned seeds — so ``--jobs N`` changes wall time, never
results.

Sweep experiments run fault-tolerant by default: each job gets
``--retries`` attempts beyond the first (exponential backoff, deterministic
jitter), an optional ``--job-timeout`` wall-clock budget per attempt, and
jobs that exhaust the budget are quarantined — the run completes with
partial results and the manifest names them.  Completed jobs stream into
``<out>/<name>.checkpoint.jsonl`` (crash-safe); after an interruption,
``--resume <out>`` replays the original invocation (recorded in
``<out>/run.json``) and re-runs only the jobs the checkpoint is missing —
final CSVs are byte-identical to an uninterrupted run.  ``--fail-fast``
restores the legacy first-failure-raises behavior.

Every experiment also writes a run manifest (``<name>.manifest.json``) and a
metrics snapshot (``<name>.metrics.jsonl`` + ``.prom``) next to its results,
so ``results/`` directories are reproducible and diffable; disable with
``--no-metrics``.  Manifests record the engine backend, worker count,
per-job seeds, and the fault-tolerance tallies (attempts, retries,
quarantined/timed-out/resumed job names).  ``repro obs results/``
pretty-prints the artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import repro.experiments  # noqa: F401  — importing registers every ExperimentSpec
from repro.engine import Checkpoint, PlanInterrupted, RetryPolicy, experiment_specs, make_executor
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    ensure_core_metrics,
    install_profiling,
    use_registry,
    write_metrics_files,
)
from repro.obs.artifacts import atomic_write_text
from repro.obs.flightrecorder import FLIGHT_SUFFIX, FlightRecorder, set_flight_recorder
from repro.obs.progress import ProgressReporter, set_heartbeat

#: Fields of the original invocation that ``--resume`` must replay to
#: reproduce the same plans, seeds, and policy (``--jobs``, ``--backend``,
#: and ``--coordinator`` are deliberately absent: worker count and execution
#: backend are machine-local and never affect values, so a run started
#: distributed can resume serial and vice versa).
RUN_STATE_FIELDS = (
    "names",
    "quick",
    "seed",
    "retries",
    "job_timeout",
    "fail_fast",
    "no_checkpoint",
    "target_ci",
    "ci_confidence",
    "topology",
    "mc_method",
)

RUN_STATE_VERSION = 1


def _write_run_state(out_dir: Path, args: argparse.Namespace) -> None:
    state = {"schema": RUN_STATE_VERSION}
    state.update({f: getattr(args, f) for f in RUN_STATE_FIELDS})
    atomic_write_text(out_dir / "run.json", json.dumps(state, indent=2, sort_keys=True) + "\n")


def _load_run_state(out_dir: Path) -> dict:
    path = out_dir / "run.json"
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — --resume needs the run.json a previous drs-experiments "
            f"invocation wrote into its output directory"
        )
    return json.loads(path.read_text())


def _handle_interrupt(
    args: argparse.Namespace,
    name: str,
    spec,
    executor,
    interrupt: BaseException,
    out_dir: Path,
    metrics,
    recorder,
    elapsed: float,
) -> int:
    """Ctrl-C landed mid-experiment: record it and exit like a shell would.

    Everything the executor settled before the interrupt is already in the
    checkpoint, so the manifest is written with ``status="interrupted"``
    (plus the partial fault-tolerance tallies when the executor handed them
    back through :class:`PlanInterrupted`) and the exit code is 130 — the
    conventional 128+SIGINT.  ``--resume <out>`` then re-runs only what is
    missing.
    """
    execution = getattr(interrupt, "execution", None)
    if not args.no_metrics:
        fault = None
        if execution is not None:
            fault = {
                "attempts": execution.attempts,
                "retries": execution.retries,
                "quarantined": sorted(execution.quarantined),
                "timed_out": sorted(execution.timed_out),
                "resumed": sorted(execution.resumed),
                "pool_respawns": execution.pool_respawns,
            }
            if execution.hosts:
                fault["hosts"] = execution.hosts
        manifest = RunManifest.build(
            name=name,
            kind="experiment",
            seed=None,
            config={"quick": args.quick},
            wall_seconds=elapsed,
            event_count=int(metrics.counter("sim_events_total").value),
            status="interrupted",
            completed_jobs=len(execution.values) if execution is not None else None,
            backend=executor.name if spec.parallel else "direct",
            workers=executor.workers if spec.parallel else 1,
            fault_tolerance=fault,
            flight_recorder=recorder.summary() if recorder is not None else None,
        )
        manifest.write(out_dir / f"{name}.manifest.json")
        write_metrics_files(metrics, out_dir, name)
    done = len(execution.values) if execution is not None else 0
    print(
        f"[drs-experiments] {name} interrupted after {elapsed:.1f}s "
        f"({done} job(s) checkpointed); resume with: drs-experiments --resume {out_dir}",
        file=sys.stderr,
        flush=True,
    )
    return 130


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="drs-experiments",
        description="Regenerate the figures and tables of the DRS survivability paper.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run (default: all)")
    parser.add_argument("--out", default="results", help="output directory (default: ./results)")
    parser.add_argument("--quick", action="store_true", help="reduced iteration counts")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep experiments (1 = serial, 0 = all cores); "
        "with --backend distributed: local drs-worker processes to spawn "
        "(0 = none, rely on external workers joining)",
    )
    parser.add_argument(
        "--backend",
        choices=("local", "distributed"),
        default="local",
        help="execution backend for sweep experiments: local (serial or process "
        "pool, the default) or distributed (TCP coordinator + drs-worker fleet)",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="HOST:PORT",
        help="bind address for --backend distributed (default 127.0.0.1:0 = "
        "loopback, ephemeral port; use 0.0.0.0:PORT to accept remote workers)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="override every seed-taking experiment's root seed",
    )
    parser.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="restrict topology-aware experiments to one family, e.g. "
        "'khub:hubs=3' or 'fattree2:leaves=4,spines=2' (see docs/topology.md)",
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="W",
        help="adaptive stopping: run each Monte Carlo cell until its Wilson CI "
        "half-width reaches W (experiments that support it)",
    )
    parser.add_argument(
        "--ci-confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="confidence level for --target-ci intervals (default 0.95)",
    )
    parser.add_argument(
        "--mc-method",
        choices=("crn", "stratified", "stratified-cv"),
        default=None,
        metavar="METHOD",
        help="Monte Carlo estimator for experiments that support it: crn "
        "(plain common-random-numbers sweep), stratified (hub-state "
        "stratification), or stratified-cv (stratification plus the "
        "endpoint-dead control variate; see docs/model.md section 11)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="per-job retry budget beyond the first attempt (default 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget for each sweep job (default: unlimited)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="legacy semantics: first job failure raises instead of retrying/quarantining",
    )
    parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="skip the crash-safe <name>.checkpoint.jsonl stream (disables --resume)",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume an interrupted run: replay DIR/run.json, skip checkpointed jobs",
    )
    parser.add_argument("--html", action="store_true", help="also write a combined results/index.html")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip per-experiment manifest + metrics snapshot artifacts",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="progress heartbeat interval on stderr (0 disables; default 10)",
    )
    parser.add_argument(
        "--no-flight",
        action="store_true",
        help="skip the <name>.flight.jsonl engine telemetry stream",
    )
    args = parser.parse_args(argv)
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.target_ci is not None and args.target_ci <= 0:
        parser.error(f"--target-ci must be positive, got {args.target_ci}")
    if not 0.0 < args.ci_confidence < 1.0:
        parser.error(f"--ci-confidence must be in (0, 1), got {args.ci_confidence}")
    if args.job_timeout is not None and args.job_timeout <= 0:
        parser.error(f"--job-timeout must be positive, got {args.job_timeout}")
    if args.topology is not None:
        from repro.topology import parse_topology_spec

        try:
            parse_topology_spec(args.topology)
        except ValueError as exc:
            parser.error(f"--topology: {exc}")

    if args.resume is not None:
        if args.names or args.seed is not None or args.quick or args.topology is not None:
            parser.error("--resume replays the original invocation; don't combine it with "
                         "experiment names, --quick, --seed, or --topology")
        resume_dir = Path(args.resume)
        try:
            state = _load_run_state(resume_dir)
        except (FileNotFoundError, json.JSONDecodeError) as exc:
            parser.error(str(exc))
        for field in RUN_STATE_FIELDS:
            if field in state:
                setattr(args, field, state[field])
        args.out = str(resume_dir)
        if args.no_checkpoint:
            parser.error("the original run used --no-checkpoint; nothing to resume from")

    specs = experiment_specs()
    registry = {spec.name: spec for spec in specs}
    if args.list:
        for spec in specs:
            print(f"{spec.name:14s} {spec.description}" if spec.description else spec.name)
        return 0
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}; have {', '.join(registry)}")
    policy = None
    if not args.fail_fast:
        policy = RetryPolicy(max_attempts=args.retries + 1, timeout_s=args.job_timeout)
    try:
        executor = make_executor(
            args.jobs, policy=policy, backend=args.backend, coordinator=args.coordinator
        )
    except ValueError as exc:
        parser.error(str(exc))

    profile = "quick" if args.quick else "full"
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    _write_run_state(out_dir, args)
    results = []
    if not args.no_metrics:
        # Profile every simulator the experiments build internally; each
        # run() publishes into whichever registry is current at the time.
        install_profiling()
    for name in names:
        spec = registry[name]
        kwargs = spec.kwargs(profile)
        if args.seed is not None and spec.accepts_seed:
            kwargs["seed"] = args.seed
        if args.target_ci is not None and spec.accepts("target_ci"):
            kwargs["target_ci"] = args.target_ci
            if spec.accepts("ci_confidence"):
                kwargs["ci_confidence"] = args.ci_confidence
        if args.topology is not None and spec.accepts("topology"):
            kwargs["topology"] = args.topology
        if args.mc_method is not None and spec.accepts("mc_method"):
            kwargs["mc_method"] = args.mc_method
        if spec.parallel:
            kwargs["executor"] = executor
            if not args.no_checkpoint:
                kwargs["checkpoint"] = Checkpoint(out_dir / f"{name}.checkpoint.jsonl")
        started = time.perf_counter()
        print(f"[drs-experiments] running {name} ...", flush=True)
        metrics = ensure_core_metrics(MetricsRegistry())
        reporter = ProgressReporter(name, interval_s=args.heartbeat) if args.heartbeat > 0 else None
        set_heartbeat(reporter)
        recorder = None
        if not args.no_flight:
            recorder = FlightRecorder(out_dir / f"{name}{FLIGHT_SUFFIX}", experiment=name)
            set_flight_recorder(recorder)
        interrupt: BaseException | None = None
        try:
            with use_registry(metrics):
                result = spec.run(**kwargs)
        except (PlanInterrupted, KeyboardInterrupt) as exc:
            interrupt = exc
        finally:
            set_heartbeat(None)
            if recorder is not None:
                set_flight_recorder(None)
                recorder.close()
        if interrupt is not None:
            return _handle_interrupt(args, name, spec, executor, interrupt, out_dir,
                                     metrics, recorder, time.perf_counter() - started)
        results.append(result)
        files = result.write(out_dir)
        elapsed = time.perf_counter() - started
        engine_meta = result.meta.get("engine") if isinstance(result.meta, dict) else None
        if not args.no_metrics:
            manifest = RunManifest.build(
                name=name,
                kind="experiment",
                seed=result.meta.get("seed"),
                config={"quick": args.quick, **result.meta},
                wall_seconds=elapsed,
                event_count=int(metrics.counter("sim_events_total").value),
                heartbeat=reporter.summary() if reporter is not None else None,
                backend=executor.name if spec.parallel else "direct",
                workers=executor.workers if spec.parallel else 1,
                fault_tolerance={
                    k: engine_meta[k]
                    for k in ("attempts", "retries", "quarantined", "timed_out", "resumed",
                              "pool_respawns", "hosts")
                    if k in engine_meta
                } if engine_meta else None,
                flight_recorder=recorder.summary() if recorder is not None else None,
            )
            manifest.write(out_dir / f"{name}.manifest.json")
            write_metrics_files(metrics, out_dir, name)
        print(result.render())
        if engine_meta and engine_meta.get("quarantined"):
            print(
                f"[drs-experiments] WARNING: {name} quarantined "
                f"{len(engine_meta['quarantined'])} job(s): "
                f"{', '.join(engine_meta['quarantined'])}",
                file=sys.stderr,
                flush=True,
            )
        print(f"[drs-experiments] {name} done in {elapsed:.1f}s -> {files[0]}", flush=True)
    if args.html:
        from repro.experiments.base import write_html_index

        index = write_html_index(results, out_dir)
        print(f"[drs-experiments] combined report -> {index}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

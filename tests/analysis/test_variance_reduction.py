"""Statistical guarantees for the variance-reduced survivability estimators.

Four layers of evidence that the stratified and control-variate estimators
(:mod:`repro.analysis.variance`) are faithful, *better* drop-ins for the
crude common-random-numbers Monte Carlo:

* closed-form exactness — the hub-state decomposition reassembles Equation 1
  identically, and the CV ratio form lands exactly on Equation 1 wherever
  the crossed-covering term vanishes (the whole paper grid ``f < N``);
* interval honesty — on the full paper grid, 99.9% stratified intervals
  cover Equation 1, and the non-binomial intervals' empirical coverage at
  95% meets nominal over hundreds of replications of a residual-variance
  cell;
* variance dominance — at matched trial counts, both reduced estimators
  have strictly smaller empirical variance than crude CRN sampling on
  representative cells;
* the API contract — method dispatch equivalence, adaptive/fixed
  byte-identity, full-grid slice identity, topology threading, and the
  input-hardening error messages (exact strings, PR-5 style).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import (
    exact_topology_success,
    hub_stratum_weights,
    one_hub_conditional_success,
    simulate_full_grid,
    simulate_grid,
    simulate_success_probability,
    simulate_topology_grid,
    site_stratum_weights,
    stratified_grid,
    stratified_success_probability,
    success_probability,
)
from repro.analysis.variance import (
    allocate_stratum_trials,
    both_hubs_up_conditional_success,
    endpoint_dead_conditional_mean,
    sample_conditional_failure_matrix,
)
from repro.topology import build_topology

PINNED_SEED = 424242

#: the paper grid: f = 2..10, f < N < 64 (keyed per N for the grid APIs)
PAPER_FS = tuple(range(2, 11))
PAPER_NS = tuple(range(3, 64))
PAPER_GRID = {n: tuple(f for f in PAPER_FS if f < n) for n in PAPER_NS if any(f < n for f in PAPER_FS)}

#: representative cells for variance comparisons: two paper cells, the
#: grid's hardest corner, and a cell with genuine CV residual variance
VARIANCE_CELLS = ((20, 5), (40, 8), (63, 10), (4, 4))


# ------------------------------------------------------- closed-form layer


@pytest.mark.parametrize("n", [2, 3, 5, 10, 63])
def test_hub_decomposition_reassembles_equation1(n):
    for f in range(0, 2 * n + 3):
        w0, w1, w2 = hub_stratum_weights(n, f)
        assert w0 + w1 + w2 == pytest.approx(1.0, abs=1e-12)
        reassembled = w1 * one_hub_conditional_success(n, f) + w0 * both_hubs_up_conditional_success(n, f)
        assert reassembled == pytest.approx(success_probability(n, f), abs=1e-12), (n, f)


@pytest.mark.parametrize("n", [2, 3, 4, 8])
def test_stratum_weights_are_hypergeometric_probabilities(n):
    width = 2 * n + 2
    for f in range(0, width + 1):
        weights = site_stratum_weights(width, 2, f)
        assert len(weights) == 3
        assert all(w >= 0 for w in weights)
        assert sum(weights) == pytest.approx(1.0, abs=1e-12)
        # impossible strata carry exactly zero weight
        if f < 2:
            assert weights[2] == 0.0
        if f > 2 * n:
            assert weights[0] == 0.0


def test_endpoint_dead_mean_is_a_probability():
    for n in (2, 3, 5, 20):
        for f in range(0, 2 * n + 1):
            mu = endpoint_dead_conditional_mean(n, f)
            assert 0.0 <= mu <= 1.0, (n, f)


# --------------------------------------------------- paper-grid agreement


def test_stratified_full_grid_covers_equation1_at_999():
    grid = simulate_full_grid(
        tuple(PAPER_GRID),
        PAPER_GRID,
        2_000,
        seed=PINNED_SEED,
        method="stratified",
        precision=True,
        confidence=0.999,
    )
    misses = []
    for n, fs in PAPER_GRID.items():
        for f in fs:
            cell = grid[n][f]
            exact = success_probability(n, f)
            assert cell.method == "stratified"
            if not cell.low <= exact <= cell.high:
                misses.append((n, f))
    # ~500 independent 99.9% intervals expect ~0.5 misses; allow the
    # binomial tail room it deserves (the pinned seed keeps this exact)
    assert len(misses) <= 2, misses


def test_cv_full_grid_is_exact_on_paper_cells():
    # f < N keeps the crossed-covering bad count at zero, so the control
    # variate removes *all* residual variance: the estimate IS Equation 1
    grid = simulate_full_grid(
        tuple(PAPER_GRID),
        PAPER_GRID,
        2_000,
        seed=PINNED_SEED,
        method="stratified-cv",
        precision=True,
        confidence=0.999,
    )
    for n, fs in PAPER_GRID.items():
        for f in fs:
            cell = grid[n][f]
            exact = success_probability(n, f)
            assert cell.method == "stratified-cv"
            assert cell.point == pytest.approx(exact, abs=1e-12), (n, f)
            assert cell.low <= exact <= cell.high, (n, f)


# ----------------------------------------------------- variance dominance


@pytest.mark.parametrize("n,f", VARIANCE_CELLS)
def test_reduced_estimators_beat_crude_variance_at_matched_trials(n, f):
    trials = 2_000
    replications = 60
    crude, strat, cv = [], [], []
    for rep in range(replications):
        seed = PINNED_SEED + rep
        crude.append(
            simulate_success_probability(n, f, trials, np.random.default_rng(seed))
        )
        strat.append(
            stratified_success_probability(n, f, trials, seed=seed, control_variate=False)
        )
        cv.append(
            stratified_success_probability(n, f, trials, seed=seed, control_variate=True)
        )
    var_crude = float(np.var(crude))
    assert var_crude > 0.0  # crude noise must exist for the comparison to bind
    assert float(np.var(strat)) < var_crude, (n, f)
    assert float(np.var(cv)) < var_crude, (n, f)
    # every estimator still centers on the truth
    exact = success_probability(n, f)
    assert float(np.mean(strat)) == pytest.approx(exact, abs=5e-3)
    assert float(np.mean(cv)) == pytest.approx(exact, abs=5e-3)


def test_cv_interval_coverage_meets_nominal():
    # n=4, f=4 has a genuine crossed-covering term (c > 0), so the CV
    # estimate is non-degenerate and its scaled-Wilson interval is the
    # thing under test: empirical coverage at 95% over 250 replications
    n, f = 4, 4
    exact = success_probability(n, f)
    covered = {"stratified": 0, "stratified-cv": 0}
    replications = 250
    for rep in range(replications):
        for method in covered:
            cell = simulate_grid(
                n, (f,), 400, seed=PINNED_SEED + rep, method=method, precision=True
            )[f]
            if cell.low <= exact <= cell.high:
                covered[method] += 1
    for method, hits in covered.items():
        assert hits / replications >= 0.95, (method, hits)


# ------------------------------------------------------- API equivalences


def test_simulate_grid_dispatches_to_stratified_methods():
    n, fs = 20, (2, 5)
    for method, cv_flag in (("stratified", False), ("stratified-cv", True)):
        via_dispatch = simulate_grid(n, fs, 3_000, seed=PINNED_SEED, method=method)
        direct = stratified_grid(n, fs, 3_000, seed=PINNED_SEED, control_variate=cv_flag)
        assert via_dispatch == direct


def test_full_grid_slices_reproduce_single_n_runs():
    ns, fs = (5, 12, 30), (2, 3, 4)
    for method in ("crn", "stratified", "stratified-cv"):
        grid = simulate_full_grid(ns, fs, 1_500, seed=PINNED_SEED, method=method)
        for n in ns:
            solo = simulate_grid(n, fs, 1_500, seed=PINNED_SEED, method=method)
            assert grid[n] == solo, (method, n)


def test_adaptive_stratified_cell_is_byte_identical_to_fixed_run():
    n, fs = 20, (2, 5)
    adaptive = stratified_grid(
        n,
        fs,
        500,
        seed=PINNED_SEED,
        control_variate=False,
        target_half_width=5e-4,
        max_iterations=600_000,
        batch=4_000,
    )
    for f in fs:
        cell = adaptive[f]
        assert cell.met_target and cell.half_width <= 5e-4
        fixed = stratified_grid(
            n, fs, cell.trials, seed=PINNED_SEED, control_variate=False, precision=True
        )[f]
        assert (fixed.successes, fixed.trials) == (cell.successes, cell.trials)
        assert (fixed.point, fixed.low, fixed.high) == (cell.point, cell.low, cell.high)


def test_stratified_point_estimate_with_explicit_allocations():
    n, f = 6, 4
    exact = success_probability(n, f)
    for allocations in ((4_000, 0, 0), (3_000, 500, 500), (0, 2_000, 2_000)):
        estimate = stratified_success_probability(
            n, f, 4_000, seed=PINNED_SEED, allocations=allocations
        )
        assert estimate == pytest.approx(exact, abs=0.02), allocations


# ------------------------------------------------------ topology threading


def test_dual_hub_topology_dispatch_uses_the_cv_kernel():
    topology = build_topology("dual-hub", size=8)
    cells = simulate_topology_grid(
        topology, (2, 3), 2_000, seed=PINNED_SEED, method="stratified-cv", precision=True
    )
    n = (topology.width - 2) // 2
    for f in (2, 3):
        cell = cells[f]
        assert cell.method == "stratified-cv"
        assert cell.topology == topology.name
        assert cell.point == pytest.approx(success_probability(n, f), abs=1e-12)


@pytest.mark.parametrize("spec,size", [("khub:hubs=3", 6), ("fattree2:leaves=3,spines=2", 6)])
def test_generic_stratified_sweep_covers_exact_enumeration(spec, size):
    topology = build_topology(spec, size=size)
    fs = (1, 2, 3)
    cells = simulate_topology_grid(
        topology, fs, 20_000, seed=PINNED_SEED, method="stratified",
        precision=True, confidence=0.999,
    )
    for f in fs:
        cell = cells[f]
        exact = exact_topology_success(topology, f)
        assert cell.method == "stratified"
        assert cell.low <= exact <= cell.high, (spec, f, cell.point, exact)


def test_stratified_cv_needs_an_attached_kernel():
    topology = build_topology("khub:hubs=3", size=6)
    with pytest.raises(ValueError, match="needs a topology with an attached stratified"):
        simulate_topology_grid(topology, (2,), 100, seed=1, method="stratified-cv")


def test_stratified_needs_declared_strata_sites():
    topology = replace(build_topology("khub:hubs=3", size=6), strata_sites=None)
    with pytest.raises(ValueError, match="declares no strata_sites"):
        simulate_topology_grid(topology, (2,), 100, seed=1, method="stratified")


def test_stratified_rejects_weighted_topologies():
    base = build_topology("khub:hubs=3", size=6)
    weighted = replace(base, weights=(2.0,) + (1.0,) * (base.width - 1))
    with pytest.raises(ValueError, match="requires uniform failure weights"):
        simulate_topology_grid(weighted, (2,), 100, seed=1, method="stratified")


# ------------------------------------------------------- input hardening


def test_unknown_method_raises_everywhere():
    message = "method must be 'crn', 'stratified', or 'stratified-cv', got 'antithetic'"
    with pytest.raises(ValueError, match=message):
        simulate_grid(5, (2,), 100, seed=1, method="antithetic")
    with pytest.raises(ValueError, match=message):
        simulate_full_grid((5,), (2,), 100, seed=1, method="antithetic")
    with pytest.raises(ValueError, match=message):
        simulate_topology_grid(build_topology("dual-hub", size=8), (2,), 100, seed=1, method="antithetic")


@pytest.mark.parametrize("target", [0.0, -0.01])
def test_nonpositive_target_half_width_raises(target):
    with pytest.raises(ValueError, match=f"target_half_width must be positive, got {target}"):
        stratified_grid(5, (2,), 100, seed=1, target_half_width=target)


@pytest.mark.parametrize("confidence", [0.0, 1.0, 1.5, -0.2])
def test_confidence_outside_unit_interval_raises(confidence):
    with pytest.raises(ValueError, match=r"confidence must be in \(0, 1\), got"):
        stratified_grid(5, (2,), 100, seed=1, target_half_width=0.01, confidence=confidence)


def test_allocation_validation_messages():
    with pytest.raises(ValueError, match=r"allocations must have one entry per hub stratum \(3\), got 2"):
        stratified_success_probability(5, 2, 100, seed=1, allocations=(50, 50))
    with pytest.raises(ValueError, match="stratum allocations must be nonnegative, got -1"):
        stratified_success_probability(5, 2, 100, seed=1, allocations=(50, -1, 0))
    with pytest.raises(
        ValueError, match="stratum allocations sum to 150, exceeding the trial budget 100"
    ):
        stratified_success_probability(5, 2, 100, seed=1, allocations=(100, 25, 25))


def test_allocate_stratum_trials_hardening():
    with pytest.raises(ValueError, match="iterations must be >= 1, got 0"):
        allocate_stratum_trials(0, (1.0, 1.0))
    with pytest.raises(ValueError, match="stratum scores must be finite and nonnegative, got -1.0"):
        allocate_stratum_trials(10, (1.0, -1.0))
    with pytest.raises(ValueError, match="stratum scores must be finite and nonnegative, got inf"):
        allocate_stratum_trials(10, (1.0, float("inf")))
    with pytest.raises(ValueError, match="at least one stratum score must be positive"):
        allocate_stratum_trials(10, (0.0, 0.0))
    with pytest.raises(ValueError, match="trial budget 2 cannot cover 3 strata"):
        allocate_stratum_trials(2, (1.0, 1.0, 1.0))


def test_conditional_sampler_hardening():
    with pytest.raises(ValueError, match="need n >= 2, got 1"):
        sample_conditional_failure_matrix(1, 2, 0, 10, seed=1)
    with pytest.raises(ValueError, match="stratum must be 0, 1, or 2 hub failures, got 3"):
        sample_conditional_failure_matrix(5, 2, 3, 10, seed=1)
    with pytest.raises(ValueError, match=r"f must be in \[0, 12\], got 13"):
        sample_conditional_failure_matrix(5, 13, 0, 10, seed=1)
    with pytest.raises(ValueError, match="no failure sets with 2 hub failures exist for f=1, N=5"):
        sample_conditional_failure_matrix(5, 1, 2, 10, seed=1)
    with pytest.raises(ValueError, match="no failure sets with 0 hub failures exist for f=9, N=4"):
        sample_conditional_failure_matrix(4, 9, 0, 10, seed=1)
    with pytest.raises(ValueError, match="iterations must be >= 1, got 0"):
        sample_conditional_failure_matrix(5, 2, 0, 0, seed=1)


def test_site_stratum_weights_hardening():
    with pytest.raises(ValueError, match=r"sites must be in \[0, universe\] = \[0, 4\], got 5"):
        site_stratum_weights(4, 5, 2)
    with pytest.raises(ValueError, match="no failure sets of size 9 exist in a universe of 4"):
        site_stratum_weights(4, 2, 9)


@pytest.mark.parametrize(
    "call",
    [
        lambda rng: stratified_grid(5, (2,), 100, rng=rng, seed=1),
        lambda rng: stratified_success_probability(5, 2, 100, rng=rng, seed=1),
        lambda rng: sample_conditional_failure_matrix(5, 2, 0, 10, rng=rng, seed=1),
        lambda rng: simulate_topology_grid(
            build_topology("khub:hubs=3", size=6), (2,), 100, rng=rng, seed=1, method="stratified"
        ),
    ],
)
def test_rng_and_seed_are_mutually_exclusive(call):
    with pytest.raises(TypeError, match="pass either rng= or seed=, not both"):
        call(np.random.default_rng(0))


def test_full_grid_stream_source_exclusivity():
    rng = np.random.default_rng(0)
    rngs = {5: np.random.default_rng(1)}
    with pytest.raises(TypeError, match="not both rng= and seed="):
        simulate_full_grid((5,), (2,), 100, rng=rng, seed=1)
    with pytest.raises(TypeError, match="not both rng= and rngs="):
        simulate_full_grid((5,), (2,), 100, rng=rng, rngs=rngs)
    with pytest.raises(TypeError, match="not both seed= and rngs="):
        simulate_full_grid((5,), (2,), 100, seed=1, rngs=rngs)
    with pytest.raises(TypeError, match="pass either rng= or seed="):
        simulate_full_grid((5,), (2,), 100)
    with pytest.raises(ValueError, match="rngs must cover every n in ns; missing n=7"):
        simulate_full_grid((5, 7), (2,), 100, rngs=rngs)


def test_full_grid_domain_validation():
    with pytest.raises(ValueError, match="ns must name at least one cluster size"):
        simulate_full_grid((), (2,), 100, seed=1)
    with pytest.raises(ValueError, match=r"ns must be unique, got \(5, 5\)"):
        simulate_full_grid((5, 5), (2,), 100, seed=1)
    with pytest.raises(ValueError, match="fs must cover every n in ns; missing n=7"):
        simulate_full_grid((5, 7), {5: (2,)}, 100, seed=1)
    with pytest.raises(ValueError, match=r"f must be in \[0, 12\], got 13"):
        simulate_full_grid((5,), (13,), 100, seed=1)

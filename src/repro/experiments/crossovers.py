"""TAB-CROSS — the paper's prose crossover table.

"For f=2 the P[S] surpasses 0.99 at 18 nodes.  For f=3 the P[S] surpasses
0.99 at 3[2] nodes, and for f=4 the P[S] surpasses 0.99 at 45 nodes."
"""

from __future__ import annotations

from repro.analysis import crossover_n, success_probability
from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult

PAPER_CROSSOVERS = {2: 18, 3: 32, 4: 45}


def run(f_values: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10), threshold: float = 0.99) -> ExperimentResult:
    """Compute 0.99 crossovers for each f and compare with the paper."""
    result = ExperimentResult("crossovers")
    rows = []
    for f in f_values:
        n_star = crossover_n(f, threshold=threshold)
        paper = PAPER_CROSSOVERS.get(f, "-")
        rows.append(
            [
                f,
                n_star,
                paper,
                float(success_probability(n_star, f)),
                float(success_probability(n_star - 1, f)) if n_star > f + 1 else float("nan"),
            ]
        )
    result.add_table(
        "crossovers",
        ["f", f"N where P[S] > {threshold}", "paper", "P[S] at N*", "P[S] at N*-1"],
        rows,
        caption="0.99 crossover cluster sizes (paper states f=2,3,4)",
    )
    matches = all(crossover_n(f, threshold) == n for f, n in PAPER_CROSSOVERS.items())
    result.note(f"paper checkpoints (18/32/45) reproduced exactly: {matches}")
    return result


register(
    ExperimentSpec(
        name="crossovers",
        run=run,
        profiles={"quick": {}, "full": {}},
        order=40,
        description="prose 0.99 crossovers (18/32/45)",
    )
)

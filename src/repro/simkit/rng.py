"""Deterministic named random-number streams.

Every stochastic component draws from its own :class:`numpy.random.Generator`
derived from a single root :class:`numpy.random.SeedSequence` keyed by the
component's name.  Two properties follow:

* the whole simulation is reproducible from one integer seed, and
* adding a new random consumer (a new node, a new fault source) never
  perturbs the draws seen by existing consumers.
"""

from __future__ import annotations

import zlib

import numpy as np


def spawn_seedseq(seed: int, *names: str) -> np.random.SeedSequence:
    """Child :class:`~numpy.random.SeedSequence` keyed by a name path.

    This is the :meth:`SeedSequence.spawn` mechanism with the spawn key
    derived from ``names`` (via crc32, stable across processes) instead of a
    sequential counter, so a child depends only on ``(seed, names)`` — never
    on how many siblings were spawned before it or in what order.  It is the
    process-safe generalization of :meth:`RngRegistry.stream`: experiment
    job plans use it to give every job an independent, reproducible stream.
    """
    key = tuple(zlib.crc32(name.encode("utf-8")) for name in names)
    return np.random.SeedSequence(entropy=int(seed), spawn_key=key)


def spawned_rng(seed: int, *names: str) -> np.random.Generator:
    """A fresh PCG64 generator over :func:`spawn_seedseq`'s child sequence."""
    return np.random.Generator(np.random.PCG64(spawn_seedseq(seed, *names)))


def seed_fingerprint(seq: np.random.SeedSequence) -> int:
    """Stable 64-bit fingerprint of a seed sequence (for run manifests).

    ``generate_state`` is pure — fingerprinting a sequence does not perturb
    generators later built from it.
    """
    return int(seq.generate_state(1, np.uint64)[0])


class RngRegistry:
    """Factory of independent, name-keyed random streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object, so components
        that share a name share draw state — name streams per component.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit hash of the name; zlib.crc32 is deterministic
            # across processes (unlike built-in hash()).
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence([self._seed, key])))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per replication of an experiment)."""
        key = zlib.crc32(name.encode("utf-8"))
        return RngRegistry(seed=(self._seed * 0x9E3779B1 + key) % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)

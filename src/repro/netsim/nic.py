"""Network interface card model."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.netsim.addresses import InterfaceAddr
from repro.netsim.component import Component, ComponentKind
from repro.netsim.frames import Frame
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.simkit import Counter, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.netsim.backplane import Backplane


class Nic(Component):
    """One failable interface attaching a node to a backplane.

    A down NIC loses traffic in both directions without notifying either
    side — modelling the card/driver/cabling failures the paper's one-year
    field study attributes 13% of hardware faults to.
    """

    def __init__(
        self,
        addr: InterfaceAddr,
        backplane: "Backplane",
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name=f"nic{addr.node}.{addr.network}", kind=ComponentKind.NIC)
        self.addr = addr
        self.backplane = backplane
        self.trace = trace
        #: degraded-card model: probability each frame (either direction) is
        #: silently lost while the NIC still counts as "up" — the flaky
        #: card/driver/connector gray failures field studies are full of
        self.degraded_drop_rate = 0.0
        self._degraded_rng = None
        self._degraded_direction = "both"
        self._receiver: Callable[[Frame, "Nic"], None] | None = None
        self.frames_sent = Counter(f"{self.name}.tx")
        self.frames_received = Counter(f"{self.name}.rx")
        self.frames_dropped = Counter(f"{self.name}.drops")
        registry = resolve_registry(metrics)
        self._m_tx = registry.counter("net_frames_sent_total")
        self._m_rx = registry.counter("net_frames_received_total")
        self._m_drops = registry.counter("net_frames_dropped_total")
        backplane.attach(self)

    def set_receiver(self, receiver: Callable[[Frame, "Nic"], None]) -> None:
        """Install the node-side handler for frames arriving on this NIC."""
        self._receiver = receiver

    def set_degraded(self, drop_rate: float, rng=None, direction: str = "both") -> None:
        """Put the card into (or out of) gray-failure mode.

        ``drop_rate=0`` restores a healthy card.  The NIC stays *up* — its
        failures are probabilistic frame losses, which is exactly the case
        DRS's probe-retry threshold exists to distinguish from hard death.

        ``direction`` selects which side rots: ``"both"`` (default),
        ``"tx"`` (frames leave the driver but die on the wire), or ``"rx"``
        (arrivals lost before the stack sees them).  One-way gray failures
        are the nastiest field case — the node itself appears healthy to
        its own transmissions — and DRS's bidirectional echo catches them.
        """
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        if direction not in ("both", "tx", "rx"):
            raise ValueError(f"direction must be both/tx/rx, got {direction!r}")
        if rng is not None:
            self._degraded_rng = rng
        if drop_rate > 0.0 and self._degraded_rng is None:
            raise ValueError("a degraded NIC needs an rng for loss draws")
        self.degraded_drop_rate = float(drop_rate)
        self._degraded_direction = direction

    def _degraded_loss(self, side: str) -> bool:
        if self.degraded_drop_rate <= 0.0:
            return False
        if self._degraded_direction not in ("both", side):
            return False
        return self._degraded_rng.random() < self.degraded_drop_rate

    # -------------------------------------------------------------- transmit
    def send(self, frame: Frame) -> bool:
        """Hand a frame to the medium.  Returns False if dropped at the NIC.

        The boolean reflects only local knowledge — a True return does not
        mean the frame will arrive (the hub or the receiving NIC may be
        down), matching real transmit semantics.
        """
        if not self.up:
            self._drop(frame, reason="tx-nic-down")
            return False
        if self._degraded_loss("tx"):
            # A flaky card reports success to its driver, then mangles the
            # frame on the wire — the caller cannot tell.
            self._drop(frame, reason="tx-degraded")
            return True
        self.frames_sent.add()
        self._m_tx.add()
        self.backplane.transmit(frame, self)
        return True

    # --------------------------------------------------------------- receive
    def deliver(self, frame: Frame) -> None:
        """Called by the backplane when a frame reaches this port."""
        if not self.up:
            self._drop(frame, reason="rx-nic-down")
            return
        if self._degraded_loss("rx"):
            self._drop(frame, reason="rx-degraded")
            return
        self.frames_received.add()
        self._m_rx.add()
        if self._receiver is not None:
            self._receiver(frame, self)

    def _drop(self, frame: Frame, reason: str) -> None:
        self.frames_dropped.add()
        self._m_drops.add()
        if self.trace is not None and self.trace.wants("drop"):
            self.trace.record("drop", where=self.name, reason=reason, frame=str(frame))

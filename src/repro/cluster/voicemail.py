"""Voice-mail cluster workload — the paper's deployment context.

"The DRS was deployed in 27 local voice mail server clusters by MCI
WorldCom, each cluster contains between 8 and 12 servers."

The model: subscribers are sharded to home servers by id.  Calls land on an
arbitrary ingress server (whichever trunk took the call); a *deposit* whose
ingress is not the subscriber's home server requires a server-to-server
transfer of the voice payload, and a *retrieve* streams it back from the
home server to the ingress.  Those transfers are exactly the
server-to-server traffic DRS exists to protect.

Metrics: per-operation completion latency (transport-level delivery) and the
count of operations stalled beyond a threshold — the "application noticed
the failure" signal used by the failover benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.messaging import ClusterComm
from repro.simkit import Process, Simulator


@dataclass(frozen=True)
class VoicemailConfig:
    """Workload shape.

    ``message_bytes`` defaults to a short (3 s) voice clip at 64 kb/s; the
    deployed clusters handled longer messages, but transfer count — not
    size — is what exercises failover, and short clips keep simulated wall
    time reasonable.
    """

    subscribers: int = 1000
    call_rate_per_s: float = 5.0
    deposit_fraction: float = 0.6
    message_bytes: int = 24_000
    stall_threshold_s: float = 1.0

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError("subscribers must be >= 1")
        if self.call_rate_per_s <= 0:
            raise ValueError("call_rate_per_s must be positive")
        if not 0 <= self.deposit_fraction <= 1:
            raise ValueError("deposit_fraction must be in [0, 1]")
        if self.message_bytes < 0:
            raise ValueError("message_bytes must be >= 0")


@dataclass
class _PendingOp:
    kind: str
    src: int
    dst: int
    msg_id: int
    started_at: float


@dataclass
class VoicemailStats:
    """Aggregated workload outcome."""

    operations: int = 0
    local_operations: int = 0
    transfers: int = 0
    completed: int = 0
    latencies: list[float] = field(default_factory=list)
    stalled: int = 0

    def completion_rate(self) -> float:
        """Fraction of inter-server transfers that completed."""
        return self.completed / self.transfers if self.transfers else 1.0

    def mean_latency(self) -> float:
        """Mean completion latency of completed transfers (0 if none)."""
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def p99_latency(self) -> float:
        """99th-percentile completion latency (0 if none)."""
        return float(np.percentile(self.latencies, 99)) if self.latencies else 0.0


class VoicemailCluster:
    """Drives the workload over a messaging layer."""

    def __init__(
        self,
        sim: Simulator,
        comm: ClusterComm,
        config: VoicemailConfig,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.comm = comm
        self.config = config
        self.rng = rng
        self.nodes = sorted(comm.endpoints)
        self.stats = VoicemailStats()
        self._pending: list[_PendingOp] = []
        self._proc: Process | None = None
        self._collector: Process | None = None
        # mailbox store: home node -> subscriber -> message count
        self.mailboxes: dict[int, dict[int, int]] = {n: {} for n in self.nodes}
        for endpoint in comm.endpoints.values():
            endpoint.on_receive(self._on_delivery)

    def home_of(self, subscriber: int) -> int:
        """The subscriber's home server (static shard by id)."""
        return self.nodes[subscriber % len(self.nodes)]

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin generating calls and collecting completions."""
        if self._proc is None or self._proc.finished:
            self._proc = Process(self.sim, self._call_loop(), name="voicemail.calls")
        if self._collector is None or self._collector.finished:
            self._collector = Process(self.sim, self._collect_loop(), name="voicemail.collect")

    def stop(self) -> None:
        """Stop generating calls (in-flight transfers keep completing)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None
        if self._collector is not None:
            self._collector.kill()
            self._collector = None

    def _call_loop(self):
        while True:
            yield float(self.rng.exponential(1.0 / self.config.call_rate_per_s))
            self._one_call()

    def _one_call(self) -> None:
        subscriber = int(self.rng.integers(self.config.subscribers))
        home = self.home_of(subscriber)
        ingress = self.nodes[int(self.rng.integers(len(self.nodes)))]
        deposit = bool(self.rng.random() < self.config.deposit_fraction)
        self.stats.operations += 1
        if ingress == home:
            # Served locally: store or read the mailbox, no network involved.
            self.stats.local_operations += 1
            if deposit:
                box = self.mailboxes[home].setdefault(subscriber, 0)
                self.mailboxes[home][subscriber] = box + 1
            return
        kind = "deposit" if deposit else "retrieve"
        src, dst = (ingress, home) if deposit else (home, ingress)
        msg_id = self.comm.endpoint(src).send(
            dst, tag=f"vm-{kind}", payload={"subscriber": subscriber}, size_bytes=self.config.message_bytes
        )
        self.stats.transfers += 1
        self._pending.append(_PendingOp(kind=kind, src=src, dst=dst, msg_id=msg_id, started_at=self.sim.now))

    def _on_delivery(self, src: int, tag: str, payload, size: int) -> None:
        if tag == "vm-deposit":
            subscriber = payload["subscriber"]
            home = self.home_of(subscriber)
            self.mailboxes[home][subscriber] = self.mailboxes[home].get(subscriber, 0) + 1

    def _collect_loop(self):
        # Poll transport completion latencies; cheap and avoids coupling the
        # workload to TCP internals.
        while True:
            yield 0.25
            self.collect_completions()

    def collect_completions(self) -> None:
        """Harvest completion latencies for finished transfers."""
        still_pending: list[_PendingOp] = []
        for op in self._pending:
            latency = self.comm.endpoint(op.src).latency_of(op.dst, op.msg_id)
            if latency is None:
                still_pending.append(op)
                continue
            self.stats.completed += 1
            self.stats.latencies.append(latency)
            if latency > self.config.stall_threshold_s:
                self.stats.stalled += 1
        self._pending = still_pending

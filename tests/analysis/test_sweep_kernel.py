"""The common-random-numbers sweep kernel: equivalence, invariants, hardening.

Four layers of evidence that ``simulate_grid`` is a faithful drop-in for a
family of per-point ``simulate_success_probability`` calls:

* exact predicate equivalence — the per-row breakdown threshold agrees with
  ``pair_connected_vec`` at *every* f over the same shared rank matrix;
* structural invariants of the shared draw — nested failure sets across f,
  and estimates monotone in f by construction;
* statistical equivalence — grid estimates agree with Equation 1 (and with
  the per-point estimator) within Wilson 99.9% intervals;
* regression tests for the estimator API hardening (iterations >= 1,
  rng=/seed= exclusivity, empty N ranges);
* the adaptive-stopping contract — a cell frozen at T trials is
  byte-identical to a fixed-count run at ``iterations=T`` (trial
  consumption is batching-invariant), its estimate still agrees with
  Equation 1 at Wilson 99.9%, and the budget/validation semantics mirror
  ``estimate_to_precision``.
"""

import numpy as np
import pytest

from repro.analysis import (
    connectivity_levels,
    failure_matrix_at,
    failure_rank_matrix,
    sample_failure_matrix,
    simulate_curve,
    simulate_grid,
    simulate_success_probability,
    success_probability,
)
from repro.analysis.convergence import mean_absolute_deviation, mean_absolute_deviation_grid
from repro.analysis.montecarlo import pair_connected_vec
from repro.analysis.stats import wilson_interval

PINNED_SEED = 424242


# ---------------------------------------------------------------- exactness


@pytest.mark.parametrize("n", [2, 3, 6, 10])
@pytest.mark.parametrize("two_hop", [True, False])
def test_levels_equal_pair_connected_vec_at_every_f(n, two_hop):
    rng = np.random.default_rng(PINNED_SEED)
    ranks = failure_rank_matrix(n, 1_000, rng)
    levels = connectivity_levels(ranks, two_hop=two_hop)
    for f in range(0, 2 * n + 3):
        expected = pair_connected_vec(failure_matrix_at(ranks, f), two_hop=two_hop)
        assert ((levels >= f) == expected).all(), (n, f, two_hop)


@pytest.mark.parametrize("n", [2, 5, 12])
def test_levels_identical_on_keys_and_on_ranks(n):
    # rank is a monotone transform of key order, so the kernel may skip the
    # argsort entirely: the critical-element expression must agree either way
    rng = np.random.default_rng(PINNED_SEED)
    width = 2 * n + 2
    keys = rng.random((800, width))
    order = np.argsort(keys, axis=1)
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.arange(width)[None, :], axis=1)
    for two_hop in (True, False):
        assert (
            connectivity_levels(keys, two_hop=two_hop)
            == connectivity_levels(ranks, two_hop=two_hop)
        ).all()


# ------------------------------------------------------ structural invariants


def test_nested_failure_sets_across_f():
    rng = np.random.default_rng(PINNED_SEED)
    ranks = failure_rank_matrix(8, 500, rng)
    for f in range(1, 2 * 8 + 3):
        smaller = failure_matrix_at(ranks, f - 1)
        larger = failure_matrix_at(ranks, f)
        assert (larger.sum(axis=1) == f).all()
        assert (smaller <= larger).all(), f"level {f - 1} failures not nested in level {f}"


def test_failure_matrix_at_matches_sampler_distribution():
    # same marginals as sample_failure_matrix: each component fails f/(2n+2)
    rng = np.random.default_rng(PINNED_SEED)
    n, f, iters = 6, 3, 40_000
    nested = failure_matrix_at(failure_rank_matrix(n, iters, rng), f)
    assert np.allclose(nested.mean(axis=0), f / (2 * n + 2), atol=0.01)
    assert (nested.sum(axis=1) == f).all()


def test_grid_estimates_monotone_in_f_by_construction():
    estimates = simulate_grid(20, tuple(range(0, 43)), 5_000, seed=PINNED_SEED)
    values = list(estimates.values())
    assert values[0] == 1.0  # zero failures never disconnect the pair
    assert values[-1] == 0.0  # all components failed always does
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_grid_independent_of_f_subset():
    # the stream is keyed by n alone: any f-slice reproduces the full sweep
    full = simulate_grid(15, (2, 3, 4, 5), 10_000, seed=PINNED_SEED)
    alone = simulate_grid(15, (4,), 10_000, seed=PINNED_SEED)
    assert full[4] == alone[4]


def test_grid_deterministic_for_seed_and_sensitive_to_it():
    a = simulate_grid(10, (2, 3), 5_000, seed=1)
    b = simulate_grid(10, (2, 3), 5_000, seed=1)
    c = simulate_grid(10, (2, 3), 5_000, seed=2)
    assert a == b
    assert a != c


def test_grid_batching_does_not_change_counts():
    one = simulate_grid(9, (2, 4), 7_000, rng=np.random.default_rng(3))
    split = simulate_grid(9, (2, 4), 7_000, rng=np.random.default_rng(3), batch=999)
    # same generator, same total draw count per batch element ordering differs;
    # estimates stay within a tight band of each other and of the exact value
    for f in (2, 4):
        assert abs(one[f] - split[f]) < 0.02


# ------------------------------------------------- statistical equivalence


@pytest.mark.parametrize("n,f", [(n, f) for n in (4, 8, 16) for f in (2, 3, 4)])
def test_grid_agrees_with_equation1_within_wilson_999(n, f):
    iterations = 20_000
    estimates = simulate_grid(n, (2, 3, 4), iterations, seed=PINNED_SEED)
    successes = round(estimates[f] * iterations)
    interval = wilson_interval(successes, iterations, confidence=0.999)
    exact = success_probability(n, f)
    assert interval.low <= exact <= interval.high, (
        f"n={n} f={f}: exact {exact:.6f} outside Wilson 99.9% CI "
        f"[{interval.low:.6f}, {interval.high:.6f}] around grid {estimates[f]:.6f}"
    )


@pytest.mark.parametrize("n,f", [(8, 3), (20, 5)])
def test_grid_agrees_with_per_point_within_wilson_999(n, f):
    iterations = 20_000
    grid = simulate_grid(n, (f,), iterations, seed=PINNED_SEED)[f]
    point = simulate_success_probability(n, f, iterations, seed=PINNED_SEED)
    g = wilson_interval(round(grid * iterations), iterations, confidence=0.999)
    p = wilson_interval(round(point * iterations), iterations, confidence=0.999)
    # two independent estimators of the same quantity: intervals must overlap
    assert g.low <= p.high and p.low <= g.high, (n, f, grid, point)


def test_mad_grid_matches_per_f_mad_scale():
    per_f = mean_absolute_deviation(3, 1_000, n_max=30, seed=PINNED_SEED)
    grid = mean_absolute_deviation_grid((2, 3, 4), 1_000, n_max=30, seed=PINNED_SEED)
    assert set(grid) == {2, 3, 4}
    # both are ~1/sqrt(iterations)-scale errors against the same closed form
    assert 0 < grid[3] < 0.02 and 0 < per_f < 0.02


# -------------------------------------------------------- adaptive stopping


def test_adaptive_cell_byte_identical_to_fixed_run_at_stopped_count():
    # the reproducibility contract: whatever trial count a cell froze at,
    # a fixed-count run at exactly that count (same seed) is bit-equal
    cells = simulate_grid(
        12, (2, 5, 8), 1_000, seed=PINNED_SEED, target_half_width=0.01
    )
    for f, cell in cells.items():
        fixed = simulate_grid(12, (f,), cell.trials, seed=PINNED_SEED)
        assert fixed[f] == cell.point == cell.successes / cell.trials, (f, cell)


def test_adaptive_cell_independent_of_f_subset():
    # the batch schedule depends only on (iterations, batch, budget), never
    # on which cells are still open, so each cell freezes at the same
    # boundary whether it runs alone or inside the full f-family
    full = simulate_grid(12, (2, 5, 8), 1_000, seed=PINNED_SEED, target_half_width=0.01)
    alone = simulate_grid(12, (5,), 1_000, seed=PINNED_SEED, target_half_width=0.01)
    assert alone[5].trials == full[5].trials
    assert alone[5].successes == full[5].successes


@pytest.mark.parametrize("f", [2, 3, 4])
def test_adaptive_agrees_with_equation1_within_wilson_999(f):
    cells = simulate_grid(
        16, (2, 3, 4), 2_000, seed=PINNED_SEED, target_half_width=0.008
    )
    cell = cells[f]
    interval = wilson_interval(cell.successes, cell.trials, confidence=0.999)
    exact = success_probability(16, f)
    assert interval.low <= exact <= interval.high, (
        f"f={f}: exact {exact:.6f} outside Wilson 99.9% CI "
        f"[{interval.low:.6f}, {interval.high:.6f}] around adaptive {cell.point:.6f} "
        f"({cell.trials} trials)"
    )


def test_adaptive_meets_target_and_reports_it():
    cells = simulate_grid(10, (2, 4, 6), 500, seed=PINNED_SEED, target_half_width=0.02)
    for cell in cells.values():
        assert cell.met_target
        assert cell.half_width <= 0.02
        assert cell.target_half_width == 0.02


def test_adaptive_budget_exhaustion_freezes_below_target():
    # an unreachably tight target: every cell must freeze at the budget,
    # marked unmet, mirroring estimate_to_precision's best-effort return
    cells = simulate_grid(
        8, (3, 5), 1_000, seed=PINNED_SEED, target_half_width=1e-6, max_iterations=4_000
    )
    for cell in cells.values():
        assert cell.trials == 4_000
        assert not cell.met_target


def test_grid_batch_split_is_byte_identical():
    # numpy generators fill arrays from the stream in row-major order, so
    # chunking the draw differently cannot change any estimate — this is
    # the invariant the adaptive byte-identity contract rests on
    one = simulate_grid(9, (2, 4), 7_000, seed=PINNED_SEED)
    split = simulate_grid(9, (2, 4), 7_000, seed=PINNED_SEED, batch=999)
    assert one == split


def test_fixed_grid_precision_mode_matches_plain_estimates():
    plain = simulate_grid(10, (2, 4), 3_000, seed=PINNED_SEED)
    cells = simulate_grid(10, (2, 4), 3_000, seed=PINNED_SEED, precision=True)
    for f in (2, 4):
        assert cells[f].point == plain[f]
        assert cells[f].trials == 3_000
        assert cells[f].low <= plain[f] <= cells[f].high
        assert cells[f].target_half_width is None


def test_adaptive_validation_errors():
    with pytest.raises(ValueError, match="target_half_width must be positive"):
        simulate_grid(8, (3,), 100, seed=1, target_half_width=0.0)
    with pytest.raises(ValueError, match="confidence must be in"):
        simulate_grid(8, (3,), 100, seed=1, target_half_width=0.01, confidence=1.0)
    with pytest.raises(ValueError, match="max_iterations"):
        simulate_grid(8, (3,), 1_000, seed=1, target_half_width=0.01, max_iterations=10)


def test_mad_grid_adaptive_mode_tracks_equation1():
    mads = mean_absolute_deviation_grid(
        (2, 3), 500, n_max=20, seed=PINNED_SEED, target_half_width=0.02
    )
    assert set(mads) == {2, 3}
    for f, mad in mads.items():
        assert 0 < mad < 0.03, (f, mad)


# ----------------------------------------------------------- API hardening


def test_iterations_zero_raises_value_error_not_zero_division():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="iterations"):
        simulate_success_probability(8, 3, 0, rng)
    with pytest.raises(ValueError, match="iterations"):
        simulate_grid(8, (3,), 0, rng=rng)


def test_rng_and_seed_together_raise_type_error():
    rng = np.random.default_rng(0)
    with pytest.raises(TypeError, match="not both"):
        simulate_success_probability(8, 3, 100, rng=rng, seed=1)
    with pytest.raises(TypeError, match="not both"):
        simulate_grid(8, (3,), 100, rng=rng, seed=1)
    with pytest.raises(TypeError, match="not both"):
        simulate_curve(3, 100, rng=rng, seed=1)
    with pytest.raises(TypeError, match="not both"):
        mean_absolute_deviation(3, 100, rng=rng, seed=1)
    with pytest.raises(TypeError, match="not both"):
        mean_absolute_deviation_grid((3,), 100, rng=rng, seed=1)


def test_neither_rng_nor_seed_still_raises():
    with pytest.raises(TypeError, match="either"):
        simulate_grid(8, (3,), 100)
    with pytest.raises(TypeError, match="either"):
        simulate_success_probability(8, 3, 100)


def test_simulate_curve_empty_range_raises_like_exact():
    from repro.analysis import success_curve

    with pytest.raises(ValueError, match="empty N range"):
        simulate_curve(3, 100, seed=1, n_min=20, n_max=10)
    with pytest.raises(ValueError, match="empty N range"):
        success_curve(3, n_min=20, n_max=10)
    # implicit n_min = f+1 beyond n_max is the same empty range
    with pytest.raises(ValueError, match="empty N range"):
        simulate_curve(12, 100, seed=1, n_max=10)


def test_grid_validation_errors():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="at least one"):
        simulate_grid(8, (), 100, rng=rng)
    with pytest.raises(ValueError, match="f must be"):
        simulate_grid(8, (19,), 100, rng=rng)
    with pytest.raises(ValueError, match="n >= 2"):
        failure_rank_matrix(1, 10, rng)
    with pytest.raises(ValueError, match="f must be"):
        failure_matrix_at(failure_rank_matrix(4, 5, rng), 11)


def test_sampler_and_rank_basis_draw_identical_key_matrices():
    # both consume one uniform matrix per call: a shared generator stays in
    # lockstep whichever sampler shape a caller mixes
    a = sample_failure_matrix(5, 3, 50, np.random.default_rng(11))
    b = failure_matrix_at(failure_rank_matrix(5, 50, np.random.default_rng(11)), 3)
    assert (a == b).all()

"""Tests for the synthetic failure-log generator."""

import numpy as np
import pytest

from repro.cluster import (
    FailureLogConfig,
    category_breakdown,
    generate_failure_log,
    network_fraction,
)
from repro.cluster.failurelog import CATEGORY_WEIGHTS, NETWORK_CATEGORIES


def test_weights_calibrated_to_13_percent_network():
    network_weight = sum(CATEGORY_WEIGHTS[c] for c in NETWORK_CATEGORIES)
    assert network_weight == pytest.approx(0.13)
    assert sum(CATEGORY_WEIGHTS.values()) == pytest.approx(1.0)


def test_config_validation():
    with pytest.raises(ValueError):
        FailureLogConfig(servers=0)
    with pytest.raises(ValueError):
        FailureLogConfig(duration_days=0)
    with pytest.raises(ValueError):
        FailureLogConfig(failures_per_server_year=0)


def test_log_shape_and_ordering():
    rng = np.random.default_rng(0)
    events = generate_failure_log(FailureLogConfig(), rng)
    assert len(events) > 50  # ~110 expected for the default fleet-year
    assert all(0 < e.time_days <= 365.0 for e in events)
    assert all(0 <= e.server < 100 for e in events)
    times = [e.time_days for e in events]
    assert times == sorted(times)


def test_network_fraction_near_13_percent():
    # many fleet-years to stabilize the share
    rng = np.random.default_rng(1)
    events = generate_failure_log(
        FailureLogConfig(servers=100, duration_days=365 * 30, failures_per_server_year=1.1), rng
    )
    assert network_fraction(events) == pytest.approx(0.13, abs=0.01)


def test_category_breakdown_sums_to_one():
    rng = np.random.default_rng(2)
    events = generate_failure_log(FailureLogConfig(), rng)
    breakdown = category_breakdown(events)
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert set(breakdown) <= set(CATEGORY_WEIGHTS)


def test_network_related_flag():
    rng = np.random.default_rng(3)
    events = generate_failure_log(FailureLogConfig(), rng)
    for e in events:
        assert e.network_related == (e.category in {"nic", "hub", "cable"})


def test_empty_log_edges():
    assert category_breakdown([]) == {}
    assert network_fraction([]) == 0.0


def test_reproducible_with_seed():
    a = generate_failure_log(FailureLogConfig(), np.random.default_rng(9))
    b = generate_failure_log(FailureLogConfig(), np.random.default_rng(9))
    assert a == b

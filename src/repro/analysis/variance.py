"""Variance reduction for the survivability Monte Carlo.

Equation 1 (:mod:`repro.analysis.exact`) counts bad failure sets by
conditioning on the hub state, so the same conditioning is available to the
simulation for free: stratify on *how many hubs failed* and most of the
estimator's variance disappears into closed forms (docs/model.md §11).

With ``j`` of the 2 hubs failed among ``f`` uniform failures over the
``2N + 2`` components, the stratum weights are hypergeometric::

    w_j(N, f) = C(2, j) C(2N, f - j) / C(2N+2, f)

and the conditional success probabilities are

* ``j = 2`` — zero, exactly (no hubs, no routes);
* ``j = 1`` — exact: only the surviving network's direct route can work,
  so ``p_1 = C(2N-2, f-1) / C(2N, f-1)`` (:func:`one_hub_conditional_success`);
* ``j = 0`` — the only stratum that needs sampling.  Both hubs are up, the
  remaining ``f`` failures are uniform over the ``2N`` NICs, and the
  whole f-grid reads off one NIC-only common-random-numbers sweep
  (:func:`nic_connectivity_levels`, the hub-free analogue of
  :func:`repro.analysis.montecarlo.connectivity_levels`).

The stratified estimate ``p̂ = w_1 p_1 + w_0 p̂_0`` carries *only* the
sampled stratum's noise: its half-width is ``w_0`` times the stratum-0
interval, which is why the estimator needs far fewer trials than crude CRN
sampling for the same CI width.

On top of stratification, the endpoint-dead indicator ``X`` (some endpoint
lost both NICs — the ``2 C(2N-2, f-2) - C(2N-4, f-4)`` term of Equation 1)
is a control variate with known conditional mean
(:func:`endpoint_dead_conditional_mean`).  ``X`` and the success indicator
``S`` are mutually exclusive, so the regression-optimal coefficient
collapses to a closed form and the CV estimator reduces to the ratio form

::

    p̂_0,cv = (1 - μ_X) · a / (a + c)

where ``a`` counts surviving rows and ``c`` the bad-but-not-endpoint-dead
rows (crossed endpoints with every intermediate covered).  On the paper
grid ``f < N`` the ``c`` term is zero for most cells and the CV estimate
lands exactly on Equation 1 — the Monte Carlo then only spends trials
certifying the interval.

Intervals: stratum 0 keeps a Wilson interval on its own counts (``(a, T)``
plain, ``(a, a + c)`` scaled by ``1 - μ_X`` for the CV form — both keep the
z²-continuity floor that makes adaptive stopping sound at p̂ near 1), and
the combined cell interval is that half-width scaled by ``w_0``.  Cells are
published as :class:`repro.obs.precision.CellPrecision` records with
``method`` set, so precision CSVs, flight events, and the watch dashboard
distinguish stratified intervals from plain binomial ones.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.combinatorics import comb0, covering_nic_failures
from repro.analysis.exact import _validate
from repro.analysis.montecarlo import (
    _padded_sweep,
    _resolve_rng,
    _SweepGroup,
    pair_connected_vec,
)
from repro.analysis.stats import wilson_interval
from repro.obs.precision import CellPrecision


# ------------------------------------------------------------- closed forms
def site_stratum_weights(universe: int, sites: int, f: int) -> tuple[float, ...]:
    """P[exactly j of ``sites`` designated components fail | f failures].

    Hypergeometric over a uniform size-``f`` failure set in a universe of
    ``universe`` components: ``w_j = C(s, j) C(U-s, f-j) / C(U, f)`` for
    ``j in [0, sites]``.  This is the generic form behind both the dual-hub
    strata (``sites=2``) and topology-declared strata
    (:attr:`repro.topology.model.Topology.strata_sites`).
    """
    if not 0 <= sites <= universe:
        raise ValueError(f"sites must be in [0, universe] = [0, {universe}], got {sites}")
    total = comb0(universe, f)
    if total == 0:
        raise ValueError(f"no failure sets of size {f} exist in a universe of {universe}")
    return tuple(comb0(sites, j) * comb0(universe - sites, f - j) / total for j in range(sites + 1))


def hub_stratum_weights(n: int, f: int) -> tuple[float, float, float]:
    """``(w_0, w_1, w_2)``: P[j hubs failed | f failures] for the pair model."""
    _validate(n, f)
    return site_stratum_weights(2 * n + 2, 2, f)


def one_hub_conditional_success(n: int, f: int) -> float:
    """P[pair survives | exactly one hub failed] — exact.

    With one hub down the two-hop repair is impossible, so the pair
    survives iff the ``f - 1`` NIC failures miss both endpoint NICs on the
    surviving network: ``C(2N-2, f-1) / C(2N, f-1)`` (the complement of
    Equation 1's one-hub bad term, per hub).
    """
    _validate(n, f)
    denominator = comb0(2 * n, f - 1)
    if denominator == 0:
        return 0.0
    return comb0(2 * n - 2, f - 1) / denominator


def both_hubs_up_conditional_success(n: int, f: int, two_hop: bool = True) -> float:
    """P[pair survives | both hubs up] — exact (the sampled stratum's truth).

    All ``f`` failures land on the ``2N`` NICs.  The bad sets are Equation
    1's hub-independent terms: an endpoint fully dead (inclusion-exclusion
    for both) plus, when two-hop repair is on, crossed half-alive endpoints
    with every intermediate covered.  Without two-hop, survival is simply
    "some network's endpoint NIC pair fully up".
    """
    _validate(n, f)
    denominator = comb0(2 * n, f)
    if denominator == 0:
        return 0.0
    if not two_hop:
        return (2 * comb0(2 * n - 2, f) - comb0(2 * n - 4, f)) / denominator
    bad = (
        2 * comb0(2 * n - 2, f - 2)
        - comb0(2 * n - 4, f - 4)
        + 2 * covering_nic_failures(n - 2, f - 2)
    )
    return 1.0 - bad / denominator


def endpoint_dead_conditional_mean(n: int, f: int) -> float:
    """μ_X = P[some endpoint lost both NICs | both hubs up] — exact.

    The control variate's known mean: ``(2 C(2N-2, f-2) - C(2N-4, f-4)) /
    C(2N, f)`` (one endpoint dead, twice, minus both dead).
    """
    _validate(n, f)
    denominator = comb0(2 * n, f)
    if denominator == 0:
        return 0.0
    return (2 * comb0(2 * n - 2, f - 2) - comb0(2 * n - 4, f - 4)) / denominator


# -------------------------------------------------------- trial allocation
def allocate_stratum_trials(total: int, scores) -> tuple[int, ...]:
    """Split a trial budget over strata proportional to ``scores``.

    Largest-remainder apportionment with a floor of one trial per stratum
    whose score is positive (a sampled stratum with zero trials would make
    the combined estimator undefined); zero-score strata get exactly zero.
    The result always sums to ``total``.
    """
    scores = [float(s) for s in scores]
    if total < 1:
        raise ValueError(f"iterations must be >= 1, got {total}")
    for s in scores:
        if s < 0 or not np.isfinite(s):
            raise ValueError(f"stratum scores must be finite and nonnegative, got {s}")
    positive = [i for i, s in enumerate(scores) if s > 0]
    if not positive:
        raise ValueError("at least one stratum score must be positive")
    if total < len(positive):
        raise ValueError(
            f"trial budget {total} cannot cover {len(positive)} strata "
            f"with at least one trial each"
        )
    allocations = [0] * len(scores)
    for i in positive:
        allocations[i] = 1
    remainder = total - len(positive)
    weight_sum = sum(scores)
    raw = [s / weight_sum * remainder for s in scores]
    floors = [int(x) for x in raw]
    for i, base in enumerate(floors):
        allocations[i] += base
    leftover = remainder - sum(floors)
    order = sorted(range(len(scores)), key=lambda i: (-(raw[i] - floors[i]), i))
    for i in order[:leftover]:
        allocations[i] += 1
    return tuple(allocations)


def _round_allocations(total: int, scores) -> tuple[int, ...]:
    """Largest-remainder rounding *without* the one-each floor.

    Later adaptive rounds only top up strata that already hold samples, so
    a round may legitimately give a stratum zero new trials; the strict
    floor applies to the first round only (:func:`allocate_stratum_trials`).
    """
    scores = [float(s) for s in scores]
    weight_sum = sum(scores)
    if total <= 0 or weight_sum <= 0:
        return tuple(0 for _ in scores)
    raw = [s / weight_sum * total for s in scores]
    floors = [int(x) for x in raw]
    leftover = total - sum(floors)
    order = sorted(range(len(scores)), key=lambda i: (-(raw[i] - floors[i]), i))
    allocations = list(floors)
    for i in order[:leftover]:
        allocations[i] += 1
    return tuple(allocations)


# --------------------------------------------------- conditional sampling
def sample_conditional_failure_matrix(
    n: int,
    f: int,
    stratum: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Failure sets of size ``f`` conditional on the hub stratum.

    Returns the full-width ``(iterations, 2n+2)`` boolean matrix with
    exactly ``stratum`` hub failures (columns 0–1) and ``f - stratum`` NIC
    failures, uniform over all such sets — the conditional analogue of
    :func:`repro.analysis.montecarlo.sample_failure_matrix`.  The one-hub
    stratum picks the failed hub uniformly per row.  Seed-based callers
    get a stream keyed ``mc-cond/n={n}/f={f}/j={stratum}``.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if stratum not in (0, 1, 2):
        raise ValueError(f"stratum must be 0, 1, or 2 hub failures, got {stratum}")
    width = 2 * n + 2
    if not 0 <= f <= width:
        raise ValueError(f"f must be in [0, {width}], got {f}")
    nic_failures = f - stratum
    if nic_failures < 0 or nic_failures > 2 * n:
        raise ValueError(f"no failure sets with {stratum} hub failures exist for f={f}, N={n}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = _resolve_rng(rng, seed, f"mc-cond/n={n}/f={f}/j={stratum}")
    failed = np.zeros((iterations, width), dtype=bool)
    if stratum == 2:
        failed[:, :2] = True
    elif stratum == 1:
        hub0_failed = rng.random(iterations) < 0.5
        failed[:, 0] = hub0_failed
        failed[:, 1] = ~hub0_failed
    if nic_failures > 0:
        keys = rng.random((iterations, 2 * n))
        picks = np.argpartition(keys, nic_failures - 1, axis=1)[:, :nic_failures]
        nic_failed = np.zeros((iterations, 2 * n), dtype=bool)
        np.put_along_axis(nic_failed, picks, True, axis=1)
        failed[:, 2:] = nic_failed
    return failed


# ------------------------------------------------------- NIC-only kernels
def nic_connectivity_levels(
    component_keys: np.ndarray, two_hop: bool = True, widths: np.ndarray | None = None
) -> np.ndarray:
    """Breakdown thresholds over NIC-only keys (both hubs conditioned up).

    The stratum-0 analogue of
    :func:`repro.analysis.montecarlo.connectivity_levels`: the key matrix
    covers only the ``2N`` NICs (columns ``a0, a1, b0, b1`` then the
    intermediates' NIC pairs), the hub terms drop out of every route, and
    the per-row threshold counts NIC failures the pair tolerates given
    both hubs up.  ``widths`` masks right-padded rows exactly as in the
    full-width kernel, so the padded full-grid pass works per stratum too.
    """
    k = component_keys
    direct0 = np.minimum(k[:, 0], k[:, 2])
    direct1 = np.minimum(k[:, 1], k[:, 3])
    critical = np.maximum(direct0, direct1)
    if two_hop and k.shape[1] > 4:
        # Best intermediate: needs both of its NICs; any one suffices.
        pair_min = np.minimum(k[:, 4::2], k[:, 5::2])
        if widths is not None:
            widths_col = np.asarray(widths)[:, None]
            real = np.arange(pair_min.shape[1])[None, :] < (widths_col - 4) // 2
            pair_min = np.where(real, pair_min, -np.inf)
        inter = pair_min.max(axis=1)
        crossed = np.maximum(np.minimum(k[:, 0], k[:, 3]), np.minimum(k[:, 1], k[:, 2]))
        critical = np.maximum(critical, np.minimum(inter, crossed))
    below = k < critical[:, None]
    if widths is not None:
        below &= np.arange(k.shape[1])[None, :] < np.asarray(widths)[:, None]
    return below.sum(axis=1)


def endpoint_dead_levels(
    component_keys: np.ndarray, widths: np.ndarray | None = None
) -> np.ndarray:
    """Per row: the NIC-failure rank at which an endpoint first goes dead.

    The control variate ``X`` at level ``f`` is "some endpoint lost both
    NICs within the first ``f`` NIC failures".  An endpoint dies when the
    larger of its two NIC keys enters the failure set, so the event's rank
    is the rank of ``min(max(a0, a1), max(b0, b1))`` and ``X_f`` is simply
    ``rank < f`` — one histogram of these ranks serves every ``f``, in
    lockstep with the threshold histogram from the same draw.
    """
    k = component_keys
    first_dead = np.minimum(np.maximum(k[:, 0], k[:, 1]), np.maximum(k[:, 2], k[:, 3]))
    below = k < first_dead[:, None]
    if widths is not None:
        below &= np.arange(k.shape[1])[None, :] < np.asarray(widths)[:, None]
    return below.sum(axis=1)


# -------------------------------------------------------- grid estimators
def _stratified_cell(
    group: _SweepGroup,
    f: int,
    elapsed: float,
    two_hop: bool,
    control_variate: bool,
    confidence: float,
    target_half_width: float | None,
    topology: str | None,
) -> CellPrecision:
    """Fold one group's histograms into a stratified (N, f) precision cell.

    ``a`` counts stratum-0 rows surviving at level ``f``; the CV form also
    needs ``d`` (endpoint-dead rows, indicator known-mean μ_X) and ``c``
    (the remaining bad rows).  ``S`` and ``X`` are mutually exclusive, so
    the optimal-coefficient control variate reduces to the ratio estimate
    ``(1 - μ_X) a / (a + c)`` with a matching scaled Wilson interval; the
    combined cell interval is the stratum-0 half-width times ``w_0``
    (strata 1 and 2 are exact and contribute no width).
    """
    n = group.n
    trials = group.trials
    w0, w1, _ = hub_stratum_weights(n, f)
    exact_part = w1 * one_hub_conditional_success(n, f)
    survivors = int(group.hists["surv"][f:].sum())
    if control_variate:
        mu_x = endpoint_dead_conditional_mean(n, f)
        dead = int(group.hists["dead"][:f].sum())
        covered_bad = trials - survivors - dead
        conditional_trials = survivors + covered_bad
        if conditional_trials == 0:
            stratum_estimate, stratum_half = 0.0, 1.0 - mu_x
        else:
            interval = wilson_interval(survivors, conditional_trials, confidence)
            stratum_estimate = (1.0 - mu_x) * interval.point
            stratum_half = (1.0 - mu_x) * interval.half_width
        method = "stratified-cv"
    else:
        interval = wilson_interval(survivors, trials, confidence)
        stratum_estimate = interval.point
        stratum_half = interval.half_width
        method = "stratified"
    return CellPrecision.from_stratified(
        n,
        f,
        survivors,
        trials,
        point=exact_part + w0 * stratum_estimate,
        half_width=w0 * stratum_half,
        confidence=confidence,
        target_half_width=target_half_width,
        elapsed_s=elapsed,
        topology=topology,
        method=method,
    )


def _stratified_full_grid(
    ns: tuple[int, ...],
    per_n_fs: dict[int, tuple[int, ...]],
    streams: dict[int, np.random.Generator],
    iterations: int,
    two_hop: bool,
    batch: int,
    control_variate: bool,
    target_half_width: float | None,
    confidence: float,
    max_iterations: int | None,
    precision: bool,
    topology: str | None = None,
) -> dict[int, dict[int, float]] | dict[int, dict[int, CellPrecision]]:
    """The stratified estimator's padded multi-N engine instantiation.

    One NIC-only draw per group per round feeds two level reductions —
    breakdown thresholds and endpoint-death ranks — whose histograms
    answer every ``f`` of every ``N``; strata 1 and 2 never cost a trial.
    Called by :func:`repro.analysis.montecarlo.simulate_full_grid` and
    (single-N) :func:`stratified_grid`.
    """
    groups = [
        _SweepGroup(n, 2 * n, streams[n], per_n_fs[n], tracks=("surv", "dead"))
        for n in ns
    ]

    def levels(keys: np.ndarray, widths: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "surv": nic_connectivity_levels(keys, two_hop=two_hop, widths=widths),
            "dead": endpoint_dead_levels(keys, widths=widths),
        }

    def cell(group: _SweepGroup, f: int, elapsed: float) -> CellPrecision:
        return _stratified_cell(
            group, f, elapsed, two_hop, control_variate, confidence, target_half_width, topology
        )

    return _padded_sweep(
        groups,
        levels,
        cell,
        iterations,
        batch,
        target_half_width,
        confidence,
        max_iterations,
        precision,
    )


def stratified_grid(
    n: int,
    fs: tuple[int, ...],
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    control_variate: bool = True,
    target_half_width: float | None = None,
    confidence: float = 0.95,
    max_iterations: int | None = None,
    precision: bool = False,
    topology: str | None = None,
) -> dict[int, float] | dict[int, CellPrecision]:
    """Hub-stratified P[Success] at one N for every ``f`` in ``fs`` at once.

    The variance-reduced counterpart of
    :func:`repro.analysis.montecarlo.simulate_grid` (which dispatches here
    for ``method="stratified"`` / ``"stratified-cv"``): strata with one or
    two hub failures are answered exactly, and one NIC-only
    common-random-numbers sweep serves the sampled both-hubs-up stratum
    across the whole f-grid.  ``control_variate=True`` additionally folds
    in the endpoint-dead control variate (see the module docstring).

    Call shape, fixed/adaptive/precision modes, and return shapes follow
    ``simulate_grid``; intervals are stratified
    (:meth:`~repro.obs.precision.CellPrecision.from_stratified`,
    ``method`` set accordingly) instead of plain Wilson.  With ``seed``
    the stream is keyed ``mc-strat/n={n}`` — independent of the crude
    estimator's ``mc-grid`` streams, and shared with
    :func:`~repro.analysis.montecarlo.simulate_full_grid`'s stratified
    methods so full-grid slices reproduce single-N runs byte for byte.
    ``topology`` only labels the published precision cells (the dual-hub
    topology's attached stratified kernel threads its name through).
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    width = 2 * n + 2
    for f in fs:
        if not 0 <= f <= width:
            raise ValueError(f"f must be in [0, {width}], got {f}")
    rng = _resolve_rng(rng, seed, f"mc-strat/n={n}")
    result = _stratified_full_grid(
        (n,),
        {n: tuple(fs)},
        {n: rng},
        iterations,
        two_hop,
        batch,
        control_variate,
        target_half_width,
        confidence,
        max_iterations,
        precision,
        topology=topology,
    )
    return result[n]


def stratified_success_probability(
    n: int,
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    control_variate: bool = True,
    allocations: tuple[int, int, int] | None = None,
) -> float:
    """Stratified point estimate of Equation 1 for one (N, f) cell.

    The per-point counterpart of :func:`stratified_grid`, mirroring
    :func:`repro.analysis.montecarlo.simulate_success_probability`'s call
    shape.  ``allocations`` is an optional per-stratum trial split
    ``(m_0, m_1, m_2)``; the default ``(iterations, 0, 0)`` spends the
    whole budget on the only stratum that needs sampling — a stratum
    allocated zero trials is answered by its closed form instead
    (:func:`both_hubs_up_conditional_success`,
    :func:`one_hub_conditional_success`, and the zero of the both-hubs-down
    stratum).  Explicit allocations exercise the conditional sampler
    (:func:`sample_conditional_failure_matrix`) per stratum — the
    exhaustive-oracle property tests drive it this way.  Seed-based
    callers get a stream keyed ``mc-strat/n={n}/f={f}``, with one child
    stream per stratum.
    """
    _validate(n, f)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if allocations is None:
        allocations = (iterations, 0, 0)
    else:
        allocations = tuple(int(m) for m in allocations)
        if len(allocations) != 3:
            raise ValueError(
                f"allocations must have one entry per hub stratum (3), got {len(allocations)}"
            )
        for m in allocations:
            if m < 0:
                raise ValueError(f"stratum allocations must be nonnegative, got {m}")
        allocated = sum(allocations)
        if allocated > iterations:
            raise ValueError(
                f"stratum allocations sum to {allocated}, exceeding the trial budget {iterations}"
            )
    rng = _resolve_rng(rng, seed, f"mc-strat/n={n}/f={f}")
    stratum_rngs = rng.spawn(3)
    weights = hub_stratum_weights(n, f)
    exact_conditionals = (
        both_hubs_up_conditional_success(n, f, two_hop=two_hop),
        one_hub_conditional_success(n, f),
        0.0,
    )
    estimate = 0.0
    for stratum, weight in enumerate(weights):
        if weight == 0.0:
            continue
        trials = allocations[stratum]
        if trials == 0:
            estimate += weight * exact_conditionals[stratum]
            continue
        survivors = 0
        endpoint_dead = 0
        remaining = trials
        while remaining > 0:
            size = min(remaining, batch)
            failed = sample_conditional_failure_matrix(
                n, f, stratum, size, rng=stratum_rngs[stratum]
            )
            survivors += int(pair_connected_vec(failed, two_hop=two_hop).sum())
            if control_variate and stratum == 0:
                dead = (failed[:, 2] & failed[:, 3]) | (failed[:, 4] & failed[:, 5])
                endpoint_dead += int(dead.sum())
            remaining -= size
        if control_variate and stratum == 0:
            mu_x = endpoint_dead_conditional_mean(n, f)
            conditional_trials = trials - endpoint_dead
            if conditional_trials == 0:
                estimate += 0.0
            else:
                estimate += weight * (1.0 - mu_x) * survivors / conditional_trials
        else:
            estimate += weight * survivors / trials
    return estimate

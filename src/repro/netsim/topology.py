"""Topology builders for the paper's cluster architecture."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addresses import InterfaceAddr
from repro.netsim.backplane import Backplane
from repro.netsim.faults import FaultInjector, component_universe
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.simkit import Simulator, TraceRecorder


@dataclass
class Cluster:
    """A built dual-backplane cluster: nodes, hubs, faults, shared trace."""

    sim: Simulator
    nodes: list[Node]
    backplanes: list[Backplane]
    faults: FaultInjector
    trace: TraceRecorder
    #: shared metrics registry every component of this cluster publishes into
    metrics: MetricsRegistry | None = None

    @property
    def n(self) -> int:
        """Number of server nodes."""
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """The node with the given id (ids are dense 0..n-1)."""
        return self.nodes[node_id]

    def all_up(self) -> bool:
        """True iff every hub and NIC is operational."""
        return all(c.up for c in self.faults.components)


def build_dual_backplane_cluster(
    sim: Simulator,
    n: int,
    bandwidth_bps: float = 100e6,
    prop_delay_s: float = 5e-6,
    trace: TraceRecorder | None = None,
    loss_rate: float = 0.0,
    rng=None,
    metrics: MetricsRegistry | None = None,
) -> Cluster:
    """Build the paper's topology: ``n`` dual-NIC servers on two hubs.

    Every server gets one NIC on each of two separate, non-meshed backplanes.
    The returned :class:`Cluster` carries a :class:`FaultInjector` whose
    component ordering matches the analytic model (hubs first, then node
    NICs pairwise) so exactly-f injections correspond 1:1 with Equation 1.

    Parameters
    ----------
    sim:
        Simulator to build into.
    n:
        Number of servers; the deployed clusters had 8-12, Figure 2 sweeps
        up to 64.
    bandwidth_bps, prop_delay_s:
        Segment characteristics (defaults: the paper's 100 Mb/s).
    trace:
        Shared trace recorder; a fresh one is created if omitted.
    loss_rate, rng:
        Optional random per-frame loss on both segments (see
        :class:`~repro.netsim.backplane.Backplane`).
    """
    if n < 2:
        raise ValueError(f"a cluster needs at least 2 nodes, got {n}")
    if trace is None:
        trace = TraceRecorder(sim)
    registry = resolve_registry(metrics)
    backplanes = [
        Backplane(
            sim,
            network_id=net,
            bandwidth_bps=bandwidth_bps,
            prop_delay_s=prop_delay_s,
            trace=trace,
            loss_rate=loss_rate,
            rng=rng,
            metrics=registry,
        )
        for net in (0, 1)
    ]
    nodes: list[Node] = []
    for i in range(n):
        node = Node(sim, node_id=i)
        for net in (0, 1):
            node.add_nic(
                Nic(InterfaceAddr(node=i, network=net), backplanes[net], trace=trace, metrics=registry)
            )
        nodes.append(node)
    cluster = Cluster(
        sim=sim, nodes=nodes, backplanes=backplanes, faults=None, trace=trace, metrics=registry  # type: ignore[arg-type]
    )
    cluster.faults = FaultInjector(sim, component_universe(cluster), trace=trace)
    return cluster

"""EXP-ALLPAIRS bench — whole-cluster survivability closed form and regimes."""

import numpy as np

from repro.analysis import (
    allpairs_success_curve,
    allpairs_success_probability,
    iid_allpairs_success_probability,
    iid_success_probability,
    simulate_allpairs_success,
    success_probability,
)


def test_allpairs_curves(benchmark):
    def build():
        return {f: allpairs_success_curve(f, n_max=63) for f in (2, 4, 6)}

    curves = benchmark(build)
    for f, (ns, ps) in curves.items():
        pair = np.array([success_probability(int(n), f) for n in ns])
        assert (ps <= pair + 1e-12).all()


def test_iid_divergence(benchmark, capsys):
    def regimes():
        rho = 0.02
        return [
            (n, iid_success_probability(n, rho), iid_allpairs_success_probability(n, rho))
            for n in (4, 16, 48)
        ]

    rows = benchmark.pedantic(regimes, rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        for n, pair, whole in rows:
            print(f"  N={n:2d}: pairwise={pair:.5f} whole-cluster={whole:.5f}")
    assert rows[-1][1] >= rows[0][1] - 1e-9  # pairwise rises
    assert rows[-1][2] < rows[0][2]          # whole-cluster decays


def test_allpairs_mc_agreement(benchmark):
    rng = np.random.default_rng(0)
    estimate = benchmark.pedantic(
        lambda: simulate_allpairs_success(16, 4, 150_000, rng), rounds=1, iterations=1, warmup_rounds=0
    )
    assert abs(estimate - allpairs_success_probability(16, 4)) < 0.005

"""Profiling glue: simulator event-loop accounting into the metrics registry.

``simkit`` exposes a dependency-free hook (:func:`repro.simkit.set_auto_profile`)
that profiles every subsequently created :class:`~repro.simkit.Simulator` and
hands the profile to a sink after each ``run()``.  This module provides the
sink that publishes those numbers — events fired, callback seconds by
category, events/sec — into whatever registry is *current* at publication
time, so experiment drivers get per-run simulator throughput for free after
one :func:`install_profiling` call.
"""

from __future__ import annotations

from repro.obs.metrics import current_registry
from repro.simkit.simulator import SimProfile, set_auto_profile

_installed = False


def publish_profile(profile: SimProfile) -> None:
    """Add a profile's unpublished deltas to the current registry.

    Safe to call repeatedly (after every ``run()``): only growth since the
    previous publication is added, so totals stay correct across resumed
    simulations and multiple simulators.
    """
    deltas = profile.drain_deltas()
    if deltas["events"] == 0 and deltas["run_seconds"] == 0.0:
        return
    registry = current_registry()
    events_total = registry.counter("sim_events_total")
    cb_total = registry.counter("sim_callback_seconds_total")
    run_total = registry.counter("sim_run_seconds_total")
    events_total.add(deltas["events"])
    cb_total.add(deltas["callback_seconds"])
    run_total.add(deltas["run_seconds"])
    for category, (n, secs) in deltas["by_category"].items():
        registry.counter("sim_events_total", labels={"category": category}).add(n)
        registry.counter("sim_callback_seconds_total", labels={"category": category}).add(secs)
    if run_total.value > 0:
        registry.gauge("sim_events_per_second").set(events_total.value / run_total.value)


def install_profiling() -> None:
    """Profile every simulator created from now on, publishing via the sink."""
    global _installed
    set_auto_profile(True, sink=publish_profile)
    _installed = True


def uninstall_profiling() -> None:
    """Stop auto-profiling new simulators (existing ones keep their profile)."""
    global _installed
    set_auto_profile(False)
    _installed = False


def profiling_installed() -> bool:
    """True while :func:`install_profiling` is in effect."""
    return _installed


def publish_mc_throughput(iterations: int, wall_seconds: float) -> None:
    """Record a completed Monte Carlo batch run in the current registry."""
    registry = current_registry()
    total = registry.counter("mc_iterations_total")
    wall = registry.counter("mc_wall_seconds_total")
    total.add(iterations)
    wall.add(wall_seconds)
    if wall.value > 0:
        registry.gauge("mc_iterations_per_second").set(total.value / wall.value)

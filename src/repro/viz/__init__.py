"""Output rendering: ASCII charts, aligned tables, CSV emitters.

matplotlib is unavailable in the offline reproduction environment, so every
figure is emitted twice: as a CSV series file (plot-ready elsewhere) and as
an ASCII rendering good enough to read the curve shapes directly in a
terminal or in EXPERIMENTS.md.
"""

from repro.viz.textplot import line_chart
from repro.viz.tables import metrics_summary_table, render_table
from repro.viz.csvout import write_csv
from repro.viz.svg import svg_line_chart
from repro.viz.timeline import render_timeline

__all__ = [
    "line_chart",
    "render_table",
    "metrics_summary_table",
    "write_csv",
    "svg_line_chart",
    "render_timeline",
]

"""Performance bench — adaptive stopping vs the fixed-count sweep.

Guards the statistical-observability tentpole: ``simulate_grid`` with a
``target_half_width`` must reach the *same* worst-cell Wilson precision as
the fixed-iterations figure-2 quick grid while spending at least 30% fewer
total trials.  The fixed run spends its full budget on every N row; the
adaptive run stops each (N, f) cell at the target, so easy rows (small N,
extreme f) freeze after a fraction of the budget and only the widest cells
sample on.

``test_adaptive_saves_trials_at_equal_precision`` is the CI savings gate:
it *fails* if the adaptive controller ever needs more than 70% of the
fixed-count trials to deliver the fixed run's precision (a regression in
the stopping rule or the doubling schedule would trip it).  The committed
``BENCH_bench_adaptive_stopping.json`` snapshot records the measured
savings fraction via ``extra_info``; ``ADAPTIVE_BENCH_ITERATIONS`` shrinks
the workload for the quick CI profile.
"""

import os

import pytest

from repro.analysis import simulate_grid

# the figure-2 quick-profile shape: one f-family per N row
NS = (7, 12, 17, 22, 27)
F_GRID = (2, 3, 4, 5, 6)
ITERATIONS = int(os.environ.get("ADAPTIVE_BENCH_ITERATIONS", "200000"))
SEED = 2026
MIN_SAVINGS = 0.30
# cap the doubling schedule's round size: stopping decisions land on a finer
# grid, so cells overshoot their needed trial count less (batching cannot
# change any estimate — RNG consumption is batch-invariant)
ADAPTIVE_BATCH = max(2000, ITERATIONS // 8)


def _fixed_worst_half_width():
    """Worst Wilson half-width over the fixed-count grid (the precision bar)."""
    worst = 0.0
    for n in NS:
        cells = simulate_grid(n, F_GRID, ITERATIONS, seed=SEED, precision=True)
        worst = max(worst, max(c.half_width for c in cells.values()))
    return worst


def test_fixed_grid_baseline(benchmark):
    """The fixed-count sweep every cell pays the full budget for."""

    def fixed():
        return [simulate_grid(n, F_GRID, ITERATIONS, seed=SEED) for n in NS]

    rows = benchmark.pedantic(fixed, rounds=1, iterations=1, warmup_rounds=0)
    assert len(rows) == len(NS)
    benchmark.extra_info["total_trials"] = len(NS) * ITERATIONS


def test_adaptive_saves_trials_at_equal_precision(benchmark):
    """CI savings gate: same precision bar, >= 30% fewer trials."""
    target = _fixed_worst_half_width()

    def adaptive():
        return [
            simulate_grid(
                n,
                F_GRID,
                iterations=2000,
                seed=SEED,
                target_half_width=target,
                max_iterations=ITERATIONS,
                batch=ADAPTIVE_BATCH,
            )
            for n in NS
        ]

    rows = benchmark.pedantic(adaptive, rounds=1, iterations=1, warmup_rounds=0)

    # precision bar: every cell at or below the fixed run's worst half-width
    worst = max(c.half_width for cells in rows for c in cells.values())
    assert worst <= target * (1 + 1e-9)
    assert all(c.met_target for cells in rows for c in cells.values())

    # CRN accounting: a row's sampling cost is the max over its cells
    adaptive_trials = sum(max(c.trials for c in cells.values()) for cells in rows)
    fixed_trials = len(NS) * ITERATIONS
    savings = 1 - adaptive_trials / fixed_trials
    benchmark.extra_info["target_half_width"] = round(target, 6)
    benchmark.extra_info["adaptive_trials"] = adaptive_trials
    benchmark.extra_info["fixed_trials"] = fixed_trials
    benchmark.extra_info["trials_saved_fraction"] = round(savings, 4)
    assert savings >= MIN_SAVINGS, (
        f"adaptive stopping saved only {savings:.0%} of {fixed_trials:,} fixed "
        f"trials (gate: >= {MIN_SAVINGS:.0%})"
    )


def test_adaptive_result_matches_fixed_at_stopped_count():
    """Spot-check the byte-identity contract on the bench workload itself."""
    n = NS[2]
    cells = simulate_grid(
        n, F_GRID, iterations=2000, seed=SEED,
        target_half_width=0.01, max_iterations=ITERATIONS,
    )
    for f, cell in cells.items():
        fixed = simulate_grid(n, (f,), cell.trials, seed=SEED)
        assert fixed[f] == pytest.approx(cell.point, abs=0)

"""Performance bench — the common-random-numbers sweep kernel vs per-point.

Guards the tentpole optimization of the Monte Carlo hot path: one
``simulate_grid`` call over the whole f-grid must beat ``len(fs)``
independent ``simulate_success_probability`` calls at the same iteration
count — the kernel pays the sampling cost once and reads every f off a
single per-row breakdown-threshold histogram.

``test_speedup_grid_vs_per_point`` is the CI perf smoke: it *fails* if the
kernel is ever slower than the per-point estimator (a regression to
per-f sampling or an accidental Python loop would trip it).  The committed
``BENCH_bench_sweep_kernel.json`` snapshot records the full-profile
speedup (>= 3x on the reference machine); ``SWEEP_BENCH_ITERATIONS``
shrinks the workload for the quick CI profile.
"""

import os
from time import perf_counter

import numpy as np

from repro.analysis import simulate_grid, simulate_success_probability
from repro.analysis.montecarlo import connectivity_levels, failure_rank_matrix

N = 63
F_GRID = (2, 3, 4, 5, 6)
ITERATIONS = int(os.environ.get("SWEEP_BENCH_ITERATIONS", "500000"))


def test_sweep_kernel_throughput(benchmark):
    estimates = benchmark.pedantic(
        lambda: simulate_grid(N, F_GRID, ITERATIONS, rng=np.random.default_rng(0)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert sorted(estimates) == list(F_GRID)
    # monotone in f by construction (nested failure sets)
    values = [estimates[f] for f in F_GRID]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_per_point_equivalent_workload(benchmark):
    def per_point():
        rng = np.random.default_rng(0)
        return {f: simulate_success_probability(N, f, ITERATIONS, rng) for f in F_GRID}

    estimates = benchmark.pedantic(per_point, rounds=1, iterations=1, warmup_rounds=0)
    assert sorted(estimates) == list(F_GRID)


def test_speedup_grid_vs_per_point(benchmark):
    """CI perf smoke: the sweep kernel must not be slower than per-point."""

    def grid():
        return simulate_grid(N, F_GRID, ITERATIONS, rng=np.random.default_rng(1))

    started = perf_counter()
    rng = np.random.default_rng(1)
    for f in F_GRID:
        simulate_success_probability(N, f, ITERATIONS, rng)
    per_point_s = perf_counter() - started

    started = perf_counter()
    benchmark.pedantic(grid, rounds=1, iterations=1, warmup_rounds=0)
    grid_s = perf_counter() - started

    speedup = per_point_s / grid_s
    benchmark.extra_info["per_point_seconds"] = round(per_point_s, 4)
    benchmark.extra_info["speedup_vs_per_point"] = round(speedup, 2)
    assert speedup >= 1.0, (
        f"sweep kernel ({grid_s:.2f}s) slower than {len(F_GRID)} per-point "
        f"calls ({per_point_s:.2f}s) at {ITERATIONS} iterations"
    )


def test_rank_basis_throughput(benchmark):
    """The testable rank basis stays vectorized (argsort path, no hot loop)."""
    rng = np.random.default_rng(2)
    levels = benchmark(lambda: connectivity_levels(failure_rank_matrix(N, 50_000, rng)))
    assert levels.shape == (50_000,)
    assert levels.min() >= 0 and levels.max() <= 2 * N + 1

"""Property-based tests on the DES kernel's ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit import EventQueue, Simulator


@given(times=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(times=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=100))
def test_clock_never_goes_backwards(times):
    sim = Simulator()
    observed = []
    for t in times:
        sim.schedule_at(t, lambda: observed.append(sim.now))
    last = [0.0]

    while sim.step():
        assert sim.now >= last[0]
        last[0] = sim.now


@given(
    n=st.integers(1, 100),
    cancels=st.sets(st.integers(0, 99), max_size=50),
)
def test_cancelled_events_never_fire(n, cancels):
    q = EventQueue()
    fired = []
    events = [q.push(float(i % 7), lambda i=i: fired.append(i)) for i in range(n)]
    for i in cancels:
        if i < n:
            q.cancel(events[i])
    while q:
        q.pop().callback()
    live = {i for i in range(n)} - {i for i in cancels if i < n}
    assert set(fired) == live


@given(st.lists(st.tuples(st.floats(0, 10, allow_nan=False), st.integers(-5, 5)), min_size=1, max_size=100))
def test_priority_order_within_equal_times(entries):
    q = EventQueue()
    fired = []
    for time, priority in entries:
        q.push(time, lambda t=time, p=priority: fired.append((t, p)), priority=priority)
    while q:
        q.pop().callback()
    assert fired == sorted(fired, key=lambda tp: (tp[0], tp[1]))


@settings(deadline=None)
@given(seed=st.integers(0, 2**31 - 1), delays=st.lists(st.floats(0.001, 5), min_size=1, max_size=30))
def test_simulation_run_is_deterministic(seed, delays):
    def run_once():
        sim = Simulator()
        log = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda i=i: log.append((sim.now, i)))
        sim.run()
        return log

    assert run_once() == run_once()

"""FIG3 — "Convergence of Simulation Results to Equation Results".

Regenerates the paper's Figure 3: for f = 2..10, the mean absolute
difference between the Monte Carlo estimate and Equation 1 over f < N < 64,
as a function of iteration count (log10 x-axis).  The paper's stated
checkpoint: with 1,000 iterations the deviation is below ~0.01 for every f,
and it converges toward zero.

The sweep decomposes into one *column-level* engine job per iteration
count: inside the job, every N of the domain is evaluated once by the
common-random-numbers kernel
(:func:`repro.analysis.montecarlo.simulate_grid`), which serves the entire
f-family from a single sampling pass — the f-dimension no longer multiplies
the sampling cost, and the whole grid is ``len(iteration_grid)`` jobs
instead of ``len(f_values) * len(iteration_grid)``.  Per-N streams are
spawned from the job's own seed and keyed by N alone, so any subset of
f-curves reproduces the corresponding slice of the full grid on any
executor backend.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import mean_absolute_deviation_grid
from repro.analysis.convergence import ConvergenceStudy
from repro.engine import ExperimentSpec, Job, JobPlan, curve_value, register, run_plan
from repro.experiments.base import ExperimentResult
from repro.simkit.rng import seed_fingerprint

ITERATION_GRID = (10, 30, 100, 300, 1_000, 3_000, 10_000)
F_VALUES = tuple(range(2, 11))


def _mad_column(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> dict[str, float]:
    """Engine job: MAD for every f at one iteration count (one grid column).

    ``mean_absolute_deviation_grid`` spawns per-N children from an integer
    seed; fingerprint this job's spawned sequence to stay inside that
    contract.  Returns a string-keyed row for the checkpoint codec.

    With a ``target_ci`` the column's iteration count becomes a *budget*
    instead of an exact spend: each (N, f) cell starts at an eighth of the
    budget and stops early once its Wilson half-width reaches the target,
    so large columns stop paying for precision past the requested one.
    """
    iters = params["iterations"]
    target = params.get("target_ci")
    adaptive: dict[str, Any] = {}
    if target is not None:
        adaptive = {
            "target_half_width": target,
            "confidence": params.get("ci_confidence", 0.95),
            "max_iterations": iters,
        }
        iters = max(1, iters // 8)
    mads = mean_absolute_deviation_grid(
        tuple(params["fs"]),
        iters,
        n_max=params["n_max"],
        seed=seed_fingerprint(seed_seq),
        method=params.get("method", "crn"),
        **adaptive,
    )
    return {str(f): mad for f, mad in mads.items()}


def build_plan(
    f_values: tuple[int, ...] = F_VALUES,
    iteration_grid: tuple[int, ...] = ITERATION_GRID,
    n_max: int = 63,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
) -> JobPlan:
    """One curve-family job per iteration count (all f evaluated in-kernel)."""
    extra: dict[str, Any] = {}
    if target_ci is not None:
        extra = {"target_ci": target_ci, "ci_confidence": ci_confidence}
    if mc_method != "crn":
        extra["method"] = mc_method
    jobs = [
        Job(
            name=f"mad/iters={iters}",
            fn=_mad_column,
            params={"fs": list(f_values), "iterations": iters, "n_max": n_max, **extra},
        )
        for iters in iteration_grid
    ]

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        # quarantined columns are absent: NaN keeps the grid shape intact
        mad = np.array(
            [
                [curve_value(values, f"mad/iters={iters}", str(f)) for iters in iteration_grid]
                for f in f_values
            ]
        )
        study = ConvergenceStudy(
            f_values=tuple(f_values), iteration_grid=tuple(iteration_grid), mad=mad
        )
        result = ExperimentResult("figure3")
        result.meta = {
            "seed": seed,
            "f_values": list(f_values),
            "iteration_grid": list(iteration_grid),
            "n_max": n_max,
            "mc_method": mc_method,
        }
        if target_ci is not None:
            result.meta["target_ci"] = target_ci
            result.meta["ci_confidence"] = ci_confidence
        curves = {
            f"f={f}": (np.array(iteration_grid, dtype=float), study.series(f))
            for f in f_values
        }
        result.add_series(
            "mad",
            curves,
            caption="Figure 3: mean |simulation - Equation 1| over f<N<64",
            x_label="iterations",
            y_label="mean absolute deviation",
            x_log=True,
        )
        if 1_000 in iteration_grid:
            column = iteration_grid.index(1_000)
            rows = [[f, float(study.mad[i, column])] for i, f in enumerate(f_values)]
            result.add_table(
                "at_1000_iterations",
                ["f", "MAD at 1,000 iterations"],
                rows,
                caption="Paper checkpoint: MAD < ~0.01 at 1,000 iterations for every f",
            )
            worst = max(float(study.mad[i, column]) for i in range(len(f_values)))
            result.note(f"worst-case MAD at 1,000 iterations: {worst:.5f} (paper bound ~0.01)")
        # slope check: MC error should shrink ~ 1/sqrt(iterations)
        first, last = study.mad[:, 0].mean(), study.mad[:, -1].mean()
        expected_ratio = (iteration_grid[-1] / iteration_grid[0]) ** 0.5
        result.note(
            f"mean MAD shrank {first / last:.1f}x from {iteration_grid[0]} to "
            f"{iteration_grid[-1]} iterations (1/sqrt scaling predicts ~{expected_ratio:.1f}x)"
        )
        return result

    # each mad/iters=K job runs K heartbeat-counted trials per N in its grid
    n_count = n_max - max(2, min(f_values) + 1) + 1
    return JobPlan(
        experiment="figure3",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        meta={"total_trials": n_count * sum(iteration_grid)},
    )


def run(
    f_values: tuple[int, ...] = F_VALUES,
    iteration_grid: tuple[int, ...] = ITERATION_GRID,
    n_max: int = 63,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Regenerate Figure 3 (executor-independent for a given seed).

    ``target_ci`` turns each column's iteration count into an adaptive
    budget: cells stop sampling early once their interval half-width at
    ``ci_confidence`` reaches the target (see :func:`_mad_column`).
    ``mc_method`` selects the estimator per column (``"crn"``,
    ``"stratified"``, ``"stratified-cv"``).
    """
    plan = build_plan(
        f_values=f_values,
        iteration_grid=iteration_grid,
        n_max=n_max,
        seed=seed,
        target_ci=target_ci,
        ci_confidence=ci_confidence,
        mc_method=mc_method,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="figure3",
        run=run,
        profiles={"quick": {"iteration_grid": (10, 100, 1_000), "n_max": 40}, "full": {}},
        parallel=True,
        order=30,
        description="Fig. 3 MC convergence (MAD vs iterations)",
    )
)

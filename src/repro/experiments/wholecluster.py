"""EXP-ALLPAIRS — pairwise vs whole-cluster survivability (extension).

Equation 1 guarantees a *pair*; operators usually need the *cluster*.  This
experiment contrasts the two:

1. at fixed f (the paper's conditional regime), all-pairs survivability
   converges to 1 like Equation 1 but visibly below it;
2. under iid component failures (failure count growing with N), the two
   diverge qualitatively — pairwise availability keeps improving with
   cluster size while whole-cluster availability peaks and then decays.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import (
    allpairs_success_curve,
    allpairs_success_probability,
    iid_allpairs_success_probability,
    iid_success_probability,
    simulate_allpairs_success,
    success_curve,
)
from repro.engine import ExperimentSpec, Job, JobPlan, register, run_plan
from repro.experiments.base import ExperimentResult

#: (N, f) points where the all-pairs closed form is spot-checked by MC.
CHECK_POINTS: tuple[tuple[int, int], ...] = ((8, 3), (16, 4), (32, 5))


def _allpairs_check(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> float:
    """Engine job: Monte Carlo all-pairs survivability at one (N, f) point."""
    rng = np.random.default_rng(seed_seq)
    return simulate_allpairs_success(params["n"], params["f"], params["iterations"], rng)


def build_plan(
    f_values: tuple[int, ...] = (2, 4, 6),
    n_max: int = 63,
    rho_values: tuple[float, ...] = (0.005, 0.02),
    iid_n_values: tuple[int, ...] = (4, 8, 16, 32, 48, 63),
    mc_iterations: int = 50_000,
    seed: int = 12,
) -> JobPlan:
    """One job per Monte Carlo spot check; the closed forms reduce in-process."""
    jobs = [
        Job(
            name=f"mc_check/n={n}/f={f}",
            fn=_allpairs_check,
            params={"n": n, "f": f, "iterations": mc_iterations},
        )
        for n, f in CHECK_POINTS
    ]

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("wholecluster")
        result.meta = {
            "seed": seed,
            "f_values": list(f_values),
            "n_max": n_max,
            "mc_iterations": mc_iterations,
        }

        curves = {}
        for f in f_values:
            ns, pair_ps = success_curve(f, n_max=n_max)
            _, all_ps = allpairs_success_curve(f, n_max=n_max)
            curves[f"pair f={f}"] = (ns, pair_ps)
            curves[f"all f={f}"] = (ns, all_ps)
        result.add_series(
            "conditional",
            curves,
            caption="Fixed-f regime: whole-cluster survivability trails Equation 1",
            x_label="nodes",
            y_label="P[Success]",
        )

        iid_rows = []
        for rho in rho_values:
            for n in iid_n_values:
                iid_rows.append(
                    [rho, n, iid_success_probability(n, rho), iid_allpairs_success_probability(n, rho)]
                )
        result.add_table(
            "iid_regime",
            ["rho", "N", "pairwise availability", "whole-cluster availability"],
            iid_rows,
            caption="iid regime: growing the cluster helps any pair, hurts the whole",
        )

        check_rows = []
        for n, f in CHECK_POINTS:
            exact = allpairs_success_probability(n, f)
            # quarantined points are absent: NaN keeps the table shape intact
            mc = values.get(f"mc_check/n={n}/f={f}", float("nan"))
            check_rows.append([n, f, exact, mc, abs(exact - mc)])
        result.add_table(
            "mc_check",
            ["N", "f", "closed form", "Monte Carlo", "|diff|"],
            check_rows,
            caption="All-pairs closed form vs simulation",
        )
        worst_gap = max(abs(r[4]) for r in check_rows)
        result.note(
            f"all-pairs closed form vs MC worst |diff| = {worst_gap:.4f} at {mc_iterations} iterations"
        )
        return result

    return JobPlan(
        experiment="wholecluster",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        meta={"total_trials": sum(j.params.get("iterations", 0) for j in jobs)},
    )


def run(
    f_values: tuple[int, ...] = (2, 4, 6),
    n_max: int = 63,
    rho_values: tuple[float, ...] = (0.005, 0.02),
    iid_n_values: tuple[int, ...] = (4, 8, 16, 32, 48, 63),
    mc_iterations: int = 50_000,
    seed: int = 12,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Both regimes plus a Monte Carlo spot check of the new closed form."""
    plan = build_plan(
        f_values=f_values,
        n_max=n_max,
        rho_values=rho_values,
        iid_n_values=iid_n_values,
        mc_iterations=mc_iterations,
        seed=seed,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="wholecluster",
        run=run,
        profiles={"quick": {"mc_iterations": 10_000}, "full": {}},
        parallel=True,
        order=100,
        description="pairwise vs all-pairs survivability",
    )
)

"""Flight recorder: event stream integrity across workers, crashes, and replays."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine import Job, JobPlan, ParallelExecutor, RetryPolicy, SerialExecutor
from repro.obs.flightrecorder import (
    EVENT_KINDS,
    FlightRecorder,
    flight_summary,
    read_flight_events,
    set_flight_recorder,
)
from repro.obs.spans import flight_to_chrome_trace, validate_chrome_trace

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001, jitter_frac=0.0)


def _draw(params, seed_seq):
    return float(np.random.default_rng(seed_seq).random())


def _worker_killer(params, seed_seq):
    """Kills its host process once (first run), then returns normally."""
    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("killed worker")
        os._exit(1)
    return _draw(params, seed_seq)


def _plan(jobs, experiment="flight", seed=5):
    return JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)


@pytest.fixture
def recorder(tmp_path):
    rec = FlightRecorder(tmp_path / "run.flight.jsonl", experiment="flight")
    set_flight_recorder(rec)
    yield rec
    set_flight_recorder(None)
    rec.close()


class TestRecorderCore:
    def test_emit_writes_jsonl_with_monotone_seq(self, tmp_path):
        rec = FlightRecorder(tmp_path / "a.flight.jsonl", experiment="exp")
        rec.emit("plan.begin", jobs=2)
        rec.emit("job.submitted", job="j1")
        summary = rec.close()
        events = read_flight_events(tmp_path / "a.flight.jsonl")
        assert [e["kind"] for e in events] == ["plan.begin", "job.submitted", "run.end"]
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert all(e["experiment"] == "exp" for e in events)
        assert summary["events"] == 3

    def test_emit_after_close_is_dropped(self, tmp_path):
        rec = FlightRecorder(tmp_path / "a.flight.jsonl")
        rec.close()
        rec.emit("job.attempt", job="late")
        assert [e["kind"] for e in read_flight_events(tmp_path / "a.flight.jsonl")] == ["run.end"]

    def test_buffer_mode_drain_hands_events_to_parent_ingest(self, tmp_path):
        worker = FlightRecorder(None, experiment="exp")
        worker.emit("worker.spawn")
        worker.emit("job.completed", job="j1", ok=True)
        payload = worker.drain()
        assert worker.drain() == []  # drain clears
        assert all("seq" not in e for e in payload)  # parent owns global order

        parent = FlightRecorder(tmp_path / "p.flight.jsonl")
        parent.emit("plan.begin")
        assert parent.ingest(payload) == 2
        parent.close()
        events = read_flight_events(tmp_path / "p.flight.jsonl")
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert events[2]["kind"] == "job.completed"

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "torn.flight.jsonl"
        rec = FlightRecorder(path, experiment="exp")
        rec.emit("plan.begin")
        rec.emit("job.completed", job="j1")
        rec.close()
        # simulate SIGKILL mid-write: append a torn final line
        with path.open("a") as sink:
            sink.write('{"t": 1.0, "kind": "job.comp')
        events = read_flight_events(path)
        assert [e["kind"] for e in events] == ["plan.begin", "job.completed", "run.end"]
        assert flight_summary(events)["events"] == 3

    def test_unclosed_exit_drains_queued_events(self, tmp_path):
        """A recorder abandoned without close() must not lose its queued tail."""
        path = tmp_path / "unclosed.flight.jsonl"
        script = (
            "import sys\n"
            "from repro.obs.flightrecorder import FlightRecorder\n"
            "rec = FlightRecorder(sys.argv[1], experiment='exp')\n"
            "for i in range(500):\n"
            "    rec.emit('job.completed', job=f'j{i}')\n"
            "rec.emit('plan.end')\n"
            "sys.exit(0)  # interpreter exit without rec.close()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        subprocess.run(
            [sys.executable, "-c", script, str(path)], env=env, check=True, timeout=60.0
        )
        events = read_flight_events(path)
        assert len(events) == 501
        assert events[-1]["kind"] == "plan.end"  # the queued tail was drained

    def test_close_after_finalizer_detach_is_idempotent(self, tmp_path):
        path = tmp_path / "closed.flight.jsonl"
        rec = FlightRecorder(path, experiment="exp")
        rec.emit("plan.begin")
        rec.close()
        del rec  # finalizer already detached by close(); no double-drain
        events = read_flight_events(path)
        assert [e["kind"] for e in events] == ["plan.begin", "run.end"]

    def test_summary_attributes_jobs_to_worker_pids(self, tmp_path):
        rec = FlightRecorder(tmp_path / "a.flight.jsonl")
        rec.emit("job.completed", job="j1", pid=111)
        rec.emit("job.completed", job="j2", pid=111)
        rec.emit("job.completed", job="j3", pid=222)
        summary = rec.close()
        assert summary["workers"]["111"] == {"jobs": 2, "names": ["j1", "j2"]}
        assert summary["workers"]["222"]["jobs"] == 1


class TestEngineInstrumentation:
    def test_serial_run_records_full_job_lifecycle(self, recorder):
        SerialExecutor().run(_plan([Job("a", _draw), Job("b", _draw)]))
        recorder.flush()
        kinds = [e["kind"] for e in read_flight_events(recorder.path)]
        assert kinds.count("plan.begin") == 1
        assert kinds.count("job.submitted") == 2
        assert kinds.count("job.attempt") == 2
        assert kinds.count("job.completed") == 2
        assert kinds.count("plan.end") == 1
        # lifecycle order holds per job
        assert kinds.index("plan.begin") < kinds.index("job.submitted")
        assert kinds.index("job.attempt") < kinds.index("job.completed")

    def test_completed_events_carry_timing_and_seed_fingerprint(self, recorder):
        SerialExecutor().run(_plan([Job("a", _draw)]))
        recorder.flush()
        done = [e for e in read_flight_events(recorder.path) if e["kind"] == "job.completed"]
        assert len(done) == 1
        assert done[0]["job"] == "a"
        assert done[0]["ok"] is True
        assert done[0]["wall_s"] >= 0.0
        assert done[0]["cpu_s"] >= 0.0
        assert isinstance(done[0]["seed_fingerprint"], int)

    def test_parallel_run_keeps_one_totally_ordered_stream(self, recorder):
        names = [f"j{i}" for i in range(8)]
        ParallelExecutor(workers=3, policy=FAST_RETRY).run(
            _plan([Job(n, _draw) for n in names])
        )
        recorder.flush()
        events = read_flight_events(recorder.path)
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        kinds = {e["kind"] for e in events}
        assert {"plan.begin", "job.submitted", "job.completed", "worker.spawn",
                "worker.exit", "scheduler.gauge", "plan.end"} <= kinds
        assert kinds <= EVENT_KINDS | {"run.end"}
        # every completed job ran in a real worker process, not the parent
        parent = os.getpid()
        done_pids = {e["pid"] for e in events if e["kind"] == "job.completed"}
        assert done_pids and parent not in done_pids

    def test_pool_respawn_is_recorded_and_stream_stays_ordered(self, recorder, tmp_path):
        jobs = [Job(f"j{i}", _draw) for i in range(5)]
        jobs.append(Job("killer", _worker_killer, {"marker": str(tmp_path / "kill")}))
        execution = ParallelExecutor(workers=2, policy=FAST_RETRY).run(_plan(jobs))
        assert execution.pool_respawns >= 1
        recorder.flush()
        events = read_flight_events(recorder.path)
        respawns = [e for e in events if e["kind"] == "pool.respawn"]
        assert respawns and respawns[0]["requeued"] >= 1
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        # the killed worker's replacement completed the poisoned job
        assert "killer" in {e.get("job") for e in events if e["kind"] == "job.completed"}

    def test_retry_and_quarantine_events(self, recorder):
        def _always_fails(params, seed_seq):
            raise RuntimeError("permanent failure")

        SerialExecutor(policy=FAST_RETRY).run(
            _plan([Job("doomed", _always_fails), Job("ok", _draw)])
        )
        recorder.flush()
        events = read_flight_events(recorder.path)
        doomed = [e for e in events if e.get("job") == "doomed"]
        kinds = [e["kind"] for e in doomed]
        assert kinds.count("job.attempt") == 3
        assert kinds.count("job.retry") == 2
        assert kinds[-1] == "job.quarantined"
        assert doomed[-1]["attempts"] == 3
        assert "permanent failure" in doomed[-1]["error"]


class TestChromeExport:
    def test_parallel_stream_converts_to_valid_trace_with_worker_tracks(self, recorder):
        ParallelExecutor(workers=2, policy=FAST_RETRY).run(
            _plan([Job(f"j{i}", _draw) for i in range(6)])
        )
        recorder.flush()
        trace = flight_to_chrome_trace(read_flight_events(recorder.path))
        assert validate_chrome_trace(trace) == []
        tracks = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert "scheduler" in tracks
        assert sum(1 for t in tracks if t.startswith("worker ")) == 2
        bars = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert {b["name"] for b in bars} == {f"j{i}" for i in range(6)}
        counters = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "C"}
        assert counters == {"queue depth", "pool utilization"}

    def test_stats_cell_events_become_a_ci_width_counter_track(self):
        events = [
            {"t": 0.0, "kind": "run.begin", "pid": 1},
            {"t": 0.1, "kind": "stats.cell", "pid": 1, "n": 3, "f": 1,
             "trials": 1000, "half_width": 0.03, "done": False},
            {"t": 0.2, "kind": "stats.cell", "pid": 1, "n": 4, "f": 2,
             "trials": 1000, "half_width": 0.05, "done": False},
            {"t": 0.3, "kind": "stats.cell", "pid": 1, "n": 4, "f": 2,
             "trials": 4000, "half_width": 0.02, "done": True},
        ]
        trace = flight_to_chrome_trace(events)
        assert validate_chrome_trace(trace) == []
        samples = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "C" and e["name"] == "ci half-width"
        ]
        # worst width over the latest per-cell state: 0.03, then the wider
        # n=4 cell arrives, then its refinement brings the worst back down
        assert [s["args"]["worst"] for s in samples] == [0.03, 0.05, 0.03]

"""Phase two of the DRS daemon loop: fixing problems as they occur.

The repair policy follows the paper's description exactly:

1. A link DOWN transition only matters if it breaks the *active route* to
   that peer (probes on the idle second network failing do not reroute
   anything, they just update state).
2. If the other direct link to the peer is UP, switch the route to it —
   "when one link fails, the second direct link is checked and used."
3. If no direct link survives, broadcast a discovery request on every
   network whose local NIC still works; volunteers with a verified direct
   link to the target answer; the origin pins a two-hop route through the
   first usable volunteer — "a broadcast is made to identify whether or not
   some other server is able to act as a router."
4. When a direct link to the peer heals, the repair route is withdrawn and
   the direct route restored.

Loop freedom: the only multi-hop routes DRS ever installs are two-hop routes
whose second leg the volunteer verified and pinned as a *direct* host route.
A volunteer never forwards through a third node, so repair paths cannot
compose into cycles; the packet TTL remains as a defence-in-depth backstop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.drs.config import DrsConfig
from repro.drs.messages import (
    DISCOVERY_REQUEST_BYTES,
    DRS_PORT,
    INSTALL_ACK_BYTES,
    INSTALL_REQUEST_BYTES,
    LINK_DOWN_NOTIFICATION_BYTES,
    ROUTE_OFFER_BYTES,
    DiscoveryRequest,
    InstallAck,
    LinkDownNotification,
    RouteInstallRequest,
    RouteOffer,
)
from repro.drs.state import LinkState, PeerLink, PeerTable
from repro.netsim.addresses import NetworkId, NodeId
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry, resolve_registry
from repro.obs.progress import heartbeat
from repro.obs.spans import Span, span_log
from repro.protocols.icmp import PingResult, PingStatus
from repro.protocols.routing import Route, RouteSource
from repro.protocols.stack import HostStack
from repro.simkit import Counter, Simulator, TraceRecorder

_request_ids = itertools.count(1)


@dataclass
class _Discovery:
    """State of one in-flight discovery round."""

    target: NodeId
    request_id: int
    started_at: float
    failure_detected_at: float
    offers: list[RouteOffer] = field(default_factory=list)
    timeout_event: object | None = None
    settled: bool = False
    span: Span | None = None


class FailoverEngine:
    """Repair logic for one daemon."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        table: PeerTable,
        config: DrsConfig,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.table = table
        self.config = config
        self.trace = trace
        self._spans = span_log(trace) if trace is not None else None
        #: open detection→repair spans, one per peer being repaired
        self._failover_spans: dict[NodeId, Span] = {}
        self._discoveries: dict[int, _Discovery] = {}
        #: peers currently carried by a two-hop repair route: peer -> router
        self.repaired_via: dict[NodeId, NodeId] = {}
        #: second legs this node pinned as a volunteer: (origin, target) -> network
        self.volunteered_legs: dict[tuple[NodeId, NodeId], NetworkId] = {}
        #: peers for which every repair attempt has failed so far
        self.unreachable: set[NodeId] = set()
        #: set by the daemon when notify_peers is on: recheck(peer, network)
        self.recheck_link = None
        #: suppression window for notification storms: (peer, net) -> time
        self._notified_at: dict[tuple[NodeId, NetworkId], float] = {}
        self.repairs = Counter(f"drs{table.owner}.repairs")
        self.discoveries_started = Counter(f"drs{table.owner}.discoveries")
        self.failed_repairs = Counter(f"drs{table.owner}.failed_repairs")
        self.control_bytes = Counter(f"drs{table.owner}.control_bytes")
        registry = resolve_registry(metrics)
        self._m_repairs = registry.counter("drs_repairs_total")
        self._m_discoveries = registry.counter("drs_discoveries_total")
        self._m_failed = registry.counter("drs_failed_repairs_total")
        self._m_control_bytes = registry.counter("drs_control_bytes_total")
        self._m_latency = registry.histogram("drs_failover_latency_seconds")
        self._m_fanout = registry.histogram("drs_broadcast_fanout", buckets=DEFAULT_COUNT_BUCKETS)
        table.on_transition(self._on_link_transition)
        stack.udp.bind(DRS_PORT, self._on_control)

    @property
    def owner(self) -> NodeId:
        """The node this engine runs on."""
        return self.table.owner

    # ----------------------------------------------------------------- spans
    def _span_begin_failover(
        self, peer: NodeId, detected_at: float, network: NetworkId | None = None, trigger: str = "probe-loss"
    ) -> None:
        # The span start is detected_at, so its duration is exactly the
        # value observed into drs_failover_latency_seconds at close.
        spans = self._spans
        if spans is None or not spans.wants() or peer in self._failover_spans:
            return
        parent = spans.find_incident(node=self.owner, peer=peer, network=network)
        self._failover_spans[peer] = spans.begin(
            f"failover node{self.owner}->peer{peer}",
            "failover",
            node=self.owner,
            parent=parent,
            start=detected_at,
            peer=peer,
            trigger=trigger,
        )

    def _span_end_failover(self, peer: NodeId, outcome: str, **attrs) -> None:
        span = self._failover_spans.pop(peer, None)
        if span is not None:
            self._spans.end(span, outcome=outcome, **attrs)

    # ------------------------------------------------------------ transitions
    def _on_link_transition(self, link: PeerLink, old: LinkState, new: LinkState) -> None:
        if new is LinkState.DOWN:
            self._on_link_down(link)
        elif new is LinkState.UP and old in (LinkState.DOWN, LinkState.SUSPECT, LinkState.UNKNOWN):
            self._on_link_up(link)

    def _on_link_down(self, link: PeerLink) -> None:
        peer = link.peer
        # Two-hop repair routes riding this link as their first leg die with it.
        for target, router in list(self.repaired_via.items()):
            if router != peer:
                continue
            via = self.stack.table.lookup(target)
            if via is not None and not via.direct and via.next_hop == peer and via.network == link.network:
                self.repaired_via.pop(target, None)
                self.stack.table.withdraw(target, RouteSource.DRS)
                if self.trace is not None:
                    self.trace.record("drs-leg1-lost", node=self.owner, peer=target, router=peer)
                self._span_begin_failover(target, self.sim.now, network=link.network, trigger="leg1-lost")
                self._repair(target, self.sim.now)
        active = self.stack.table.lookup(peer)
        route_broken = (
            active is None
            or (active.direct and active.network == link.network)
            or (not active.direct and self._via_leg_suspect(active, link))
        )
        if not route_broken:
            return
        detected_at = self.sim.now
        if self.trace is not None:
            self.trace.record("drs-detect", node=self.owner, peer=peer, network=link.network)
        self._span_begin_failover(peer, detected_at, network=link.network)
        if self.config.notify_peers:
            self._notify_link_down(peer, link.network)
        self._repair(peer, detected_at)

    def _notify_link_down(self, peer: NodeId, network: NetworkId) -> None:
        # Suppress if someone (including us) already announced this link
        # within the last sweep: one failure, one storm-free announcement.
        last = self._notified_at.get((peer, network))
        if last is not None and self.sim.now - last < self.config.sweep_period_s:
            return
        self._notified_at[(peer, network)] = self.sim.now
        note = LinkDownNotification(origin=self.owner, peer=peer, network=network)
        fanout = 0
        for net in self.stack.node.networks:
            if self.stack.udp.broadcast(net, DRS_PORT, data=note, data_bytes=LINK_DOWN_NOTIFICATION_BYTES):
                self.control_bytes.add(LINK_DOWN_NOTIFICATION_BYTES)
                self._m_control_bytes.add(LINK_DOWN_NOTIFICATION_BYTES)
                fanout += 1
        self._m_fanout.observe(fanout)

    def _repair(self, peer: NodeId, detected_at: float) -> None:
        # Step 1: try the second direct link.
        other_nets = self.table.up_networks_to(peer)
        if other_nets:
            self._install_direct(peer, other_nets[0], detected_at)
            return
        # Step 2: no direct link believed up -> broadcast discovery.
        self._start_discovery(peer, detected_at)

    def _via_leg_suspect(self, active: Route, link: PeerLink) -> bool:
        # Active route is two-hop via a router; it is broken if the failed
        # link is our first leg to that router.
        return link.peer == active.next_hop and link.network == active.network

    def _on_link_up(self, link: PeerLink) -> None:
        peer = link.peer
        self.unreachable.discard(peer)
        active = self.stack.table.lookup(peer)
        if active is not None and not active.direct:
            if peer in self.repaired_via:
                # A direct link healed while we were routing two-hop: restore it.
                self.repaired_via.pop(peer, None)
                self._install_direct(peer, link.network, self.sim.now, healed=True)
            return
        if active is None:
            self._install_direct(peer, link.network, self.sim.now, healed=True)
            return
        if active.network != link.network and not self.table.is_up(peer, active.network):
            # The active direct route rides a link still believed down (e.g.
            # discovery failed during a total outage); move to the healed one.
            self._span_begin_failover(peer, self.sim.now, network=link.network, trigger="link-up")
            self._install_direct(peer, link.network, self.sim.now)

    # ----------------------------------------------------------- direct swap
    def _install_direct(self, peer: NodeId, network: NetworkId, detected_at: float, healed: bool = False) -> None:
        if healed:
            # Withdraw our repair route; the shadowed static entry returns.
            restored = self.stack.table.withdraw(peer, RouteSource.DRS)
            if restored is None or restored.network != network or not restored.direct:
                self.stack.table.install(
                    Route(dst=peer, network=network, next_hop=peer, source=RouteSource.DRS, installed_at=self.sim.now)
                )
            if self.trace is not None:
                self.trace.record("drs-restore", node=self.owner, peer=peer, network=network)
                if self._spans.wants():
                    self._spans.closed(
                        f"restore node{self.owner}->peer{peer}",
                        "restore",
                        start=self.sim.now,
                        node=self.owner,
                        parent=self._failover_spans.get(peer),
                        peer=peer,
                        network=network,
                    )
            return
        self.stack.table.install(
            Route(dst=peer, network=network, next_hop=peer, source=RouteSource.DRS, installed_at=self.sim.now)
        )
        self.repaired_via.pop(peer, None)
        self.unreachable.discard(peer)
        self.repairs.add()
        self._m_repairs.add()
        self._m_latency.observe(self.sim.now - detected_at)
        self._span_end_failover(peer, "direct-swap", network=network)
        hb = heartbeat()
        if hb is not None:
            hb.add(0, repairs=1)
        if self.trace is not None:
            self.trace.record(
                "drs-repair",
                node=self.owner,
                peer=peer,
                kind="direct-swap",
                network=network,
                detected_at=detected_at,
                repair_latency=self.sim.now - detected_at,
            )

    # ------------------------------------------------------------- discovery
    def _start_discovery(self, target: NodeId, detected_at: float) -> None:
        # One discovery per target at a time.
        for disc in self._discoveries.values():
            if disc.target == target and not disc.settled:
                return
        request_id = next(_request_ids)
        disc = _Discovery(
            target=target,
            request_id=request_id,
            started_at=self.sim.now,
            failure_detected_at=detected_at,
        )
        self._discoveries[request_id] = disc
        self.discoveries_started.add()
        self._m_discoveries.add()
        # Path-check retries and triggered rechecks reach here without an
        # open failover span; open one so the episode is still attributed.
        self._span_begin_failover(target, detected_at, trigger="discovery")
        if self._spans is not None and self._spans.wants():
            disc.span = self._spans.begin(
                f"discovery req{request_id}",
                "discovery",
                node=self.owner,
                parent=self._failover_spans.get(target),
                target=target,
                request_id=request_id,
            )
        request = DiscoveryRequest(origin=self.owner, target=target, request_id=request_id)
        sent_any = False
        fanout = 0
        for net in self.stack.node.networks:
            if self.stack.udp.broadcast(net, DRS_PORT, data=request, data_bytes=DISCOVERY_REQUEST_BYTES):
                self.control_bytes.add(DISCOVERY_REQUEST_BYTES)
                self._m_control_bytes.add(DISCOVERY_REQUEST_BYTES)
                sent_any = True
                fanout += 1
        self._m_fanout.observe(fanout)
        if not sent_any:
            # Both local NICs refused: the node is network-dead; nothing to do.
            self._settle_failure(disc)
            return
        disc.timeout_event = self.sim.schedule(
            self.config.discovery_timeout_s, lambda: self._on_discovery_timeout(request_id)
        )

    def _on_discovery_timeout(self, request_id: int) -> None:
        disc = self._discoveries.get(request_id)
        if disc is None or disc.settled:
            return
        if disc.offers:
            self._choose_offer(disc)
        else:
            self._settle_failure(disc)

    def _settle_failure(self, disc: _Discovery) -> None:
        disc.settled = True
        self._discoveries.pop(disc.request_id, None)
        self.failed_repairs.add()
        self._m_failed.add()
        self.unreachable.add(disc.target)
        if disc.span is not None:
            self._spans.end(disc.span, outcome="no-route", offers=len(disc.offers))
        self._span_end_failover(disc.target, "unreachable")
        hb = heartbeat()
        if hb is not None:
            hb.add(0, failed_repairs=1)
        if self.trace is not None:
            self.trace.record("drs-unreachable", node=self.owner, peer=disc.target)

    def _choose_offer(self, disc: _Discovery) -> None:
        # Deterministic preference: the target itself (stale belief case)
        # beats volunteers; then lowest router id.
        offer = min(disc.offers, key=lambda o: (o.router != o.target, o.router))
        if offer.router == disc.target:
            # Our DOWN belief was stale: the target answered the broadcast
            # directly, so the arrival network works; restore direct.
            disc.settled = True
            self._discoveries.pop(disc.request_id, None)
            if disc.span is not None:
                self._spans.end(disc.span, outcome="target-answered", offers=len(disc.offers))
            self._install_direct(disc.target, offer.leg2_network, disc.failure_detected_at)
            self.table.record_success(disc.target, offer.leg2_network, self.sim.now)
            return
        request = RouteInstallRequest(
            origin=self.owner, target=disc.target, request_id=disc.request_id, leg2_network=offer.leg2_network
        )
        # Ask the volunteer to pin its leg; routed send (our route to the
        # volunteer is intact, or its offer could not have reached us).
        if self.stack.udp.send(offer.router, DRS_PORT, data=request, data_bytes=INSTALL_REQUEST_BYTES):
            self.control_bytes.add(INSTALL_REQUEST_BYTES)
            self._m_control_bytes.add(INSTALL_REQUEST_BYTES)
        # Install optimistically on offer selection; the ack confirms, and a
        # failed install surfaces via the path checker.
        self._install_via(disc, offer)

    def _install_via(self, disc: _Discovery, offer: RouteOffer) -> None:
        disc.settled = True
        self._discoveries.pop(disc.request_id, None)
        if disc.span is not None:
            self._spans.end(disc.span, outcome="offer", router=offer.router, offers=len(disc.offers))
        # First leg: whichever network we can still reach the router on.
        router_nets = self.table.up_networks_to(offer.router)
        leg1 = router_nets[0] if router_nets else self.stack.node.networks[0]
        self.stack.table.install(
            Route(
                dst=disc.target,
                network=leg1,
                next_hop=offer.router,
                source=RouteSource.DRS,
                metric=2,
                installed_at=self.sim.now,
            )
        )
        self.repaired_via[disc.target] = offer.router
        self.unreachable.discard(disc.target)
        self.repairs.add()
        self._m_repairs.add()
        self._m_latency.observe(self.sim.now - disc.failure_detected_at)
        self._span_end_failover(disc.target, "two-hop", router=offer.router, leg1_network=leg1)
        hb = heartbeat()
        if hb is not None:
            hb.add(0, repairs=1)
        if self.trace is not None:
            self.trace.record(
                "drs-repair",
                node=self.owner,
                peer=disc.target,
                kind="two-hop",
                router=offer.router,
                leg1_network=leg1,
                leg2_network=offer.leg2_network,
                detected_at=disc.failure_detected_at,
                repair_latency=self.sim.now - disc.failure_detected_at,
            )

    # ---------------------------------------------------------- control plane
    def _on_control(self, dgram, src_node: NodeId, arrived_on: NetworkId) -> None:
        msg = dgram.data
        if isinstance(msg, DiscoveryRequest):
            self._answer_discovery(msg, arrived_on)
        elif isinstance(msg, RouteOffer):
            disc = self._discoveries.get(msg.request_id)
            if disc is not None and not disc.settled and msg.target == disc.target:
                disc.offers.append(msg)
                # First usable offer settles immediately: repair time matters
                # more than optimal router choice (paper's "new route is often
                # found in the time of a TCP retransmit").
                if disc.timeout_event is not None:
                    self.sim.cancel(disc.timeout_event)
                self._choose_offer(disc)
        elif isinstance(msg, RouteInstallRequest) and msg.target != self.owner:
            self._pin_second_leg(msg)
        elif isinstance(msg, InstallAck):
            pass  # optimistic install already done; ack is confirmation only
        elif isinstance(msg, LinkDownNotification):
            self._on_link_down_notification(msg)

    def _on_link_down_notification(self, msg: LinkDownNotification) -> None:
        if not self.config.notify_peers or msg.peer == self.owner:
            return
        # Remember the announcement so our own detection does not re-announce.
        self._notified_at[(msg.peer, msg.network)] = self.sim.now
        link = self.table.link(msg.peer, msg.network)
        if link.state is LinkState.DOWN or self.recheck_link is None:
            return
        # Recheck immediately rather than waiting for the sweep to come by.
        self.recheck_link(msg.peer, msg.network)

    def _answer_discovery(self, msg: DiscoveryRequest, arrived_on: NetworkId) -> None:
        if msg.origin == self.owner:
            return
        if msg.target == self.owner:
            # The origin can evidently reach us on the arrival network.
            offer = RouteOffer(router=self.owner, target=self.owner, request_id=msg.request_id, leg2_network=arrived_on)
            if self.stack.udp.send_direct(arrived_on, msg.origin, DRS_PORT, data=offer, data_bytes=ROUTE_OFFER_BYTES):
                self.control_bytes.add(ROUTE_OFFER_BYTES)
                self._m_control_bytes.add(ROUTE_OFFER_BYTES)
            return
        up_nets = self.table.up_networks_to(msg.target)
        if not up_nets:
            return  # cannot help
        # Prefer a second leg on a different network than the first leg.
        leg2 = next((n for n in up_nets if n != arrived_on), up_nets[0])
        offer = RouteOffer(router=self.owner, target=msg.target, request_id=msg.request_id, leg2_network=leg2)
        if self.stack.udp.send_direct(arrived_on, msg.origin, DRS_PORT, data=offer, data_bytes=ROUTE_OFFER_BYTES):
            self.control_bytes.add(ROUTE_OFFER_BYTES)
            self._m_control_bytes.add(ROUTE_OFFER_BYTES)

    def _pin_second_leg(self, msg: RouteInstallRequest) -> None:
        # Pin a direct host route for the target so forwarded traffic from
        # the origin exits on the verified leg regardless of our own table.
        self.stack.table.install(
            Route(
                dst=msg.target,
                network=msg.leg2_network,
                next_hop=msg.target,
                source=RouteSource.DRS,
                installed_at=self.sim.now,
            )
        )
        self.volunteered_legs[(msg.origin, msg.target)] = msg.leg2_network
        ack = InstallAck(router=self.owner, target=msg.target, request_id=msg.request_id)
        if self.stack.udp.send(msg.origin, DRS_PORT, data=ack, data_bytes=INSTALL_ACK_BYTES):
            self.control_bytes.add(INSTALL_ACK_BYTES)
            self._m_control_bytes.add(INSTALL_ACK_BYTES)

    # ------------------------------------------------------------ path checks
    def check_repaired_paths(self) -> None:
        """Re-validate two-hop routes and retry unreachable peers.

        Called periodically by the daemon.  A failed end-to-end check drops
        the repair route and re-runs discovery, so a dead volunteer cannot
        silently blackhole a peer; unreachable peers get a fresh discovery
        round each period in case the cluster healed around them.
        """
        for peer in list(self.repaired_via):
            self.stack.icmp.ping(peer, timeout_s=self.config.probe_timeout_s, callback=self._on_path_check)
        for peer in list(self.unreachable):
            if self.table.peer_reachable_direct(peer):
                self.unreachable.discard(peer)  # monitor healed it already
            else:
                self.unreachable.discard(peer)
                self._start_discovery(peer, self.sim.now)

    def _on_path_check(self, result: PingResult) -> None:
        peer = result.dst_node
        if result.status is PingStatus.REPLY or peer not in self.repaired_via:
            return
        self.repaired_via.pop(peer, None)
        self.stack.table.withdraw(peer, RouteSource.DRS)
        if self.trace is not None:
            self.trace.record("drs-path-check-failed", node=self.owner, peer=peer)
        self._start_discovery(peer, self.sim.now)

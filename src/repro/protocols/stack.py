"""Per-host protocol bundle and the cluster-wide installer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.node import Node
from repro.netsim.topology import Cluster
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.protocols.icmp import IcmpService
from repro.protocols.ip import NetworkLayer
from repro.protocols.routing import RoutingTable
from repro.protocols.tcp import TcpStack
from repro.protocols.udp import UdpService
from repro.simkit import Simulator, TraceRecorder


@dataclass
class HostStack:
    """Everything one server runs above its NICs."""

    node: Node
    table: RoutingTable
    net: NetworkLayer
    icmp: IcmpService
    udp: UdpService
    tcp: TcpStack


def build_host_stack(
    sim: Simulator,
    node: Node,
    trace: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
) -> HostStack:
    """Assemble the full stack on one node."""
    table = RoutingTable(owner=node.node_id)
    net = NetworkLayer(node, table, trace=trace)
    return HostStack(
        node=node,
        table=table,
        net=net,
        icmp=IcmpService(sim, net, metrics=metrics, trace=trace),
        udp=UdpService(net),
        tcp=TcpStack(sim, net),
    )


def install_stacks(
    cluster: Cluster, primary_network: int = 0, metrics: MetricsRegistry | None = None
) -> dict[int, HostStack]:
    """Install a stack on every cluster node with boot-time static routes.

    The static table sends everything direct on ``primary_network`` — the
    deployed configuration the paper starts from, which DRS then repairs
    around failures.  All stacks share one metrics registry (default: the
    current one).
    """
    registry = resolve_registry(metrics)
    stacks: dict[int, HostStack] = {}
    node_ids = [node.node_id for node in cluster.nodes]
    for node in cluster.nodes:
        stack = build_host_stack(cluster.sim, node, trace=cluster.trace, metrics=registry)
        stack.table.install_defaults(node_ids, network=primary_network)
        stacks[node.node_id] = stack
    return stacks

"""``drs-experiments`` CLI: regenerate every paper artifact.

Usage::

    drs-experiments                      # run everything into ./results
    drs-experiments figure2 crossovers   # a subset
    drs-experiments --quick              # reduced iteration counts
    drs-experiments --out /tmp/results

Every experiment also writes a run manifest (``<name>.manifest.json``) and a
metrics snapshot (``<name>.metrics.jsonl`` + ``.prom``) next to its results,
so ``results/`` directories are reproducible and diffable; disable with
``--no-metrics``.  ``repro obs results/`` pretty-prints the artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    ensure_core_metrics,
    install_profiling,
    use_registry,
    write_metrics_files,
)
from repro.obs.progress import ProgressReporter, set_heartbeat

from repro.experiments import (
    ablations,
    availability,
    crossovers,
    desvalidation,
    failover,
    figure1,
    figure2,
    figure3,
    grayfailure,
    motivation,
    scaling,
    scenariosuite,
    wholecluster,
)
from repro.experiments.base import ExperimentResult


def _registry(quick: bool) -> dict[str, Callable[[], ExperimentResult]]:
    if quick:
        return {
            "figure1": lambda: figure1.run(n_max=100, validate_des=True, des_nodes=6),
            "figure2": lambda: figure2.run(mc_iterations=2_000),
            "figure3": lambda: figure3.run(iteration_grid=(10, 100, 1_000), n_max=40),
            "crossovers": crossovers.run,
            "motivation": lambda: motivation.run(fleet_years=5),
            "failover": lambda: failover.run(post_failure_s=30.0),
            "desval": lambda: desvalidation.run(replicates=30, f_values=(2, 3, 4)),
            "ablations": lambda: ablations.run(
                n_values=(8, 32), mc_iterations=20_000, sweep_periods=(0.5, 2.0)
            ),
            "grayfailure": lambda: grayfailure.run(loss_rates=(0.0, 0.05), retry_values=(1, 2), sim_seconds=30.0),
            "wholecluster": lambda: wholecluster.run(mc_iterations=10_000),
            "availability": lambda: availability.run(n_values=(4, 16), mc_iterations=30_000),
            "scenarios": scenariosuite.run,
            "desval-curve": lambda: desvalidation.run_curve(replicates=25, n_values=(4, 6, 8)),
            "scaling": lambda: scaling.run(n_values=(4, 8, 12)),
        }
    return {
        "figure1": figure1.run,
        "figure2": lambda: figure2.run(mc_iterations=20_000),
        "figure3": figure3.run,
        "crossovers": crossovers.run,
        "motivation": motivation.run,
        "failover": failover.run,
        "desval": desvalidation.run,
        "ablations": ablations.run,
        "grayfailure": grayfailure.run,
        "wholecluster": wholecluster.run,
        "availability": availability.run,
        "scenarios": scenariosuite.run,
        "desval-curve": desvalidation.run_curve,
        "scaling": scaling.run,
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="drs-experiments",
        description="Regenerate the figures and tables of the DRS survivability paper.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run (default: all)")
    parser.add_argument("--out", default="results", help="output directory (default: ./results)")
    parser.add_argument("--quick", action="store_true", help="reduced iteration counts")
    parser.add_argument("--html", action="store_true", help="also write a combined results/index.html")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip per-experiment manifest + metrics snapshot artifacts",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="progress heartbeat interval on stderr (0 disables; default 10)",
    )
    args = parser.parse_args(argv)

    registry = _registry(args.quick)
    if args.list:
        for name in registry:
            print(name)
        return 0
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}; have {', '.join(registry)}")

    out_dir = Path(args.out)
    results = []
    if not args.no_metrics:
        # Profile every simulator the experiments build internally; each
        # run() publishes into whichever registry is current at the time.
        install_profiling()
    for name in names:
        started = time.perf_counter()
        print(f"[drs-experiments] running {name} ...", flush=True)
        metrics = ensure_core_metrics(MetricsRegistry())
        reporter = ProgressReporter(name, interval_s=args.heartbeat) if args.heartbeat > 0 else None
        set_heartbeat(reporter)
        try:
            with use_registry(metrics):
                result = registry[name]()
        finally:
            set_heartbeat(None)
        results.append(result)
        files = result.write(out_dir)
        elapsed = time.perf_counter() - started
        if not args.no_metrics:
            manifest = RunManifest.build(
                name=name,
                kind="experiment",
                seed=result.meta.get("seed"),
                config={"quick": args.quick, **result.meta},
                wall_seconds=elapsed,
                event_count=int(metrics.counter("sim_events_total").value),
                heartbeat=reporter.summary() if reporter is not None else None,
            )
            manifest.write(out_dir / f"{name}.manifest.json")
            write_metrics_files(metrics, out_dir, name)
        print(result.render())
        print(f"[drs-experiments] {name} done in {elapsed:.1f}s -> {files[0]}", flush=True)
    if args.html:
        from repro.experiments.base import write_html_index

        index = write_html_index(results, out_dir)
        print(f"[drs-experiments] combined report -> {index}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Proactive-cost bench — DRS probe traffic lands at the configured budget.

Cross-validates the paper's "15% of network bandwidth" cost claim: a DRS
deployment paced for a budget consumes exactly that share of the simulated
100 Mb/s segments.
"""

import pytest

from repro.experiments.figure1 import measured_probe_fraction


@pytest.mark.parametrize("budget", [0.05, 0.10, 0.15])
def test_probe_budget_respected(once, budget):
    measured = once(measured_probe_fraction, 8, budget, 5.0)
    assert measured == pytest.approx(budget, rel=0.10)


def test_probe_traffic_scales_with_cluster(once):
    def both():
        small = measured_probe_fraction(4, 0.10, 4.0)
        large = measured_probe_fraction(10, 0.10, 4.0)
        return small, large

    small, large = once(both)
    # pacing keeps the *fraction* fixed as the cluster grows (sweep stretches)
    assert small == pytest.approx(large, rel=0.15)

"""Tests for the drs-analyze CLI."""

import pytest

from repro.analysis.cli import main


def test_pair_matches_library(capsys):
    assert main(["pair", "18", "2"]) == 0
    out = capsys.readouterr().out
    assert "0.9900" in out and "Equation 1" in out


def test_pair_with_mc(capsys):
    assert main(["pair", "10", "2", "--mc-precision", "0.01", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Monte Carlo" in out and "Wilson" in out


def test_allpairs(capsys):
    assert main(["allpairs", "10", "3"]) == 0
    out = capsys.readouterr().out
    assert "whole cluster" in out and "pairwise" in out


def test_crossover(capsys):
    assert main(["crossover", "3"]) == 0
    assert "N = 32" in capsys.readouterr().out


def test_plan_deadline_mode(capsys):
    assert main(["plan", "--budget", "0.10", "--deadline", "1.0"]) == 0
    assert "N = 86" in capsys.readouterr().out


def test_plan_nodes_mode(capsys):
    assert main(["plan", "--budget", "0.10", "--nodes", "90"]) == 0
    assert "1.077" in capsys.readouterr().out


def test_availability(capsys):
    assert main(["availability", "10", "--repair-s", "1.1"]) == 0
    out = capsys.readouterr().out
    assert "minutes/year" in out and "nines" in out


def test_darkpairs(capsys):
    assert main(["darkpairs", "10", "3"]) == 0
    assert "of 45" in capsys.readouterr().out


def test_report(capsys):
    assert main(["report", "12"]) == 0
    out = capsys.readouterr().out
    assert "Survivability, N=12" in out
    assert "probe budget" in out and "nines" in out


def test_bad_values_exit_2(capsys):
    assert main(["pair", "1", "2"]) == 2
    assert "error" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])

"""Failure injection over the cluster's component universe.

Three injection styles cover every experiment in the reproduction:

* **Scripted** — :class:`FaultScenario`: a timeline of (time, fail/repair,
  component) actions, used by the protocol integration tests.
* **Exactly-f** — :meth:`FaultInjector.apply_exact_failures`: fail f distinct
  components chosen uniformly at random, which is precisely the conditional
  model behind Equation 1 (see :mod:`repro.analysis.exact`).
* **Lifetime** — :meth:`FaultInjector.start_random_faults`: independent
  exponential time-to-failure / time-to-repair per component, used by the
  long-horizon availability studies and the failure-log generator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.netsim.component import Component
from repro.obs.progress import heartbeat
from repro.obs.spans import span_log
from repro.simkit import Process, Simulator, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.netsim.topology import Cluster


def component_universe(cluster: "Cluster") -> list[Component]:
    """The canonical component ordering shared with the analysis model.

    Index 0 and 1 are the two hubs; index ``2 + 2i + j`` is node ``i``'s NIC
    on network ``j``.  :mod:`repro.analysis` counts failure combinations over
    exactly this universe, so the DES cross-validation must use it verbatim.
    """
    comps: list[Component] = [cluster.backplanes[0], cluster.backplanes[1]]
    for node in cluster.nodes:
        comps.append(node.nics[0])
        comps.append(node.nics[1])
    return comps


class FaultAction(enum.Enum):
    """What a scripted scenario step does to its component."""

    FAIL = "fail"
    REPAIR = "repair"


@dataclass(frozen=True)
class FaultEvent:
    """One scripted step: at ``time``, apply ``action`` to ``component_name``."""

    time: float
    action: FaultAction
    component_name: str


@dataclass
class FaultScenario:
    """An ordered failure/repair timeline addressed by component name."""

    events: list[FaultEvent] = field(default_factory=list)

    def fail(self, time: float, component_name: str) -> "FaultScenario":
        """Append a failure step (chainable)."""
        self.events.append(FaultEvent(time, FaultAction.FAIL, component_name))
        return self

    def repair(self, time: float, component_name: str) -> "FaultScenario":
        """Append a repair step (chainable)."""
        self.events.append(FaultEvent(time, FaultAction.REPAIR, component_name))
        return self


class FaultInjector:
    """Applies failures/repairs to a set of named components."""

    def __init__(
        self,
        sim: Simulator,
        components: Iterable[Component],
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.trace = trace
        self._spans = span_log(trace) if trace is not None else None
        self._by_name: dict[str, Component] = {}
        self._order: list[Component] = []
        for comp in components:
            if comp.name in self._by_name:
                raise ValueError(f"duplicate component name {comp.name!r}")
            self._by_name[comp.name] = comp
            self._order.append(comp)
        self._lifetime_procs: list[Process] = []

    # ------------------------------------------------------------ addressing
    @property
    def components(self) -> list[Component]:
        """All managed components in registration order."""
        return list(self._order)

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown component {name!r}; have {sorted(self._by_name)}") from None

    def failed_components(self) -> list[Component]:
        """Components currently down."""
        return [c for c in self._order if not c.up]

    # -------------------------------------------------------------- immediate
    def fail(self, name: str) -> None:
        """Fail a component now (opens the incident root span)."""
        comp = self.component(name)
        if comp.fail():
            hb = heartbeat()
            if hb is not None:
                hb.add(0, faults=1)
            if self.trace is not None:
                self.trace.record("fault", component=name, action="fail", kind=comp.kind.value)
                if self._spans.wants():
                    self._spans.incident_begin(name, kind=comp.kind.value)

    def repair(self, name: str) -> None:
        """Repair a component now (closes its incident span, if open)."""
        comp = self.component(name)
        if comp.repair():
            if self.trace is not None:
                self.trace.record("fault", component=name, action="repair", kind=comp.kind.value)
                if self._spans.wants():
                    self._spans.incident_end(name)

    def repair_all(self) -> None:
        """Bring every managed component back up."""
        for comp in self._order:
            if not comp.up:
                self.repair(comp.name)

    # --------------------------------------------------------------- scripted
    def schedule(self, scenario: FaultScenario) -> None:
        """Queue a scripted timeline onto the simulator.

        Fault steps use a negative priority so that within a tick the fault
        lands before protocol activity scheduled at the same instant.
        """
        for ev in scenario.events:
            action = self.fail if ev.action is FaultAction.FAIL else self.repair
            self.sim.schedule_at(ev.time, lambda a=action, n=ev.component_name: a(n), priority=-10)

    # -------------------------------------------------------------- exactly-f
    def apply_exact_failures(self, f: int, rng: np.random.Generator) -> list[Component]:
        """Fail exactly ``f`` distinct components chosen uniformly at random.

        This realizes the paper's conditional survivability model on the live
        simulation.  Returns the failed components.
        """
        n = len(self._order)
        if not 0 <= f <= n:
            raise ValueError(f"cannot fail {f} of {n} components")
        picks = rng.choice(n, size=f, replace=False)
        chosen = [self._order[int(i)] for i in picks]
        for comp in chosen:
            self.fail(comp.name)
        return chosen

    # --------------------------------------------------------------- lifetime
    def start_random_faults(
        self,
        rng: np.random.Generator,
        mtbf_s: float,
        mttr_s: float,
        components: Sequence[Component] | None = None,
    ) -> list[Process]:
        """Run an exponential fail/repair lifecycle on each component.

        Each component independently stays up for Exp(mtbf) and down for
        Exp(mttr).  Returns the per-component lifecycle processes.
        """
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        targets = list(components) if components is not None else list(self._order)

        def lifecycle(comp: Component):
            while True:
                yield float(rng.exponential(mtbf_s))
                self.fail(comp.name)
                yield float(rng.exponential(mttr_s))
                self.repair(comp.name)

        procs = [Process(self.sim, lifecycle(c), name=f"faults.{c.name}") for c in targets]
        self._lifetime_procs.extend(procs)
        return procs

    def stop_random_faults(self) -> None:
        """Kill all running lifecycle processes."""
        for proc in self._lifetime_procs:
            proc.kill()
        self._lifetime_procs.clear()

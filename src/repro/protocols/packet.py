"""L3 datagrams and protocol header sizes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.netsim.addresses import NodeId

IP_HEADER_BYTES = 20    #: IPv4 header without options
ICMP_HEADER_BYTES = 8   #: ICMP type/code/checksum/id/seq
UDP_HEADER_BYTES = 8    #: UDP src/dst port, length, checksum
TCP_HEADER_BYTES = 20   #: TCP header without options

DEFAULT_TTL = 16        #: small diameter: cluster paths are at most 2 hops

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A network-layer datagram.

    ``payload`` is the L4 message (ICMP echo, UDP datagram, TCP segment);
    it must expose ``size_bytes``.  The packet's own ``size_bytes`` includes
    the IP header, so the L2 frame can compute wire occupancy directly.
    """

    src_node: NodeId
    dst_node: NodeId
    protocol: str
    payload: Any
    ttl: int = DEFAULT_TTL
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bytes(self) -> int:
        """IP header plus L4 payload size."""
        return IP_HEADER_BYTES + int(self.payload.size_bytes)

    def __str__(self) -> str:
        return (
            f"Packet#{self.packet_id}[{self.src_node}->{self.dst_node} "
            f"{self.protocol} ttl={self.ttl} {self.size_bytes}B]"
        )

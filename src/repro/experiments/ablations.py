"""Ablations of the design choices the paper asserts but never varies.

1. **Two-hop routing** — how much of Equation 1's survivability comes from
   the broadcast route-discovery stage versus plain dual-NIC redundancy.
2. **Second backplane** — survivability of the same fleet with a single
   shared network (the architecture DRS's redundant network replaces).
3. **Sweep period** — the proactive-cost knob: measured detection latency
   versus probe bandwidth on the live DES, tracing out the continuum from
   "DRS" to "reactive" the paper alludes to ("if the links were not checked
   frequently, the DRS would become equivalent to a reactive routing
   protocol").
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import simulate_success_probability, success_probability
from repro.analysis.combinatorics import comb0
from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, Job, JobPlan, register, run_plan
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def single_backplane_success(n: int, f: int) -> float:
    """Exact pair survivability with one backplane and one NIC per node.

    Universe: n NICs + 1 hub = n+1 components.  The pair fails iff the hub
    fails or either endpoint NIC fails::

        B1(n, f) = C(n, f-1) + [C(n, f) - C(n-2, f)]
        P        = 1 - B1 / C(n+1, f)
    """
    if n < 2:
        raise ValueError("need n >= 2")
    total = comb0(n + 1, f)
    if total == 0:
        raise ValueError(f"no failure sets of size {f} for single-backplane n={n}")
    bad = comb0(n, f - 1) + (comb0(n, f) - comb0(n - 2, f))
    return 1.0 - bad / total


def measured_detection_latency(sweep_period_s: float, n: int = 6, repeats: int = 5) -> tuple[float, float]:
    """(mean detection+repair latency, probe overhead bps) on the live DES."""
    config = DrsConfig(sweep_period_s=sweep_period_s, probe_timeout_s=0.02, probe_retries=2)
    latencies = []
    overhead = 0.0
    for i in range(repeats):
        sim = Simulator()
        cluster = build_dual_backplane_cluster(sim, n)
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, config)
        warmup = 2 * sweep_period_s + 1.0
        sim.run(until=warmup)
        bits0 = sum(bp.bits_carried.value for bp in cluster.backplanes)
        t0 = sim.now
        victim = 1 + (i % (n - 1))
        cluster.faults.fail(f"nic{victim}.0")
        sim.run(until=t0 + 3 * sweep_period_s + 1.0)
        repairs = [
            e
            for e in cluster.trace.entries("drs-repair")
            if e.time > t0 and e.fields["node"] == 0 and e.fields["peer"] == victim
        ]
        if repairs:
            latencies.append(repairs[0].time - t0)
        overhead += (sum(bp.bits_carried.value for bp in cluster.backplanes) - bits0) / (sim.now - t0)
    mean_latency = float(np.mean(latencies)) if latencies else float("nan")
    return mean_latency, overhead / repeats


def _no_two_hop_point(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> float:
    """Engine job: Monte Carlo P[Success] without two-hop routing at (N, f)."""
    rng = np.random.default_rng(seed_seq)
    return simulate_success_probability(
        params["n"], params["f"], params["iterations"], rng, two_hop=False
    )


def _sweep_period_point(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> tuple[float, float]:
    """Engine job: live-DES detection latency + probe overhead at one period.

    The DES cluster here is deterministic (no frame loss), so the spawned
    seed is unused — the job is still independent and relocatable.
    """
    return measured_detection_latency(params["sweep_period_s"])


def build_plan(
    n_values: tuple[int, ...] = (8, 16, 32, 48, 63),
    f_values: tuple[int, ...] = (2, 4),
    mc_iterations: int = 100_000,
    sweep_periods: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seed: int = 7,
    run_des: bool = True,
) -> JobPlan:
    """One job per MC ablation point plus one per DES sweep period."""
    jobs = [
        Job(
            name=f"no2hop/n={n}/f={f}",
            fn=_no_two_hop_point,
            params={"n": n, "f": f, "iterations": mc_iterations},
        )
        for f in f_values
        for n in n_values
    ]
    if run_des:
        jobs += [
            Job(
                name=f"des/period={period}",
                fn=_sweep_period_point,
                params={"sweep_period_s": period},
            )
            for period in sweep_periods
        ]

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("ablations")
        result.meta = {
            "seed": seed,
            "n_values": list(n_values),
            "f_values": list(f_values),
            "mc_iterations": mc_iterations,
            "sweep_periods": list(sweep_periods),
            "run_des": run_des,
        }

        # 1 + 2: routing/redundancy ablations on the survivability model
        rows = []
        for f in f_values:
            for n in n_values:
                full = success_probability(n, f)
                # quarantined points are absent: NaN keeps the table shape
                no_two_hop = values.get(f"no2hop/n={n}/f={f}", float("nan"))
                single = single_backplane_success(n, f)
                rows.append([n, f, full, no_two_hop, single])
        result.add_table(
            "survivability",
            ["N", "f", "DRS (Eq. 1)", "no two-hop (MC)", "single backplane"],
            rows,
            caption="What each architectural ingredient buys (pair survivability)",
        )
        result.note(
            "single-backplane numbers use the exact closed form B1(n,f); the no-two-hop "
            f"column is Monte Carlo with {mc_iterations} iterations"
        )

        # 3: proactive-cost continuum on the live DES
        if run_des:
            des_rows = []
            nan_pair = (float("nan"), float("nan"))
            for period in sweep_periods:
                latency, overhead_bps = values.get(f"des/period={period}", nan_pair)
                des_rows.append([period, latency, overhead_bps / 1e3])
            result.add_table(
                "sweep_period",
                ["sweep period (s)", "mean detect+repair (s)", "probe overhead (kb/s)"],
                des_rows,
                caption="Proactive-cost continuum: check less often, detect later (DES, N=6)",
            )
        return result

    return JobPlan(
        experiment="ablations",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        meta={"total_trials": sum(j.params.get("iterations", 0) for j in jobs)},
    )


def run(
    n_values: tuple[int, ...] = (8, 16, 32, 48, 63),
    f_values: tuple[int, ...] = (2, 4),
    mc_iterations: int = 100_000,
    sweep_periods: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seed: int = 7,
    run_des: bool = True,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """All three ablations."""
    plan = build_plan(
        n_values=n_values,
        f_values=f_values,
        mc_iterations=mc_iterations,
        sweep_periods=sweep_periods,
        seed=seed,
        run_des=run_des,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="ablations",
        run=run,
        profiles={
            "quick": {"n_values": (8, 32), "mc_iterations": 20_000, "sweep_periods": (0.5, 2.0)},
            "full": {},
        },
        parallel=True,
        order=80,
        description="two-hop / dual-backplane / sweep-period ablations",
    )
)

"""Unit tests for generator processes and signals."""

import pytest

from repro.simkit import Process, Signal, SimulationError, Simulator, Timeout
from repro.simkit.process import all_finished


def test_process_sleeps_on_yielded_floats():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield 1.0
        times.append(sim.now)
        yield Timeout(2.5)
        times.append(sim.now)

    p = Process(sim, body())
    sim.run()
    assert times == [0.0, 1.0, 3.5]
    assert p.finished


def test_process_return_value():
    sim = Simulator()

    def body():
        yield 1.0
        return 42

    p = Process(sim, body())
    sim.run()
    assert p.finished and p.value == 42 and p.error is None


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_signal_wakes_waiters_with_value():
    sim = Simulator()
    sig = Signal("go")
    got = []

    def waiter():
        value = yield sig
        got.append((sim.now, value))

    Process(sim, waiter())
    Process(sim, waiter())
    sim.schedule(5.0, lambda: sig.fire("payload"))
    sim.run()
    assert got == [(5.0, "payload"), (5.0, "payload")]


def test_signal_fire_returns_waiter_count():
    sim = Simulator()
    sig = Signal()

    def waiter():
        yield sig

    Process(sim, waiter())
    sim.run(until=0.1)
    assert sig.fire() == 1
    assert sig.fire() == 0  # waiters are one-shot


def test_process_waits_on_other_process():
    sim = Simulator()
    order = []

    def child():
        yield 3.0
        order.append("child-done")
        return "result"

    def parent():
        c = Process(sim, child())
        got = yield c
        order.append(("parent-woke", sim.now, got))

    Process(sim, parent())
    sim.run()
    assert order == ["child-done", ("parent-woke", 3.0, "result")]


def test_wait_on_already_finished_process():
    sim = Simulator()
    got = []

    def child():
        return "early"
        yield  # pragma: no cover

    def parent(c):
        value = yield c
        got.append(value)

    c = Process(sim, child())
    sim.run(until=1.0)
    assert c.finished
    Process(sim, parent(c))
    sim.run()
    assert got == ["early"]


def test_interrupt_cancels_sleep_and_delivers_value():
    sim = Simulator()
    log = []

    def sleeper():
        woke = yield 100.0
        log.append((sim.now, woke))

    p = Process(sim, sleeper())
    sim.schedule(2.0, lambda: p.interrupt("poked"))
    sim.run()
    assert log == [(2.0, "poked")]


def test_kill_stops_body():
    sim = Simulator()
    log = []

    def body():
        log.append("start")
        yield 10.0
        log.append("never")

    p = Process(sim, body())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert log == ["start"]
    assert p.finished


def test_negative_delay_raises_inside_process():
    sim = Simulator()

    def bad():
        yield -1.0

    p = Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert p.finished and isinstance(p.error, SimulationError)


def test_unsupported_yield_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    p = Process(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert isinstance(p.error, SimulationError)


def test_exception_in_body_is_surfaced_and_recorded():
    sim = Simulator()

    def bad():
        yield 1.0
        raise ValueError("boom")

    p = Process(sim, bad())
    with pytest.raises(ValueError):
        sim.run()
    assert p.finished and isinstance(p.error, ValueError)


def test_all_finished_helper():
    sim = Simulator()

    def body():
        yield 1.0

    procs = [Process(sim, body()) for _ in range(3)]
    assert not all_finished(procs)
    sim.run()
    assert all_finished(procs)

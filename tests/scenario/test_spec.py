"""Tests for scenario spec parsing and validation."""

import json

import pytest

from repro.scenario import ScenarioError, ScenarioSpec, load_scenario


def _minimal(**overrides):
    raw = {"name": "t", "nodes": 4, "duration_s": 10.0}
    raw.update(overrides)
    return raw


def test_minimal_spec_defaults():
    spec = ScenarioSpec.from_dict(_minimal())
    assert spec.protocol_kind == "static"
    assert spec.workload_kind == "none"
    assert spec.faults == ()
    assert spec.loss_rate == 0.0 and spec.seed == 0


def test_full_spec_roundtrip():
    spec = ScenarioSpec.from_dict(
        _minimal(
            protocol={"kind": "drs", "sweep_period_s": 0.5},
            workload={"kind": "stream", "src": 0, "dst": 1},
            faults=[{"at": 5.0, "fail": "hub0"}, {"at": 2.0, "repair": "hub0"}],
            loss_rate=0.01,
            seed=9,
        )
    )
    assert spec.protocol_options == {"sweep_period_s": 0.5}
    assert spec.workload_options == {"src": 0, "dst": 1}
    # fault steps sorted by time
    assert [s.at for s in spec.faults] == [2.0, 5.0]
    assert spec.faults[0].action == "repair"


@pytest.mark.parametrize(
    "mutation,message",
    [
        ({"nodes": 1}, "nodes"),
        ({"duration_s": 0}, "duration_s"),
        ({"protocol": {"kind": "ospf"}}, "protocol.kind"),
        ({"protocol": "drs"}, "protocol"),
        ({"workload": {"kind": "webserver"}}, "workload.kind"),
        ({"faults": [{"fail": "hub0"}]}, "faults[0]"),
        ({"faults": [{"at": 99.0, "fail": "hub0"}]}, "faults[0].at"),
        ({"faults": [{"at": 1.0, "fail": "hub0", "repair": "hub1"}]}, "faults[0]"),
        ({"loss_rate": 1.5}, "loss_rate"),
    ],
)
def test_invalid_specs_rejected(mutation, message):
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_dict(_minimal(**mutation))
    assert message.split(".")[0].split("[")[0] in str(err.value)


def test_missing_required_field():
    with pytest.raises(ScenarioError, match="name"):
        ScenarioSpec.from_dict({"nodes": 4, "duration_s": 10.0})


def test_non_dict_rejected():
    with pytest.raises(ScenarioError):
        ScenarioSpec.from_dict([1, 2, 3])


def test_load_scenario_file(tmp_path):
    path = tmp_path / "s.json"
    path.write_text(json.dumps(_minimal()))
    assert load_scenario(path).name == "t"


def test_load_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioError, match="invalid JSON"):
        load_scenario(path)


def test_shipped_scenarios_parse():
    from pathlib import Path

    scenario_dir = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
    files = sorted(scenario_dir.glob("*.json"))
    assert len(files) >= 4
    for path in files:
        spec = load_scenario(path)
        assert spec.nodes >= 2

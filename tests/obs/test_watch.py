"""Watch dashboard: state reducer, renderer snapshot, and the tail loop."""

import io
import json

from repro.obs.watch import WATCH_EXIT_TIMEOUT, WatchState, follow, render_watch


def _events():
    """A small but representative parallel-run stream."""
    return [
        {"t": 0.0, "kind": "plan.begin", "pid": 1, "experiment": "figure2",
         "backend": "process-pool", "workers": 2, "jobs": 4, "total_trials": 4000},
        {"t": 0.1, "kind": "job.submitted", "pid": 1, "job": "mc/n=3"},
        {"t": 0.1, "kind": "job.submitted", "pid": 1, "job": "mc/n=4"},
        {"t": 0.1, "kind": "job.submitted", "pid": 1, "job": "mc/n=5"},
        {"t": 0.1, "kind": "job.submitted", "pid": 1, "job": "mc/n=6"},
        {"t": 0.2, "kind": "worker.spawn", "pid": 101},
        {"t": 0.2, "kind": "worker.spawn", "pid": 102},
        {"t": 0.3, "kind": "scheduler.gauge", "pid": 1, "queue_depth": 4,
         "outstanding_chunks": 2, "utilization": 1.0, "workers": 2},
        {"t": 0.4, "kind": "job.attempt", "pid": 101, "job": "mc/n=3", "attempt": 1},
        {"t": 0.5, "kind": "job.retry", "pid": 101, "job": "mc/n=3", "attempt": 1,
         "backoff_s": 0.01},
        {"t": 0.6, "kind": "job.attempt", "pid": 101, "job": "mc/n=3", "attempt": 2},
        {"t": 1.0, "kind": "job.completed", "pid": 101, "job": "mc/n=3", "ok": True,
         "attempts": 2, "wall_s": 0.6, "cpu_s": 0.5, "seed_fingerprint": 7},
        {"t": 1.1, "kind": "job.attempt", "pid": 102, "job": "mc/n=4", "attempt": 1},
        {"t": 1.2, "kind": "checkpoint.write", "pid": 1, "job": "mc/n=3",
         "records": 1, "bytes": 120},
        {"t": 1.3, "kind": "heartbeat", "pid": 1, "label": "figure2", "trials": 1000,
         "total": 4000, "trials_per_second": 800.0, "jobs": 1, "jobs_total": 4},
    ]


def _cell_events():
    """Batch-progress ``stats.cell`` snapshots for two (n, f) cells."""
    return [
        {"t": 1.4, "kind": "stats.cell", "pid": 101, "n": 3, "f": 1,
         "trials": 2000, "half_width": 0.015, "target": 0.01, "met": False,
         "done": False},
        {"t": 1.5, "kind": "stats.cell", "pid": 101, "n": 3, "f": 1,
         "trials": 4000, "half_width": 0.009, "target": 0.01, "met": True,
         "done": True},
        {"t": 1.6, "kind": "stats.cell", "pid": 102, "n": 4, "f": 2,
         "trials": 1000, "half_width": 0.02, "target": 0.01, "met": False,
         "done": False},
    ]


class TestWatchState:
    def test_reducer_folds_the_stream(self):
        state = WatchState().apply_all(_events())
        assert state.experiment == "figure2"
        assert state.backend == "process-pool"
        assert state.jobs_total == 4
        assert state.jobs_submitted == 4
        assert state.jobs_done == 1
        assert state.retries == 1
        assert state.queue_depth == 4
        assert state.trials == 1000
        assert state.total_trials == 4000
        assert state.checkpoint_records == 1
        assert not state.finished
        assert state.workers[101].state == "idle"
        assert state.workers[101].jobs_done == 1
        assert state.workers[101].retries == 1
        assert state.workers[102].state == "running"
        assert state.workers[102].job == "mc/n=4"

    def test_run_end_finishes_and_eta_derives_from_job_throughput(self):
        state = WatchState().apply_all(_events())
        # 1 of 4 jobs done in 1.3s of stream time -> 3 * 1.3 left
        assert state.eta_s() == 3 * state.elapsed_s
        state.apply({"t": 2.0, "kind": "run.end", "pid": 1, "events": 15})
        assert state.finished
        assert state.eta_s() is None

    def test_resumed_jobs_count_as_done(self):
        state = WatchState()
        state.apply({"t": 0.0, "kind": "plan.begin", "pid": 1, "jobs": 2,
                     "backend": "serial", "workers": 1, "resumed": 2})
        state.apply({"t": 0.1, "kind": "job.resumed", "pid": 1, "job": "a"})
        state.apply({"t": 0.1, "kind": "job.resumed", "pid": 1, "job": "b"})
        assert state.jobs_done == 2
        assert state.jobs_resumed == 2

    def test_to_dict_is_json_serializable(self):
        payload = WatchState().apply_all(_events()).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["jobs"] == {
            "total": 4, "submitted": 4, "done": 1, "resumed": 0, "quarantined": 0,
        }
        assert round_tripped["workers"]["102"]["job"] == "mc/n=4"

    def test_unknown_kinds_only_bump_the_event_count(self):
        state = WatchState()
        state.apply({"t": 0.0, "kind": "future.kind", "pid": 1})
        assert state.events == 1
        assert state.jobs_done == 0

    def test_stats_cell_events_fold_into_a_precision_summary(self):
        state = WatchState().apply_all(_events() + _cell_events())
        # the second n=3 snapshot supersedes the first
        assert state.cells[(3, 1)]["trials"] == 4000
        summary = state.precision_summary()
        assert summary["cells"] == 2 and summary["done"] == 1
        assert summary["target"] == 0.01 and summary["at_target"] == 1
        assert summary["worst"] == {
            "n": 4, "f": 2, "half_width": 0.02, "trials": 1000,
        }

    def test_precision_summary_is_none_without_cells_and_untargeted_otherwise(self):
        assert WatchState().apply_all(_events()).precision_summary() is None
        state = WatchState()
        state.apply({"t": 0.5, "kind": "stats.cell", "pid": 1, "n": 3, "f": 1,
                     "trials": 100, "half_width": 0.05, "done": False})
        summary = state.precision_summary()
        assert summary["target"] is None and summary["at_target"] is None

    def test_to_dict_carries_the_precision_block(self):
        payload = WatchState().apply_all(_events() + _cell_events()).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["precision"]["cells"] == 2
        assert round_tripped["precision"]["worst"]["n"] == 4
        assert WatchState().apply_all(_events()).to_dict()["precision"] is None


class TestDistributedEvents:
    def _distributed_events(self):
        return [
            {"t": 0.0, "kind": "plan.begin", "pid": 1, "experiment": "figure2",
             "backend": "distributed", "workers": 2, "jobs": 4},
            {"t": 0.1, "kind": "worker.join", "pid": 201, "host": "node-a", "worker": 1},
            {"t": 0.1, "kind": "worker.join", "pid": 202, "host": "node-b", "worker": 2},
            {"t": 0.2, "kind": "job.attempt", "pid": 201, "job": "mc/n=3", "attempt": 1},
            {"t": 0.5, "kind": "worker.leave", "pid": 201, "reason": "heartbeat timeout"},
            {"t": 0.6, "kind": "job.stolen", "pid": 1, "job": "mc/n=3",
             "from_worker": 1, "to_worker": 2},
            {"t": 0.7, "kind": "checkpoint.compact", "pid": 1, "records": 3,
             "reclaimed": 5, "compactions": 2, "bytes": 360},
        ]

    def test_reducer_folds_join_leave_steal_and_compaction(self):
        state = WatchState().apply_all(self._distributed_events())
        assert state.workers[201].host == "node-a"
        assert state.workers[201].state == "exited"
        assert state.workers[202].state == "idle"
        assert state.jobs_stolen == 1
        assert state.checkpoint_compactions == 2
        payload = json.loads(json.dumps(state.to_dict()))
        assert payload["workers"]["201"]["host"] == "node-a"
        assert payload["jobs_stolen"] == 1

    def test_render_labels_hosts_and_counts_steals(self):
        text = render_watch(WatchState().apply_all(self._distributed_events()), color=False)
        assert "worker 201@node-a exited" in text
        assert "worker 202@node-b idle" in text
        assert "stolen 1" in text

    def test_plan_interrupted_renders_the_interrupted_badge(self):
        state = WatchState().apply_all(_events())
        state.apply({"t": 2.0, "kind": "plan.interrupted", "pid": 1, "settled": 1})
        assert state.interrupted
        assert "[INTERRUPTED]" in render_watch(state, color=False)


class TestRenderWatch:
    def test_ci_line_renders_between_trials_and_workers(self):
        text = render_watch(
            WatchState().apply_all(_events() + _cell_events()), color=False
        )
        lines = text.splitlines()
        ci = next(i for i, line in enumerate(lines) if line.startswith("ci:"))
        assert lines[ci] == (
            "ci: 2 cell(s), worst half-width 0.02 (n=4, f=2, 1,000 trials)"
            "  1/2 at target 0.01"
        )
        assert lines[ci - 1].startswith("trials")
        assert lines[ci + 1].startswith("  worker")

    def test_ci_badge_goes_green_when_every_cell_is_at_target(self):
        events = [e for e in _cell_events() if e.get("f") != 2]
        text = render_watch(WatchState().apply_all(_events() + events), color=True)
        assert "\x1b[32m1/1 at target 0.01" in text

    def test_plain_snapshot(self):
        text = render_watch(WatchState().apply_all(_events()), color=False)
        assert text.splitlines() == [
            "flight: figure2 (process-pool, 2 worker(s))  [RUNNING]",
            "jobs ######------------------ 1/4 ( 25%)  queue 4 · retries 1",
            "trials 1,000/4,000 (800/s) · elapsed 1.3s · ETA 4s · pool 100% busy",
            "  worker 101      idle                                       1 job(s), 1 retried",
            "  worker 102      running mc/n=4                             0 job(s)",
            "checkpoint: 1 record(s) · last mc/n=3",
        ]

    def test_empty_state_renders_waiting(self):
        text = render_watch(WatchState(), color=False)
        assert "[WAITING]" in text
        assert "jobs 0 done" in text

    def test_color_mode_emits_ansi(self):
        assert "\x1b[" in render_watch(WatchState().apply_all(_events()), color=True)


class TestFollow:
    def test_once_renders_current_state_and_exits_zero(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in _events()))
        out = io.StringIO()
        assert follow(path, once=True, color=False, stream=out) == 0
        assert "flight: figure2" in out.getvalue()

    def test_incremental_tail_ignores_partial_final_line(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        events = _events()
        complete = "".join(json.dumps(e) + "\n" for e in events[:3])
        torn = json.dumps(events[3])[:10]  # writer mid-flush
        path.write_text(complete + torn)
        out = io.StringIO()
        follow(path, once=True, as_json=True, stream=out)
        payload = json.loads(out.getvalue())
        assert payload["events"] == 3
        assert payload["jobs"]["submitted"] == 2

    def test_duration_budget_expires_with_timeout_exit(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        path.write_text(json.dumps(_events()[0]) + "\n")  # no run.end ever
        ticks = iter([0.0, 0.2, 10.0, 11.0, 12.0])
        out = io.StringIO()
        code = follow(
            path,
            interval_s=0.01,
            duration_s=1.0,
            color=False,
            stream=out,
            clock=lambda: next(ticks),
            sleep=lambda s: None,
        )
        assert code == WATCH_EXIT_TIMEOUT

    def test_follow_sees_run_end_appended_between_polls(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        path.write_text(json.dumps(_events()[0]) + "\n")

        def late_append(_s):
            with path.open("a") as fh:
                fh.write(json.dumps({"t": 9.0, "kind": "run.end", "pid": 1}) + "\n")

        out = io.StringIO()
        code = follow(path, interval_s=0.01, color=False, stream=out, sleep=late_append)
        assert code == 0
        frames = out.getvalue()
        assert "[RUNNING]" in frames  # first poll, before the append
        assert "[DONE]" in frames  # final frame after run.end arrived

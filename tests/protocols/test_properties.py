"""Property-based tests on protocol-layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import Route, RouteSource, RoutingTable

_sources = st.sampled_from([RouteSource.STATIC, RouteSource.DRS, RouteSource.DISTVECTOR, RouteSource.REACTIVE])


@st.composite
def _table_ops(draw):
    """A random sequence of install/withdraw operations on one table."""
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["install", "withdraw"]))
        dst = draw(st.integers(1, 5))
        if kind == "install":
            ops.append(
                (
                    "install",
                    Route(
                        dst=dst,
                        network=draw(st.integers(0, 1)),
                        next_hop=draw(st.integers(1, 6)),
                        source=draw(_sources),
                    ),
                )
            )
        else:
            ops.append(("withdraw", dst, draw(_sources)))
    return ops


@given(_table_ops())
def test_routing_table_invariants_under_random_ops(ops):
    table = RoutingTable(owner=0)
    for op in ops:
        if op[0] == "install":
            route = op[1]
            if route.next_hop == 0 or route.dst == 0:
                continue
            table.install(route)
        else:
            _, dst, source = op
            table.withdraw(dst, source)
        # invariants after every operation:
        for route in table:
            assert route.dst != 0 and route.next_hop != 0
        snapshot = table.snapshot()
        assert len(set(snapshot)) == len(snapshot)  # one active route per dst
        for dst, route in snapshot.items():
            assert route.dst == dst


@given(_table_ops())
def test_withdraw_only_removes_matching_source(ops):
    table = RoutingTable(owner=0)
    for op in ops:
        if op[0] == "install":
            if op[1].next_hop == 0:
                continue
            table.install(op[1])
        else:
            _, dst, source = op
            before = table.lookup(dst)
            after = table.withdraw(dst, source)
            if before is not None and before.source is not source:
                assert after is before  # untouched


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(0, 2**31 - 1),
    loss=st.floats(0.0, 0.25),
    n_messages=st.integers(1, 25),
    sizes=st.lists(st.integers(0, 4000), min_size=1, max_size=5),
)
def test_tcp_exactly_once_in_order_delivery(seed, loss, n_messages, sizes):
    """TCP-lite delivers every message exactly once, in order, at any loss."""
    from repro.netsim import build_dual_backplane_cluster
    from repro.protocols import install_stacks
    from repro.simkit import Simulator

    sim = Simulator()
    rng = np.random.default_rng(seed) if loss > 0 else None
    cluster = build_dual_backplane_cluster(sim, 2, loss_rate=loss, rng=rng)
    stacks = install_stacks(cluster)
    inbox = []
    stacks[1].tcp.listen(80, on_message=lambda c, d, s: inbox.append(d))
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.1, max_retries=60)
    for i in range(n_messages):
        conn.send_message(data=i, data_bytes=sizes[i % len(sizes)])
    sim.run(until=3600.0)
    assert inbox == list(range(n_messages)), (seed, loss)


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(0, 2**31 - 1),
    f=st.integers(0, 6),
)
def test_exactly_f_injection_matches_component_count(seed, f):
    from repro.netsim import build_dual_backplane_cluster
    from repro.simkit import Simulator

    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    rng = np.random.default_rng(seed)
    chosen = cluster.faults.apply_exact_failures(f, rng)
    assert len(chosen) == f
    assert len(cluster.faults.failed_components()) == f

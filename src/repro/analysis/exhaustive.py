"""Brute-force enumeration of the survivability model.

Exponentially expensive (``C(2N+2, f)`` predicate evaluations) but
assumption-free: the predicate below is a direct transcription of the DRS
reachability rules.  The test suite uses it to prove the closed form exact;
the ablation benchmarks use its switches to quantify the value of the second
backplane and of two-hop routing.

Component indexing matches :func:`repro.netsim.faults.component_universe`:
index 0/1 = hubs, index ``2 + 2i + j`` = node ``i``'s NIC on network ``j``.
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis.exact import _validate


def pair_connected(
    failed: frozenset[int] | set[int],
    n: int,
    a: int = 0,
    b: int = 1,
    two_hop: bool = True,
    networks: int = 2,
) -> bool:
    """Can nodes ``a`` and ``b`` communicate under DRS reachability rules?

    Parameters
    ----------
    failed:
        Indices of failed components (canonical universe ordering).
    n:
        Cluster size.
    a, b:
        The endpoint pair (defaults: the canonical fixed pair).
    two_hop:
        If False, only direct links count (ablation: DRS without the
        broadcast route-discovery stage).
    networks:
        2 for the paper's dual backplane; 1 ablates the redundant network
        (only components of network 0 exist, so indices for network 1 are
        treated as permanently failed).
    """
    if a == b:
        raise ValueError("pair endpoints must differ")

    def hub_up(j: int) -> bool:
        return j < networks and j not in failed

    def nic_up(i: int, j: int) -> bool:
        return j < networks and (2 + 2 * i + j) not in failed

    # Direct on either network.
    for j in range(networks):
        if hub_up(j) and nic_up(a, j) and nic_up(b, j):
            return True
    if not two_hop:
        return False
    # Two-hop via an intermediate: A -net j-> C -net k-> B with j != k.
    for c in range(n):
        if c in (a, b):
            continue
        for j in range(networks):
            for k in range(networks):
                if j == k:
                    continue
                if (
                    hub_up(j) and hub_up(k)
                    and nic_up(a, j) and nic_up(c, j)
                    and nic_up(c, k) and nic_up(b, k)
                ):
                    return True
    return False


def enumerate_success_probability(
    n: int,
    f: int,
    two_hop: bool = True,
    networks: int = 2,
    all_pairs: bool = False,
) -> float:
    """Exact P[Success] by enumerating every ``C(2N+2, f)`` failure set.

    With ``all_pairs=True`` the success event strengthens to "every pair of
    nodes can still communicate" — the whole-cluster survivability variant
    (an extension experiment; the paper's Equation 1 is the pairwise form).
    """
    _validate(n, f)
    universe = range(2 * n + 2)
    good = 0
    total = 0
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)] if all_pairs else [(0, 1)]
    for failure_set in combinations(universe, f):
        failed = frozenset(failure_set)
        total += 1
        if all(pair_connected(failed, n, a, b, two_hop=two_hop, networks=networks) for a, b in pairs):
            good += 1
    return good / total

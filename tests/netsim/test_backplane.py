"""Unit tests for the shared-medium backplane."""

import pytest

from repro.netsim import Backplane, Frame, InterfaceAddr, Nic
from repro.netsim.addresses import broadcast_addr
from repro.simkit import Simulator, TraceRecorder


class _Payload:
    def __init__(self, size_bytes=28):
        self.size_bytes = size_bytes


def _rig(n=2, bandwidth=100e6, prop=5e-6):
    sim = Simulator()
    trace = TraceRecorder(sim)
    bp = Backplane(sim, network_id=0, bandwidth_bps=bandwidth, prop_delay_s=prop, trace=trace)
    nics, received = [], []
    for i in range(n):
        nic = Nic(InterfaceAddr(i, 0), bp, trace=trace)
        nic.set_receiver(lambda f, nic, i=i: received.append((sim.now, i, f)))
        nics.append(nic)
    return sim, bp, nics, received, trace


def test_unicast_delivery_latency():
    sim, bp, nics, received, _ = _rig()
    frame = Frame(nics[0].addr, nics[1].addr, "t", _Payload(28))
    nics[0].send(frame)
    sim.run()
    (t, who, f) = received[0]
    # 84 bytes * 8 / 100e6 + 5e-6 propagation
    assert t == pytest.approx(84 * 8 / 100e6 + 5e-6)
    assert who == 1 and f is frame


def test_serialization_queues_back_to_back_frames():
    sim, bp, nics, received, _ = _rig()
    for _ in range(3):
        nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload(28)))
    sim.run()
    tx = 84 * 8 / 100e6
    times = [t for t, _, _ in received]
    assert times == pytest.approx([tx + 5e-6, 2 * tx + 5e-6, 3 * tx + 5e-6])


def test_broadcast_reaches_all_but_sender():
    sim, bp, nics, received, _ = _rig(n=4)
    nics[0].send(Frame(nics[0].addr, broadcast_addr(0), "t", _Payload()))
    sim.run()
    assert sorted(who for _, who, _ in received) == [1, 2, 3]


def test_hub_down_drops_at_transmit():
    sim, bp, nics, received, trace = _rig()
    bp.fail()
    assert nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload())) is True
    sim.run()
    assert received == []
    assert bp.frames_dropped.value == 1
    assert trace.last("drop").fields["reason"] == "hub-down"


def test_hub_dies_in_flight_drops():
    sim, bp, nics, received, trace = _rig()
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload()))
    sim.schedule(1e-9, bp.fail)  # fail while the frame is serializing
    sim.run()
    assert received == []
    assert trace.last("drop").fields["reason"] == "hub-died-in-flight"


def test_unknown_destination_dropped():
    sim, bp, nics, received, trace = _rig()
    nics[0].send(Frame(nics[0].addr, InterfaceAddr(99, 0), "t", _Payload()))
    sim.run()
    assert received == []
    assert trace.last("drop").fields["reason"] == "no-such-node"


def test_down_rx_nic_drops():
    sim, bp, nics, received, trace = _rig()
    nics[1].fail()
    nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload()))
    sim.run()
    assert received == []
    assert nics[1].frames_dropped.value == 1
    assert trace.last("drop").fields["reason"] == "rx-nic-down"


def test_down_tx_nic_refuses():
    sim, bp, nics, received, _ = _rig()
    nics[0].fail()
    assert nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload())) is False
    sim.run()
    assert received == [] and bp.frames_carried.value == 0


def test_bits_accounting_and_utilization():
    sim, bp, nics, received, _ = _rig()
    for _ in range(10):
        nics[0].send(Frame(nics[0].addr, nics[1].addr, "t", _Payload(28)))
    sim.run(until=1.0)
    assert bp.bits_carried.value == 10 * 84 * 8
    assert bp.utilization() == pytest.approx(10 * 84 * 8 / 100e6)


def test_duplicate_node_attachment_rejected():
    sim, bp, nics, _, _ = _rig()
    with pytest.raises(ValueError):
        Nic(InterfaceAddr(0, 0), bp)


def test_wrong_network_attachment_rejected():
    sim, bp, *_ = _rig()
    with pytest.raises(ValueError):
        Nic(InterfaceAddr(5, 1), bp)


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Backplane(sim, 0, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Backplane(sim, 0, prop_delay_s=-1)


def test_utilization_zero_at_time_zero():
    sim = Simulator()
    bp = Backplane(sim, 0)
    assert bp.utilization() == 0.0

# Convenience targets for the DRS reproduction.

PYTHON ?= python

.PHONY: install test bench experiments experiments-quick examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --out results --html

experiments-quick:
	$(PYTHON) -m repro.experiments.runner --quick --out results

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Unit tests for DRS configuration and budget-derived pacing."""

import pytest

from repro.drs import DrsConfig
from repro.drs.config import PROBE_WIRE_BYTES


def test_probe_wire_bytes_is_84():
    # the paper-calibration constant (DESIGN.md §2)
    assert PROBE_WIRE_BYTES == 84


def test_defaults_valid():
    cfg = DrsConfig()
    assert cfg.sweep_period_s == 1.0
    assert cfg.detection_bound_s() == pytest.approx(2 * 1.0 + 0.02)


@pytest.mark.parametrize(
    "field,value",
    [
        ("sweep_period_s", 0),
        ("probe_timeout_s", -1),
        ("probe_retries", 0),
        ("discovery_timeout_s", 0),
    ],
)
def test_invalid_fields_rejected(field, value):
    with pytest.raises(ValueError):
        DrsConfig(**{field: value})


def test_paced_for_matches_figure1_checkpoint():
    # 90 hosts at 10% of 100 Mb/s -> sweep just over 1 second (paper: "<1s")
    cfg = DrsConfig.paced_for(90, bandwidth_budget=0.10)
    assert cfg.sweep_period_s == pytest.approx(90 * 89 * 2 * 84 * 8 / (0.10 * 100e6))
    assert 0.9 < cfg.sweep_period_s < 1.2
    assert cfg.bandwidth_budget == 0.10


def test_paced_for_scales_quadratically():
    a = DrsConfig.paced_for(10, 0.10).sweep_period_s
    b = DrsConfig.paced_for(20, 0.10).sweep_period_s
    assert b / a == pytest.approx(20 * 19 / (10 * 9))


def test_paced_for_inverse_in_budget():
    a = DrsConfig.paced_for(10, 0.05).sweep_period_s
    b = DrsConfig.paced_for(10, 0.10).sweep_period_s
    assert a == pytest.approx(2 * b)


def test_paced_for_overrides():
    cfg = DrsConfig.paced_for(10, 0.10, probe_retries=5)
    assert cfg.probe_retries == 5


def test_paced_for_validation():
    with pytest.raises(ValueError):
        DrsConfig.paced_for(10, bandwidth_budget=0.0)
    with pytest.raises(ValueError):
        DrsConfig.paced_for(10, bandwidth_budget=1.5)
    with pytest.raises(ValueError):
        DrsConfig.paced_for(1, bandwidth_budget=0.1)

"""UDP-style datagram service (carrier of DRS control messages)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.netsim.addresses import NetworkId, NodeId
from repro.protocols.ip import NetworkLayer
from repro.protocols.packet import UDP_HEADER_BYTES, Packet
from repro.simkit import Counter

DatagramHandler = Callable[["Datagram", NodeId, NetworkId], None]


@dataclass(slots=True)
class Datagram:
    """One UDP datagram: ports, declared data size, opaque application data."""

    src_port: int
    dst_port: int
    data: Any = None
    data_bytes: int = 0

    @property
    def size_bytes(self) -> int:
        """Header plus declared payload size."""
        return UDP_HEADER_BYTES + self.data_bytes


class UdpService:
    """Port-demultiplexed datagram delivery over the network layer."""

    PROTOCOL = "udp"

    def __init__(self, net: NetworkLayer) -> None:
        self.net = net
        self._ports: dict[int, DatagramHandler] = {}
        self.sent = Counter(f"udp{net.node.node_id}.sent")
        self.delivered = Counter(f"udp{net.node.node_id}.delivered")
        self.dropped_no_port = Counter(f"udp{net.node.node_id}.no_port")
        net.register_protocol(self.PROTOCOL, self._on_packet)

    def bind(self, port: int, handler: DatagramHandler) -> None:
        """Attach ``handler(datagram, src_node, arrived_on)`` to a local port."""
        if port in self._ports:
            raise ValueError(f"node {self.net.node.node_id}: UDP port {port} already bound")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        """Release a local port (no-op if unbound)."""
        self._ports.pop(port, None)

    # ------------------------------------------------------------------ send
    def send(self, dst_node: NodeId, dst_port: int, data: Any = None, data_bytes: int = 0, src_port: int = 0) -> bool:
        """Routed datagram send; returns False if it never left this host."""
        dgram = Datagram(src_port=src_port, dst_port=dst_port, data=data, data_bytes=data_bytes)
        ok = self.net.send(dst_node, self.PROTOCOL, dgram)
        if ok:
            self.sent.add()
        return ok

    def send_direct(
        self, network: NetworkId, dst_node: NodeId, dst_port: int, data: Any = None, data_bytes: int = 0, src_port: int = 0
    ) -> bool:
        """Datagram out a specific network, bypassing routing (DRS control path)."""
        dgram = Datagram(src_port=src_port, dst_port=dst_port, data=data, data_bytes=data_bytes)
        ok = self.net.send_direct(network, dst_node, self.PROTOCOL, dgram)
        if ok:
            self.sent.add()
        return ok

    def broadcast(self, network: NetworkId, dst_port: int, data: Any = None, data_bytes: int = 0, src_port: int = 0) -> bool:
        """Broadcast datagram on one network (DRS route discovery)."""
        dgram = Datagram(src_port=src_port, dst_port=dst_port, data=data, data_bytes=data_bytes)
        ok = self.net.broadcast(network, self.PROTOCOL, dgram)
        if ok:
            self.sent.add()
        return ok

    # --------------------------------------------------------------- receive
    def _on_packet(self, packet: Packet, arrived_on: NetworkId) -> None:
        dgram: Datagram = packet.payload
        handler = self._ports.get(dgram.dst_port)
        if handler is None:
            self.dropped_no_port.add()
            return
        self.delivered.add()
        handler(dgram, packet.src_node, arrived_on)

"""EXP-SCALING — DRS across the deployed cluster-size range and beyond.

"The DRS was deployed in 27 local voice mail server clusters … each cluster
contains between 8 and 12 servers."  This experiment sweeps cluster size
and reports, at a fixed sweep period:

* failover latency (should be size-independent — detection is per-link),
* probe bandwidth (grows quadratically — Figure 1's other axis),
* the feasibility boundary from :meth:`DrsConfig.for_deployment` for a
  1-second detection target at the paper's 15% budget cap.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, Job, JobPlan, register, run_plan
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def measure_point(n: int, sweep_period_s: float = 0.5, repeats: int = 3) -> tuple[float, float]:
    """(mean detect+repair latency, probe load fraction) at cluster size n."""
    config = DrsConfig(sweep_period_s=sweep_period_s, probe_timeout_s=0.01)
    latencies = []
    load = 0.0
    for i in range(repeats):
        sim = Simulator()
        cluster = build_dual_backplane_cluster(sim, n)
        cluster.trace.enabled = True
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, config)
        warmup = 2 * sweep_period_s + 0.5
        sim.run(until=warmup)
        bits0 = sum(bp.bits_carried.value for bp in cluster.backplanes)
        t0 = sim.now
        victim = 1 + (i % (n - 1))
        cluster.faults.fail(f"nic{victim}.0")
        sim.run(until=t0 + 3 * sweep_period_s + 0.5)
        repairs = [
            e
            for e in cluster.trace.entries("drs-repair")
            if e.time > t0 and e.fields["node"] == 0 and e.fields["peer"] == victim
        ]
        if repairs:
            latencies.append(repairs[0].time - t0)
        bits = sum(bp.bits_carried.value for bp in cluster.backplanes) - bits0
        load += bits / (2 * 100e6 * (sim.now - t0))
    return (float(np.mean(latencies)) if latencies else float("nan"), load / repeats)


def _size_point(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> tuple[float, float]:
    """Engine job: latency + probe load at one cluster size (deterministic DES)."""
    return measure_point(params["n"], params["sweep_period_s"])


def build_plan(
    n_values: tuple[int, ...] = (4, 8, 12, 16, 24),
    sweep_period_s: float = 0.5,
    detection_target_s: float = 1.0,
    budget_cap: float = 0.15,
    seed: int = 0,
) -> JobPlan:
    """One DES job per cluster size; the feasibility boundary reduces."""
    jobs = [
        Job(name=f"size/n={n}", fn=_size_point, params={"n": n, "sweep_period_s": sweep_period_s})
        for n in n_values
    ]

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("scaling")
        result.meta = {
            "seed": seed,
            "n_values": list(n_values),
            "sweep_period_s": sweep_period_s,
            "detection_target_s": detection_target_s,
            "budget_cap": budget_cap,
        }
        rows = []
        nan_pair = (float("nan"), float("nan"))
        for n in n_values:
            # quarantined sizes are absent: NaN keeps the table shape intact
            latency, load = values.get(f"size/n={n}", nan_pair)
            rows.append([n, latency, load])
        result.add_table(
            "scaling",
            ["N", "detect+repair (s)", "probe load (fraction of both segments)"],
            rows,
            caption=f"Fixed sweep {sweep_period_s}s across cluster sizes (deployed range: 8-12)",
        )
        latencies = [r[1] for r in rows]
        result.note(
            f"failover latency is size-independent ({min(latencies):.2f}-{max(latencies):.2f} s "
            f"across N={n_values[0]}..{n_values[-1]}) while probe load grows ~N^2 — "
            "exactly the Figure-1 economics"
        )
        # feasibility boundary for the paper's budget cap
        feasible = []
        n = 2
        while True:
            try:
                DrsConfig.for_deployment(n, detection_target_s, budget_cap)
                feasible.append(n)
                n += 1
            except ValueError:
                break
        result.add_table(
            "feasibility",
            ["detection target (s)", "budget cap", "largest feasible N"],
            [[detection_target_s, f"{budget_cap:.0%}", feasible[-1] if feasible else 0]],
            caption="DrsConfig.for_deployment boundary (cf. Figure 1 read-off)",
        )
        return result

    return JobPlan(experiment="scaling", seed=seed, jobs=jobs, reduce=reduce)


def run(
    n_values: tuple[int, ...] = (4, 8, 12, 16, 24),
    sweep_period_s: float = 0.5,
    detection_target_s: float = 1.0,
    budget_cap: float = 0.15,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Scaling table plus the feasibility boundary."""
    plan = build_plan(
        n_values=n_values,
        sweep_period_s=sweep_period_s,
        detection_target_s=detection_target_s,
        budget_cap=budget_cap,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="scaling",
        run=run,
        profiles={"quick": {"n_values": (4, 8, 12)}, "full": {}},
        parallel=True,
        order=140,
        description="deployed-range size sweep + feasibility boundary",
    )
)

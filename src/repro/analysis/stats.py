"""Statistical accounting for the Monte Carlo estimators.

The paper reports raw simulation means; a production harness should also
say how sure it is.  This module provides

* the Wilson score interval for Bernoulli proportions (well-behaved near 0
  and 1, where survivability estimates live), and
* :func:`estimate_to_precision` — run the Monte Carlo in growing batches
  until the interval half-width reaches a target, so callers ask for a
  precision instead of guessing an iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ProportionEstimate:
    """A Bernoulli-proportion estimate with its Wilson interval."""

    successes: int
    trials: int
    confidence: float
    point: float
    low: float
    high: float

    @property
    def half_width(self) -> float:
        """Half the interval width — the precision actually achieved."""
        return (self.high - self.low) / 2.0


#: two-sided z for common confidence levels (no scipy needed at runtime)
_Z_TABLE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}


def _z_for(confidence: float) -> float:
    try:
        return _Z_TABLE[round(confidence, 3)]
    except KeyError:
        raise ValueError(f"confidence must be one of {sorted(_Z_TABLE)}, got {confidence}") from None


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> ProportionEstimate:
    """Wilson score interval for ``successes`` out of ``trials``."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, trials], got {successes}/{trials}")
    z = _z_for(confidence)
    p = successes / trials
    z2 = z * z
    denominator = 1 + z2 / trials
    center = (p + z2 / (2 * trials)) / denominator
    margin = z * np.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials)) / denominator
    return ProportionEstimate(
        successes=successes,
        trials=trials,
        confidence=confidence,
        point=p,
        low=max(0.0, float(center - margin)),
        high=min(1.0, float(center + margin)),
    )


def estimate_to_precision(
    trial_batch: Callable[[int], int],
    target_half_width: float,
    confidence: float = 0.95,
    batch: int = 10_000,
    max_trials: int = 5_000_000,
) -> ProportionEstimate:
    """Run ``trial_batch(k) -> successes`` until the Wilson CI is tight enough.

    Parameters
    ----------
    trial_batch:
        Callable running ``k`` Bernoulli trials and returning the success
        count (e.g. a closure over the vectorized survivability predicate).
    target_half_width:
        Stop once the interval half-width is at or below this.
    batch, max_trials:
        Batch size per round and the hard trial budget; hitting the budget
        returns the best estimate achieved rather than raising.
    """
    if target_half_width <= 0:
        raise ValueError("target_half_width must be positive")
    if batch <= 0 or max_trials <= 0:
        raise ValueError("batch and max_trials must be positive")
    successes = 0
    trials = 0
    estimate = None
    while trials < max_trials:
        size = min(batch, max_trials - trials)
        got = int(trial_batch(size))
        if not 0 <= got <= size:
            raise ValueError(f"trial_batch returned {got} successes for {size} trials")
        successes += got
        trials += size
        estimate = wilson_interval(successes, trials, confidence)
        if estimate.half_width <= target_half_width:
            return estimate
    return estimate


def mc_success_estimate(
    n: int,
    f: int,
    rng: np.random.Generator,
    target_half_width: float = 0.001,
    confidence: float = 0.95,
    **kwargs,
) -> ProportionEstimate:
    """Pair survivability with a confidence interval at requested precision."""
    from repro.analysis.montecarlo import pair_connected_vec, sample_failure_matrix

    def batch(k: int) -> int:
        return int(pair_connected_vec(sample_failure_matrix(n, f, k, rng)).sum())

    return estimate_to_precision(batch, target_half_width, confidence, **kwargs)

#!/usr/bin/env python
"""Survivability analysis: Equation 1, its Monte Carlo validation, and
capacity planning with the paper's probability model.

Reproduces the paper's analytic story at the API level:

1. P[Success](N, f) curves for several failure counts (Figure 2),
2. the 0.99 crossover sizes the paper quotes (18 / 32 / 45),
3. Monte Carlo agreement with the closed form (Figure 3's point),
4. a planning question: how many servers does a target availability need?

Run:  python examples/survivability_analysis.py
"""

import numpy as np

from repro import crossover_n, simulate_success_probability, success_curve, success_probability
from repro.viz import line_chart, render_table


def main() -> None:
    # 1. Figure-2 style curves
    curves = {}
    for f in (2, 4, 6, 8, 10):
        ns, ps = success_curve(f, n_max=63)
        curves[f"f={f}"] = (ns, ps)
    print(line_chart(curves, title="P[Success] vs cluster size (Equation 1)",
                     x_label="nodes", y_label="P[Success]", height=16))

    # 2. the paper's crossover table
    rows = [[f, crossover_n(f)] for f in range(2, 8)]
    print()
    print(render_table(["simultaneous failures f", "N where P[S] > 0.99"], rows,
                       title="0.99 crossovers (paper: 18 / 32 / 45 for f=2/3/4)"))

    # 3. Monte Carlo validation of a few points
    rng = np.random.default_rng(0)
    print()
    check_rows = []
    for n, f in [(18, 2), (32, 3), (45, 4)]:
        estimate = simulate_success_probability(n, f, iterations=200_000, rng=rng)
        exact = success_probability(n, f)
        check_rows.append([n, f, exact, estimate, abs(exact - estimate)])
    print(render_table(["N", "f", "Equation 1", "Monte Carlo (200k)", "|diff|"], check_rows,
                       title="Simulation vs equation (Figure 3's agreement)"))

    # 4. capacity planning: smallest cluster surviving f=3 at three 9s
    n_needed = crossover_n(3, threshold=0.999)
    print(f"\nplanning: to keep P[pair survives 3 simultaneous failures] > 99.9%, "
          f"deploy at least N={n_needed} servers")


if __name__ == "__main__":
    main()

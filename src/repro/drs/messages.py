"""DRS control-plane messages (carried as UDP datagram payloads).

Sizes are declared explicitly so the control traffic is accounted on the
wire like everything else; they approximate a compact binary encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addresses import NetworkId, NodeId

#: Well-known UDP port every DRS daemon binds.
DRS_PORT = 1112

DISCOVERY_REQUEST_BYTES = 24
ROUTE_OFFER_BYTES = 28
INSTALL_REQUEST_BYTES = 24
INSTALL_ACK_BYTES = 16
LINK_DOWN_NOTIFICATION_BYTES = 20


@dataclass(frozen=True, slots=True)
class DiscoveryRequest:
    """Broadcast by a node that lost all direct links to ``target``.

    "A broadcast is made to identify whether or not some other server is
    able to act as a router" — the arrival network of the broadcast is,
    by construction, a working first leg from the origin to the responder.
    """

    origin: NodeId
    target: NodeId
    request_id: int


@dataclass(frozen=True, slots=True)
class RouteOffer:
    """A volunteer router's answer to a discovery request.

    ``leg2_network`` is the network on which the volunteer's own monitor
    currently believes its direct link to the target is UP.  When the
    *target itself* answers (the origin's link belief was stale), the offer
    has ``router == target`` and the origin simply restores the direct route
    on the arrival network.
    """

    router: NodeId
    target: NodeId
    request_id: int
    leg2_network: NetworkId


@dataclass(frozen=True, slots=True)
class RouteInstallRequest:
    """Origin asks the chosen volunteer to pin its direct leg to the target."""

    origin: NodeId
    target: NodeId
    request_id: int
    leg2_network: NetworkId


@dataclass(frozen=True, slots=True)
class InstallAck:
    """Volunteer confirms the second leg is pinned; origin activates the route."""

    router: NodeId
    target: NodeId
    request_id: int


@dataclass(frozen=True, slots=True)
class LinkDownNotification:
    """Optional triggered update (``DrsConfig.notify_peers``).

    The first daemon to declare a link DOWN tells everyone, so peers can
    recheck that link immediately instead of waiting out their own sweep and
    retry budget — cutting cluster-wide convergence to roughly the first
    detector's latency plus one probe.
    """

    origin: NodeId
    peer: NodeId
    network: NetworkId

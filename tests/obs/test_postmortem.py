"""Post-mortem reconstruction: critical paths must agree with the metrics."""

import json

import pytest

from repro.obs import MetricsRegistry, ensure_core_metrics
from repro.obs.postmortem import (
    build_postmortems,
    render_postmortems,
    summarize_postmortems,
)
from repro.obs.spans import Span, span_log
from repro.protocols.tcp import DEFAULT_INITIAL_RTO_S
from repro.scenario.run import run_scenario
from repro.scenario.spec import FaultStep, ScenarioSpec


def _hub_failure_report():
    """A seeded single-hub-failure scenario (hub0 down 10s..20s)."""
    spec = ScenarioSpec(
        name="pm-hub-failure",
        nodes=4,
        duration_s=30.0,
        protocol_kind="drs",
        protocol_options={"sweep_period_s": 0.5},
        faults=(
            FaultStep(at=10.0, action="fail", component="hub0"),
            FaultStep(at=20.0, action="repair", component="hub0"),
        ),
        seed=7,
    )
    metrics = ensure_core_metrics(MetricsRegistry())
    return run_scenario(spec, metrics=metrics), metrics


def test_postmortem_totals_match_failover_histogram():
    """Acceptance: per-episode totals reproduce drs_failover_latency_seconds."""
    report, metrics = _hub_failure_report()
    spans = span_log(report.trace).spans
    reports = build_postmortems(spans)
    hist = metrics.histogram("drs_failover_latency_seconds")
    assert len(reports) == hist.count > 0
    assert sum(r.failover_latency_s for r in reports) == pytest.approx(hist.sum)
    assert max(r.failover_latency_s for r in reports) == pytest.approx(hist.max)
    assert min(r.failover_latency_s for r in reports) == pytest.approx(hist.min)


def test_postmortem_attributes_detection_and_budget():
    report, _ = _hub_failure_report()
    reports = build_postmortems(span_log(report.trace).spans)
    for r in reports:
        assert r.incident is not None and r.incident.attrs["component"] == "hub0"
        assert r.detection is not None and r.detection.duration >= 0
        assert r.outcome == "direct-swap"
        assert r.total_s == pytest.approx(r.detection.duration + r.failover_latency_s)
        assert r.budget_consumed == pytest.approx(r.total_s / DEFAULT_INITIAL_RTO_S)


def test_build_postmortems_synthetic_discovery_path():
    spans = [
        Span(1, "incident:nic1.0", "fault", 10.0, 25.0, attrs={"component": "nic1.0"}),
        Span(2, "failover", "failover", 10.4, 10.9, parent_id=1, incident_id=1,
             node=0, attrs={"peer": 1, "outcome": "two-hop"}),
        Span(3, "discovery", "discovery", 10.5, 10.8, parent_id=2, incident_id=1, node=0),
    ]
    (r,) = build_postmortems(spans)
    assert [p.name for p in r.phases] == ["discovery-wait", "discovery", "install"]
    assert r.failover_latency_s == pytest.approx(0.5)
    assert r.total_s == pytest.approx(0.9)
    assert not r.deadline_violated
    tight = build_postmortems(spans, deadline_s=0.5)[0]
    assert tight.deadline_violated and tight.budget_consumed == pytest.approx(1.8)


def test_unreachable_episode_violates_deadline():
    spans = [
        Span(2, "failover", "failover", 1.0, 3.0, node=0,
             attrs={"peer": 1, "outcome": "unreachable"}),
    ]
    (r,) = build_postmortems(spans, deadline_s=10.0)
    assert r.incident is None and r.deadline_violated


def test_node_filter_and_open_spans_skipped():
    spans = [
        Span(1, "failover", "failover", 1.0, 2.0, node=0, attrs={"peer": 1}),
        Span(2, "failover", "failover", 1.0, 2.0, node=3, attrs={"peer": 1}),
        Span(3, "failover", "failover", 1.0, None, node=0),  # still open
    ]
    assert len(build_postmortems(spans)) == 2
    only = build_postmortems(spans, node=3)
    assert len(only) == 1 and only[0].node == 3


def test_render_and_summary():
    report, _ = _hub_failure_report()
    reports = build_postmortems(span_log(report.trace).spans)
    text = render_postmortems(reports)
    assert "hub0" in text and "within deadline" in text and "budget" in text
    assert render_postmortems([]).startswith("postmortem: no failover episodes")
    summary = summarize_postmortems(reports)
    assert summary["episodes"] == len(reports)
    assert summary["deadline_violations"] == 0
    assert summarize_postmortems([]) == {"episodes": 0, "deadline_violations": 0}


def test_postmortem_cli_on_trace_artifact(tmp_path, capsys):
    from repro.obs.artifacts import write_trace_jsonl
    from repro.obs.cli import main

    report, _ = _hub_failure_report()
    path = tmp_path / "run.trace.jsonl"
    write_trace_jsonl(report.trace, path)
    assert main(["postmortem", str(path)]) == 0
    out = capsys.readouterr().out
    assert "episode(s)" in out and "hub0" in out


def test_export_trace_cli_writes_valid_chrome_json(tmp_path, capsys):
    from repro.obs.artifacts import write_trace_jsonl
    from repro.obs.cli import main
    from repro.obs.spans import validate_chrome_trace

    report, _ = _hub_failure_report()
    src = tmp_path / "run.trace.jsonl"
    write_trace_jsonl(report.trace, src)
    out_path = tmp_path / "run.spans.json"
    assert main(["export-trace", str(src), "--out", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    assert any(e.get("cat") == "failover" for e in doc["traceEvents"])

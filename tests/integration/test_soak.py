"""Soak tests: random failure storms, then full re-convergence.

These are the whole-system invariants: under arbitrary component churn the
cluster must never crash, and once the hardware settles the DRS layer must
restore all-pairs reachability with loop-free steady-state routes.
"""

import dataclasses

import numpy as np
import pytest

from repro.drs import install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import PingStatus, install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST


def _all_pairs_reachable(sim, stacks, nodes, timeout_s=0.1):
    results = {}

    def record(res, key):
        results[key] = res.status is PingStatus.REPLY

    for src in nodes:
        for dst in nodes:
            if src != dst:
                stacks[src].icmp.ping(dst, timeout_s=timeout_s, callback=lambda r, k=(src, dst): record(r, k))
    sim.run(until=sim.now + timeout_s + 0.1)
    return [k for k, ok in results.items() if not ok]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("notify", [False, True])
def test_storm_then_full_reconvergence(seed, notify):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 6)
    stacks = install_stacks(cluster)
    config = dataclasses.replace(FAST, notify_peers=notify)
    install_drs(cluster, stacks, config)
    sim.run(until=1.0)

    # churn: components fail and repair with short exponential lifetimes
    rng = np.random.default_rng(seed)
    cluster.faults.start_random_faults(rng, mtbf_s=4.0, mttr_s=2.0)
    sim.run(until=31.0)
    cluster.faults.stop_random_faults()
    assert sum(c.fail_count for c in cluster.faults.components) > 10

    # hardware settles; the routing layer must recover on its own
    cluster.faults.repair_all()
    sim.run(until=sim.now + 3.0)
    unreachable = _all_pairs_reachable(sim, stacks, range(6))
    assert unreachable == [], f"pairs still dark after settle: {unreachable}"


def test_no_ttl_drops_after_settling():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 6)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    rng = np.random.default_rng(7)
    cluster.faults.start_random_faults(rng, mtbf_s=3.0, mttr_s=1.5)
    sim.run(until=21.0)
    cluster.faults.stop_random_faults()
    cluster.faults.repair_all()
    sim.run(until=sim.now + 3.0)
    # measure only the settled window: steady-state routes are loop-free
    drops_before = sum(s.net.dropped_ttl.value for s in stacks.values())
    assert _all_pairs_reachable(sim, stacks, range(6)) == []
    for _ in range(3):
        assert _all_pairs_reachable(sim, stacks, range(6)) == []
    drops_after = sum(s.net.dropped_ttl.value for s in stacks.values())
    assert drops_after == drops_before


def test_storm_is_deterministic_per_seed():
    def run_once():
        sim = Simulator()
        cluster = build_dual_backplane_cluster(sim, 5)
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, FAST)
        rng = np.random.default_rng(42)
        cluster.faults.start_random_faults(rng, mtbf_s=3.0, mttr_s=1.0)
        sim.run(until=15.0)
        return [
            (e.time, e.category, tuple(sorted(e.fields.items())))
            for e in cluster.trace.entries()
            if e.category.startswith(("fault", "drs-"))
        ]

    assert run_once() == run_once()


def test_storm_with_lossy_segments():
    # churn + 2% random frame loss simultaneously: still recovers
    sim = Simulator()
    loss_rng = np.random.default_rng(100)
    cluster = build_dual_backplane_cluster(sim, 5, loss_rate=0.02, rng=loss_rng)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    fault_rng = np.random.default_rng(101)
    cluster.faults.start_random_faults(fault_rng, mtbf_s=5.0, mttr_s=2.0)
    sim.run(until=16.0)
    cluster.faults.stop_random_faults()
    cluster.faults.repair_all()
    sim.run(until=sim.now + 3.0)
    # under residual loss a single ping can drop; allow one retry per pair
    dark = _all_pairs_reachable(sim, stacks, range(5))
    if dark:
        dark = [pair for pair in dark if pair in _all_pairs_reachable(sim, stacks, range(5))]
    assert dark == []

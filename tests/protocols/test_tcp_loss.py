"""TCP-lite under random frame loss: reliability and fast retransmit."""

import numpy as np
import pytest

from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def _lossy_rig(loss_rate, seed=0):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 2, loss_rate=loss_rate, rng=np.random.default_rng(seed))
    stacks = install_stacks(cluster)
    return sim, cluster, stacks


@pytest.mark.parametrize("loss,seed", [(0.05, 1), (0.15, 2), (0.30, 3)])
def test_all_messages_delivered_in_order_under_loss(loss, seed):
    sim, cluster, stacks = _lossy_rig(loss, seed)
    inbox = []
    stacks[1].tcp.listen(80, on_message=lambda c, d, s: inbox.append(d))
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.2, max_retries=30)
    for i in range(60):
        conn.send_message(data=i, data_bytes=200)
    sim.run(until=600.0)
    assert inbox == list(range(60)), f"loss={loss}: order or completeness violated"
    assert conn.retransmissions.value > 0


def test_fast_retransmit_triggers_under_loss():
    # enough traffic and loss that a hole forms while later segments flow
    sim, cluster, stacks = _lossy_rig(0.1, seed=7)
    inbox = []
    stacks[1].tcp.listen(80, on_message=lambda c, d, s: inbox.append(d))
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=2.0, window_segments=16, max_retries=30)
    for i in range(200):
        conn.send_message(data=i, data_bytes=100)
    sim.run(until=900.0)
    assert inbox == list(range(200))
    assert conn.fast_retransmits.value > 0
    # fast retransmit should beat the (deliberately huge) RTO most of the time
    assert conn.fast_retransmits.value >= conn.retransmissions.value * 0.2


def test_duplicate_data_does_not_duplicate_delivery():
    sim, cluster, stacks = _lossy_rig(0.25, seed=11)
    inbox = []
    stacks[1].tcp.listen(80, on_message=lambda c, d, s: inbox.append(d))
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.2, max_retries=40)
    for i in range(40):
        conn.send_message(data=i, data_bytes=50)
    sim.run(until=600.0)
    assert inbox == list(range(40))  # exactly once, in order
    assert conn.messages_delivered == 0  # deliveries counted on the receiver side


def test_latencies_present_for_all_messages_after_loss():
    sim, cluster, stacks = _lossy_rig(0.1, seed=5)
    stacks[1].tcp.listen(80)
    conn = stacks[0].tcp.connect(1, 80, initial_rto_s=0.2, max_retries=30)
    ids = [conn.send_message(data=i, data_bytes=100) for i in range(30)]
    sim.run(until=600.0)
    assert all(mid in conn.message_latencies for mid in ids)

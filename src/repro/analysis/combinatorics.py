"""Small exact-combinatorics helpers shared by the survivability model."""

from __future__ import annotations

from math import comb


def comb0(n: int, k: int) -> int:
    """``C(n, k)`` extended with 0 outside the valid domain.

    The closed form of Equation 1 sums terms whose arguments go negative at
    small ``f``; treating those as zero keeps one formula valid everywhere.
    """
    if n < 0 or k < 0 or k > n:
        return 0
    return comb(n, k)


def covering_nic_failures(m: int, j: int) -> int:
    """Ways to fail ``j`` NICs among ``m`` dual-NIC nodes hitting every node.

    Each of the ``m`` intermediates must lose at least one of its two NICs.
    With ``d`` nodes losing both NICs and ``m - d`` losing exactly one (2
    choices each), ``j = m + d`` gives::

        T(m, j) = C(m, j - m) * 2^(2m - j)      for m <= j <= 2m

    and 0 otherwise.  This is the "crossed endpoints" correction term of the
    reconstructed Equation 1: the only way a two-hop DRS repair can fail with
    both hubs up and both endpoints half-alive is for every potential
    intermediate router to have lost a NIC.
    """
    if m < 0 or j < m or j > 2 * m:
        return 0
    return comb(m, j - m) * 2 ** (2 * m - j)

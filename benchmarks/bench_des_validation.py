"""EXP-DESVAL bench — live-protocol survivability matches Equation 1.

Injects exactly-f uniform failures into clusters running real DRS daemons
and compares the empirical pair-survivability with the analytic model.
"""

import numpy as np

from repro.analysis import success_probability
from repro.experiments.desvalidation import empirical_success


def test_des_matches_equation1_f2(once, capsys):
    rng = np.random.default_rng(2000)
    measured = once(empirical_success, 8, 2, 60, rng)
    expected = success_probability(8, 2)
    with capsys.disabled():
        print(f"\nN=8 f=2: DES={measured:.3f} Eq1={expected:.3f}")
    assert abs(measured - expected) < 0.09  # ~3 sigma at 60 replicates


def test_des_matches_equation1_f4(once, capsys):
    rng = np.random.default_rng(2001)
    measured = once(empirical_success, 8, 4, 60, rng)
    expected = success_probability(8, 4)
    with capsys.disabled():
        print(f"\nN=8 f=4: DES={measured:.3f} Eq1={expected:.3f}")
    assert abs(measured - expected) < 0.17


def test_des_survivability_improves_with_n(once):
    def pair():
        a = empirical_success(4, 3, 40, np.random.default_rng(7))
        b = empirical_success(12, 3, 40, np.random.default_rng(7))
        return a, b

    small, large = once(pair)
    assert large >= small  # the paper's headline trend on the live protocol

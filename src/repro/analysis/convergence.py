"""Figure 3: convergence of the simulation to Equation 1.

"The y-axis represents the mean absolute difference between the simulation
output and the equation value for f < N < 64.  The x-axis represents the
number of iterations in log10 scale.  With 1,000 iterations, the mean
absolute difference is less than [~0.01] for each of the fixed f values, and
as the number of iterations increases the mean absolute difference converges
to zero."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import success_probability
from repro.analysis.montecarlo import (
    simulate_full_grid,
    simulate_grid,
    simulate_success_probability,
)
from repro.simkit.rng import spawn_seedseq


def _require_one_stream(rng: np.random.Generator | None, seed: int | None) -> None:
    """Exactly one of ``rng``/``seed`` — both used to silently drop ``seed``."""
    if rng is None and seed is None:
        raise TypeError("pass either rng= or seed=")
    if rng is not None and seed is not None:
        raise TypeError("pass either rng= or seed=, not both")


def mean_absolute_deviation(
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    n_max: int = 63,
    seed: int | None = None,
) -> float:
    """Mean |simulated − exact| over the paper's domain ``f < N < 64``.

    With ``seed`` instead of ``rng``, every N gets an independently spawned
    stream keyed by ``(iterations, n, f)``, so one grid cell's estimate does
    not depend on which cells ran before it.
    """
    _require_one_stream(rng, seed)
    ns = range(max(2, f + 1), n_max + 1)
    deviations = [
        abs(
            simulate_success_probability(
                n,
                f,
                iterations,
                rng
                if rng is not None
                else np.random.default_rng(spawn_seedseq(seed, f"mad/f={f}/iters={iterations}/n={n}")),
            )
            - success_probability(n, f)
        )
        for n in ns
    ]
    if not deviations:
        raise ValueError(f"empty N domain for f={f}, n_max={n_max}")
    return float(np.mean(deviations))


def mean_absolute_deviation_grid(
    f_values: tuple[int, ...],
    iterations: int,
    n_max: int = 63,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    target_half_width: float | None = None,
    confidence: float = 0.95,
    max_iterations: int | None = None,
    method: str = "crn",
) -> dict[int, float]:
    """MAD for *every* ``f`` in one sweep over the common-random-numbers kernel.

    With ``seed``, the entire (N, f) grid runs as **one** padded tensor
    pass (:func:`~repro.analysis.montecarlo.simulate_full_grid` with
    explicit per-N streams): every N's rows stack into shared kernel
    calls, so a full Figure 3 column costs a handful of kernel
    invocations instead of one sweep per N.  The per-N streams keep the
    historical ``mad-grid/n={n}`` keys, so results are byte-identical to
    the per-N loop this replaced, and any subset of ``f_values``
    reproduces its slice of the full sweep.  A shared ``rng`` falls back
    to the sequential per-N loop (its draws are order-dependent by
    definition).

    ``target_half_width`` switches the kernel to adaptive-stopping mode:
    each (N, f) cell samples until its interval at ``confidence`` reaches
    the target (``iterations`` becomes the first-batch floor,
    ``max_iterations`` the per-N budget), so the MAD is computed over
    estimates of uniform precision instead of uniform trial count.
    ``method`` selects the estimator exactly as on
    :func:`~repro.analysis.montecarlo.simulate_grid` (``"crn"``,
    ``"stratified"``, ``"stratified-cv"``).
    """
    _require_one_stream(rng, seed)
    if not f_values:
        raise ValueError("f_values must name at least one failure count")
    per_n_fs: dict[int, tuple[int, ...]] = {}
    for n in range(max(2, min(f_values) + 1), n_max + 1):
        fs = tuple(f for f in f_values if n >= max(2, f + 1))
        if fs:
            per_n_fs[n] = fs
    deviations: dict[int, list[float]] = {f: [] for f in f_values}
    if seed is not None and per_n_fs:
        streams = {
            n: np.random.default_rng(spawn_seedseq(seed, f"mad-grid/n={n}")) for n in per_n_fs
        }
        grid = simulate_full_grid(
            tuple(per_n_fs),
            per_n_fs,
            iterations,
            rngs=streams,
            target_half_width=target_half_width,
            confidence=confidence,
            max_iterations=max_iterations,
            method=method,
        )
        estimates_by_n = {n: grid[n] for n in per_n_fs}
    else:
        estimates_by_n = {
            n: simulate_grid(
                n,
                fs,
                iterations,
                rng=rng,
                target_half_width=target_half_width,
                confidence=confidence,
                max_iterations=max_iterations,
                method=method,
            )
            for n, fs in per_n_fs.items()
        }
    for n, fs in per_n_fs.items():
        estimates = estimates_by_n[n]
        for f in fs:
            point = estimates[f].point if target_half_width is not None else estimates[f]
            deviations[f].append(abs(point - success_probability(n, f)))
    empty = [f for f, d in deviations.items() if not d]
    if empty:
        raise ValueError(f"empty N domain for f={empty[0]}, n_max={n_max}")
    return {f: float(np.mean(deviations[f])) for f in f_values}


@dataclass(frozen=True)
class ConvergenceStudy:
    """Result grid: MAD per (f, iteration count)."""

    f_values: tuple[int, ...]
    iteration_grid: tuple[int, ...]
    mad: np.ndarray  # shape (len(f_values), len(iteration_grid))

    def series(self, f: int) -> np.ndarray:
        """The MAD-vs-iterations series for one f (one Figure 3 curve)."""
        return self.mad[self.f_values.index(f)]


def convergence_study(
    f_values: list[int],
    iteration_grid: list[int],
    rng: np.random.Generator | None = None,
    n_max: int = 63,
    seed: int | None = None,
) -> ConvergenceStudy:
    """Regenerate Figure 3's data: MAD for each f over an iteration grid.

    The paper uses f = 2..10 and a log10-spaced iteration axis.  With
    ``seed`` instead of a shared ``rng``, every grid cell is an independent
    spawned stream (see :func:`mean_absolute_deviation`), which is what the
    job-parallel Figure 3 experiment uses.
    """
    mad = np.empty((len(f_values), len(iteration_grid)))
    for i, f in enumerate(f_values):
        for j, iters in enumerate(iteration_grid):
            mad[i, j] = mean_absolute_deviation(f, iters, rng, n_max=n_max, seed=seed)
    return ConvergenceStudy(
        f_values=tuple(f_values), iteration_grid=tuple(iteration_grid), mad=mad
    )

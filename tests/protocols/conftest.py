"""Shared protocol-test rig: a small cluster with full stacks installed."""

import pytest

from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


@pytest.fixture
def rig():
    """(sim, cluster, stacks) for a 4-node dual-backplane cluster."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    return sim, cluster, stacks

"""Multi-host distributed execution: a coordinator + worker TCP protocol.

The third executor backend (after :class:`~repro.engine.executors.SerialExecutor`
and the process-pool :class:`~repro.engine.executors.ParallelExecutor`): a
:class:`DistributedExecutor` runs the **coordinator** for one plan, and any
number of ``drs-worker`` processes — on this machine or others — connect over
TCP, pull job chunks, and stream results back.  Workers may join and leave at
any point of the run (elastic membership); the protocol is loopback by
default and binds a routable address with ``--coordinator 0.0.0.0:PORT``.

Wire format
-----------

Length-prefixed JSON frames: a 4-byte big-endian length followed by one
UTF-8 JSON object.  Job params and values cross the wire through the
checkpoint codec (:func:`~repro.engine.checkpoint.encode_value` /
:func:`decode_value`), so tuples and NumPy scalars/arrays survive exactly;
job *functions* travel as ``"module:qualname"`` references resolved by
import on the worker (the same module-level-function rule process pools
already impose).  Workers therefore trust their coordinator — run the
protocol on a loopback or private network, not the open internet.

Scheduling
----------

The coordinator owns the job queue; **idle workers pull** (work stealing in
the scheduling-theory sense — there is no push or static partition).  Chunk
sizes follow guided self-scheduling: each pull takes
``ceil(pending / (chunks_per_worker * active_workers))`` jobs, so early
chunks amortize round trips and late chunks keep the fleet balanced.  A
worker that misses its heartbeat deadline (or whose connection drops — a
SIGKILLed worker closes its socket immediately) is declared dead: its
outstanding chunk is requeued and the next idle worker picks the jobs up,
recorded as ``job.stolen`` flight events.  A job whose workers keep dying
exhausts a requeue budget and lands in the existing quarantine machinery
(or raises :class:`~repro.engine.retry.JobError` under a fail-fast policy),
exactly like a poison job that keeps breaking a process pool.

Because every job's stream is spawned from ``(root seed, experiment, job
name)``, none of this affects values: serial, ``--jobs N``, and distributed
runs — including runs where workers died mid-chunk — produce byte-identical
CSVs.  Schedules shape wall time and event ordering, never results.

Observability
-------------

Workers run the shared :func:`~repro.engine.executors._run_chunk` path, so
each chunk returns its private metrics registry, silent heartbeat summary,
and buffered flight events; the coordinator merges/ingests them exactly as
the process-pool parent does.  The coordinator additionally emits
``worker.join`` / ``worker.leave`` / ``job.stolen`` events, and the final
:class:`~repro.engine.executors.PlanExecution` carries per-host attribution
(host, pid, jobs, wall/CPU seconds per worker) that ``run_plan`` folds into
the manifest under ``engine.hosts``.
"""

from __future__ import annotations

import json
import math
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from repro.engine.checkpoint import Checkpoint, decode_value, encode_value
from repro.engine.executors import (
    PlanExecution,
    PlanInterrupted,
    _announce_plan,
    _install_progress_totals,
    _resume_from_checkpoint,
)
from repro.engine.jobs import Job, JobPlan
from repro.engine.retry import FAIL_FAST, JobError, JobOutcome, RetryPolicy
from repro.obs.flightrecorder import flight_recorder
from repro.obs.metrics import Histogram, MetricsRegistry, current_registry
from repro.obs.progress import heartbeat

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "parse_address",
    "job_to_wire",
    "job_from_wire",
    "outcome_to_wire",
    "outcome_from_wire",
    "policy_to_wire",
    "policy_from_wire",
    "registry_to_wire",
    "registry_from_wire",
    "Coordinator",
    "DistributedExecutor",
]

PROTOCOL_VERSION = 1

#: hard ceiling on one frame; a legitimate chunk result is orders smaller
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: how often workers beat, and how long the coordinator waits before
#: declaring a silent worker dead (a dead *process* is detected faster,
#: through its closed socket; the deadline catches network partitions)
HEARTBEAT_INTERVAL_S = 1.0
HEARTBEAT_TIMEOUT_S = 10.0

#: test/CI fault injection: a worker SIGKILLs itself on receiving its
#: (k+1)-th chunk — i.e. it dies *mid-chunk*, with jobs outstanding
WORKER_CRASH_ENV = "DRS_WORKER_CRASH_AFTER_CHUNKS"


class ProtocolError(RuntimeError):
    """A malformed, oversized, or truncated frame on the wire."""


# ------------------------------------------------------------------- framing
def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(payload, default=str).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(struct.pack(">I", len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(f"connection closed mid-frame ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; None on clean EOF (peer closed between frames)."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    data = _recv_exact(sock, length)
    if data is None:
        raise ProtocolError("connection closed between length and payload")
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(f"frame is not a typed object: {frame!r:.80}")
    return frame


def parse_address(spec: str) -> tuple[str, int]:
    """``"HOST:PORT"`` to a bindable/connectable address (port 0 = ephemeral)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"coordinator address must be HOST:PORT, got {spec!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"coordinator port must be an integer, got {port!r}") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"coordinator port out of range: {port_num}")
    return host, port_num


# -------------------------------------------------------------- wire codecs
def job_to_wire(job: Job) -> dict[str, Any]:
    """A job as a frame payload: name, ``module:qualname`` ref, tagged params."""
    fn = job.fn
    if getattr(fn, "__name__", "<lambda>") == "<lambda>" or "<locals>" in getattr(
        fn, "__qualname__", ""
    ):
        raise TypeError(
            f"job {job.name!r} function {fn!r} is not module-level; distributed "
            f"workers resolve functions by import, exactly like process pools pickle them"
        )
    return {
        "name": job.name,
        "fn": f"{fn.__module__}:{fn.__qualname__}",
        "params": encode_value(job.params),
    }


def resolve_job_fn(ref: str) -> Callable[..., Any]:
    """Import-resolve a ``module:qualname`` function reference."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise ProtocolError(f"malformed function reference {ref!r}")
    import importlib

    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ProtocolError(f"function reference {ref!r} resolved to non-callable {obj!r}")
    return obj


def job_from_wire(payload: dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_wire` (imports the job function)."""
    return Job(
        name=payload["name"],
        fn=resolve_job_fn(payload["fn"]),
        params=decode_value(payload["params"]),
    )


def outcome_to_wire(outcome: JobOutcome) -> dict[str, Any]:
    """A job outcome as a frame payload; unencodable values become failures.

    The process-pool path moves values by pickle; the wire moves them through
    the checkpoint codec.  A value with no faithful JSON form cannot reach
    the coordinator intact, so it is reported as a failed outcome (the job
    quarantines) rather than silently degraded.
    """
    wire = {
        "name": outcome.name,
        "ok": outcome.ok,
        "error": outcome.error,
        "attempts": outcome.attempts,
        "timed_out": outcome.timed_out,
        "elapsed_s": outcome.elapsed_s,
    }
    if outcome.ok:
        try:
            wire["value"] = encode_value(outcome.value)
        except TypeError as exc:
            wire.update(ok=False, error=f"job value not wire-encodable: {exc}", value=None)
    else:
        wire["value"] = None
    return wire


def outcome_from_wire(payload: dict[str, Any]) -> JobOutcome:
    """Inverse of :func:`outcome_to_wire`."""
    return JobOutcome(
        name=payload["name"],
        ok=bool(payload["ok"]),
        value=decode_value(payload.get("value")),
        error=payload.get("error"),
        attempts=int(payload.get("attempts", 1)),
        timed_out=bool(payload.get("timed_out", False)),
        elapsed_s=float(payload.get("elapsed_s", 0.0)),
    )


def policy_to_wire(policy: RetryPolicy) -> dict[str, Any]:
    """A retry policy as plain fields (it is a frozen dataclass of scalars)."""
    return asdict(policy)


def policy_from_wire(payload: dict[str, Any]) -> RetryPolicy:
    """Inverse of :func:`policy_to_wire`."""
    return RetryPolicy(**payload)


def registry_to_wire(registry: MetricsRegistry) -> list[dict[str, Any]]:
    """A worker registry's full state, mergeable on the coordinator side."""
    rows: list[dict[str, Any]] = []
    for name, labels, kind, obj in registry:
        row: dict[str, Any] = {"name": name, "labels": labels, "kind": kind}
        if kind == "counter":
            row.update(value=obj.value, events=obj.events)
        elif kind == "gauge":
            row.update(value=obj.value)
        else:  # histogram
            row.update(
                bounds=list(obj.bounds),
                counts=list(obj.counts),
                count=obj.count,
                sum=obj.sum,
                # +-inf round-trips through python json; encode defensively
                min=None if obj.count == 0 else obj.min,
                max=None if obj.count == 0 else obj.max,
            )
        rows.append(row)
    return rows


def registry_from_wire(rows: list[dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from :func:`registry_to_wire` rows (for ``merge``)."""
    registry = MetricsRegistry()
    for row in rows:
        labels = row.get("labels") or None
        kind = row["kind"]
        if kind == "counter":
            counter = registry.counter(row["name"], labels)
            counter.value = float(row["value"])
            counter.events = int(row["events"])
        elif kind == "gauge":
            registry.gauge(row["name"], labels).set(float(row["value"]))
        else:
            hist: Histogram = registry.histogram(
                row["name"], buckets=tuple(row["bounds"]), labels=labels
            )
            hist.counts = [int(c) for c in row["counts"]]
            hist.count = int(row["count"])
            hist.sum = float(row["sum"])
            hist.min = float("inf") if row.get("min") is None else float(row["min"])
            hist.max = float("-inf") if row.get("max") is None else float(row["max"])
    return registry


# ------------------------------------------------------------- coordinator
@dataclass
class WorkerHandle:
    """Coordinator-side state of one connected worker."""

    wid: int
    host: str
    pid: int
    sock: socket.socket
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    last_heard: float = field(default_factory=time.monotonic)
    jobs_done: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    chunk: list[Job] | None = None
    alive: bool = True
    reason: str = ""

    @property
    def label(self) -> str:
        return f"{self.host}/{self.pid}"


class Coordinator:
    """Serve one plan's job queue to pull-based TCP workers.

    The coordinator is passive about scheduling: workers ask (``next``), it
    answers with a guided-size chunk, an ``idle`` backoff hint, or
    ``shutdown``.  All shared state — queue, outstanding chunks, absorbed
    results — lives behind one lock; the ``absorb`` callback (the executor's
    result sink: values, checkpoint, registry merge, flight ingest) runs
    under that lock, so the executor needs no locking of its own.
    """

    def __init__(
        self,
        plan: JobPlan,
        jobs: list[Job],
        policy: RetryPolicy,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        chunks_per_worker: int = 4,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
        max_job_requeues: int = 3,
        absorb: Callable[[WorkerHandle, list[Job], dict[str, Any]], None] | None = None,
        emit: Callable[..., None] | None = None,
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.pending: deque[Job] = deque(jobs)
        self.total = len(jobs)
        self.settled: set[str] = set()
        self.chunks_per_worker = chunks_per_worker
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_job_requeues = max_job_requeues
        self._absorb = absorb if absorb is not None else lambda *a: None
        self._emit = emit if emit is not None else lambda *a, **k: None
        self._host, self._port = host, port
        self.lock = threading.RLock()
        self.done = threading.Event()
        self.failure: JobError | None = None
        self.workers: dict[int, WorkerHandle] = {}
        self.jobs_stolen = 0
        self.workers_joined = 0
        self._next_wid = 0
        self._requeues: dict[str, int] = {}
        self._previous_owner: dict[str, int] = {}
        self._quarantined_by_death: list[JobOutcome] = []
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handler_threads: list[threading.Thread] = []
        self._stopping = False

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved after :meth:`start`."""
        return self._host, self._port

    def start(self) -> tuple[str, int]:
        """Bind, listen, and begin accepting workers; returns the address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="drs-coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener and every worker socket; join handler threads."""
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self.lock:
            handles = list(self.workers.values())
        for handle in handles:
            try:
                handle.sock.close()
            except OSError:
                pass
        for thread in self._handler_threads:
            thread.join(timeout=2.0)

    def broadcast_shutdown(self) -> None:
        """Tell every connected worker to exit after its current frame."""
        with self.lock:
            handles = [h for h in self.workers.values() if h.alive]
        for handle in handles:
            try:
                with handle.send_lock:
                    send_frame(handle.sock, {"type": "shutdown"})
            except OSError:
                pass

    # --------------------------------------------------------------- serving
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_worker, args=(conn,), name="drs-coordinator-worker", daemon=True
            )
            self._handler_threads.append(thread)
            thread.start()

    def _serve_worker(self, conn: socket.socket) -> None:
        handle: WorkerHandle | None = None
        try:
            conn.settimeout(self.heartbeat_timeout_s)
            hello = recv_frame(conn)
            if hello is None or hello.get("type") != "hello":
                conn.close()
                return
            handle = self._register(conn, hello)
            with handle.send_lock:
                send_frame(
                    conn,
                    {
                        "type": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "worker": handle.wid,
                        "experiment": self.plan.experiment,
                        "seed": self.plan.seed,
                        "policy": policy_to_wire(self.policy),
                        "heartbeat_interval_s": self.heartbeat_interval_s,
                    },
                )
            while not self._stopping:
                frame = recv_frame(conn)
                if frame is None:
                    break
                handle.last_heard = time.monotonic()
                kind = frame.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "next":
                    self._answer_next(handle)
                elif kind == "chunk_done":
                    self._absorb_chunk(handle, frame)
                elif kind == "job_error":
                    self._record_failure(frame)
                elif kind == "goodbye":
                    self._worker_gone(handle, reason="left", requeue=True)
                    return
        except (ProtocolError, OSError, socket.timeout):
            pass
        finally:
            if handle is not None and handle.alive:
                self._worker_gone(handle, reason="disconnect", requeue=True)
            try:
                conn.close()
            except OSError:
                pass

    def _register(self, conn: socket.socket, hello: dict[str, Any]) -> WorkerHandle:
        with self.lock:
            self._next_wid += 1
            handle = WorkerHandle(
                wid=self._next_wid,
                host=str(hello.get("host", "?")),
                pid=int(hello.get("pid", 0)),
                sock=conn,
            )
            self.workers[handle.wid] = handle
            self.workers_joined += 1
            active = sum(1 for w in self.workers.values() if w.alive)
        self._emit(
            "worker.join",
            pid=handle.pid,
            worker=handle.wid,
            host=handle.host,
            workers=active,
        )
        return handle

    def _answer_next(self, handle: WorkerHandle) -> None:
        with self.lock:
            if self.failure is not None or self.done.is_set():
                reply: dict[str, Any] = {"type": "shutdown"}
            elif self.pending:
                chunk = self._take_chunk(handle)
                reply = {"type": "chunk", "jobs": [job_to_wire(job) for job in chunk]}
            elif len(self.settled) >= self.total:
                reply = {"type": "shutdown"}
            else:
                # outstanding chunks elsewhere: poll again shortly — if their
                # worker dies, the requeued jobs are this worker's to steal
                reply = {"type": "idle", "wait_s": 0.05}
        with handle.send_lock:
            send_frame(handle.sock, reply)
        if reply["type"] == "chunk":
            self._sample_scheduler()

    def _take_chunk(self, handle: WorkerHandle) -> list[Job]:
        """Pop a guided-size chunk for ``handle`` (caller holds the lock)."""
        active = max(1, sum(1 for w in self.workers.values() if w.alive))
        size = max(1, math.ceil(len(self.pending) / (self.chunks_per_worker * active)))
        chunk = [self.pending.popleft() for _ in range(min(size, len(self.pending)))]
        handle.chunk = chunk
        for job in chunk:
            previous = self._previous_owner.pop(job.name, None)
            if previous is not None and previous != handle.wid:
                self.jobs_stolen += 1
                self._emit(
                    "job.stolen",
                    job=job.name,
                    pid=handle.pid,
                    worker=handle.wid,
                    from_worker=previous,
                )
            self._emit("job.submitted", job=job.name, pid=handle.pid, worker=handle.wid)
        return chunk

    def _absorb_chunk(self, handle: WorkerHandle, frame: dict[str, Any]) -> None:
        with self.lock:
            chunk = handle.chunk or []
            handle.chunk = None
            handle.jobs_done += len(chunk)
            handle.wall_s += float(frame.get("wall_s", 0.0))
            handle.cpu_s += float(frame.get("cpu_s", 0.0))
            self._absorb(handle, chunk, frame)
            for payload in frame.get("outcomes", ()):
                self.settled.add(payload["name"])
            self._check_done()
        self._sample_scheduler()

    def _record_failure(self, frame: dict[str, Any]) -> None:
        """A fail-fast worker reported a job failure: stop the whole plan."""
        with self.lock:
            if self.failure is None:
                self.failure = JobError(
                    str(frame.get("experiment", self.plan.experiment)),
                    str(frame.get("job", "?")),
                    str(frame.get("cause", "job failed on a distributed worker")),
                )
            self.done.set()

    def _worker_gone(self, handle: WorkerHandle, reason: str, requeue: bool) -> None:
        """Retire a worker; requeue (or quarantine) its outstanding chunk."""
        with self.lock:
            if not handle.alive:
                return
            handle.alive = False
            handle.reason = reason
            chunk = handle.chunk or []
            handle.chunk = None
            requeued: list[str] = []
            for job in chunk:
                if not requeue or job.name in self.settled:
                    continue
                self._requeues[job.name] = self._requeues.get(job.name, 0) + 1
                if self._requeues[job.name] > self.max_job_requeues:
                    self._poison_job(job)
                    continue
                self._previous_owner[job.name] = handle.wid
                self.pending.appendleft(job)
                requeued.append(job.name)
            active = sum(1 for w in self.workers.values() if w.alive)
            self._check_done()
        self._emit(
            "worker.leave",
            pid=handle.pid,
            worker=handle.wid,
            host=handle.host,
            reason=reason,
            jobs=handle.jobs_done,
            requeued=len(requeued),
            workers=active,
        )
        try:
            handle.sock.close()
        except OSError:
            pass

    def _poison_job(self, job: Job) -> None:
        """A job that keeps killing its workers: quarantine or fail the plan."""
        error = (
            f"workers died {self._requeues[job.name]} times while running this job "
            f"(requeue budget {self.max_job_requeues})"
        )
        if not self.policy.quarantine:
            if self.failure is None:
                self.failure = JobError(self.plan.experiment, job.name, error)
            self.done.set()
            return
        outcome = JobOutcome(name=job.name, ok=False, error=error, attempts=1)
        self._quarantined_by_death.append(outcome)
        self.settled.add(job.name)
        self._emit("job.quarantined", job=job.name, attempts=1, timed_out=False, error=error)

    def _check_done(self) -> None:
        if len(self.settled) >= self.total:
            self.done.set()

    def expire_stale_workers(self) -> None:
        """Heartbeat-deadline sweep; the executor's watchdog calls this."""
        now = time.monotonic()
        with self.lock:
            stale = [
                w
                for w in self.workers.values()
                if w.alive and now - w.last_heard > self.heartbeat_timeout_s
            ]
        for handle in stale:
            self._worker_gone(handle, reason="heartbeat-timeout", requeue=True)

    def _sample_scheduler(self) -> None:
        with self.lock:
            alive = [w for w in self.workers.values() if w.alive]
            busy = sum(1 for w in alive if w.chunk)
            fields = dict(
                queue_depth=self.total - len(self.settled),
                outstanding_chunks=busy,
                utilization=round(busy / len(alive), 4) if alive else 0.0,
                workers=len(alive),
            )
        self._emit("scheduler.gauge", **fields)

    # ------------------------------------------------------------- reporting
    def host_attribution(self) -> dict[str, dict[str, Any]]:
        """Manifest block: per-worker host, pid, jobs, wall/CPU seconds."""
        with self.lock:
            return {
                str(handle.wid): {
                    "host": handle.host,
                    "pid": handle.pid,
                    "jobs": handle.jobs_done,
                    "wall_s": round(handle.wall_s, 6),
                    "cpu_s": round(handle.cpu_s, 6),
                }
                for handle in sorted(self.workers.values(), key=lambda w: w.wid)
            }


# ---------------------------------------------------------------- executor
class DistributedExecutor:
    """Run a plan as the coordinator of a TCP worker fleet.

    ``spawn_workers`` local ``drs-worker`` subprocesses are launched against
    the bound address (the ``--jobs N`` analogue); with ``spawn_workers=0``
    the coordinator waits for external workers to join — start them anywhere
    that can reach the address with ``drs-worker --coordinator HOST:PORT``.
    Spawned workers that die with jobs still pending are replaced, up to
    ``max_worker_respawns`` total, mirroring the process-pool respawn
    budget.  Results are byte-identical to serial for any fleet history.
    """

    name = "distributed"

    def __init__(
        self,
        coordinator: str | None = None,
        spawn_workers: int = 0,
        policy: RetryPolicy | None = None,
        chunks_per_worker: int = 4,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
        max_worker_respawns: int = 3,
        max_job_requeues: int = 3,
    ) -> None:
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_interval_s")
        self.bind_host, self.bind_port = parse_address(coordinator or "127.0.0.1:0")
        self.spawn_workers = spawn_workers
        self.workers = max(spawn_workers, 1)
        self.policy = policy
        self.chunks_per_worker = chunks_per_worker
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_worker_respawns = max_worker_respawns
        self.max_job_requeues = max_job_requeues
        #: the bound address of the last run's coordinator (host, port)
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------ subprocesses
    def _spawn_worker(self, address: tuple[str, int], respawn: bool) -> subprocess.Popen:
        env = dict(os.environ)
        if respawn:
            # a replacement must not re-trigger the crash injection, or a
            # crash-looping fleet would burn the whole respawn budget on it
            env.pop(WORKER_CRASH_ENV, None)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.engine.worker",
                "--coordinator",
                f"{address[0]}:{address[1]}",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    # ------------------------------------------------------------------- run
    def run(self, plan: JobPlan, checkpoint: Checkpoint | None = None) -> PlanExecution:
        """Coordinate the plan across the worker fleet; values match serial."""
        policy = self.policy if self.policy is not None else FAIL_FAST
        registry = current_registry()
        reporter = heartbeat()
        recorder = flight_recorder()
        values, resumed = _resume_from_checkpoint(plan, checkpoint)
        _install_progress_totals(plan)
        _announce_plan(recorder, plan, self.name, self.spawn_workers, resumed)
        attempts: dict[str, int] = {}
        quarantined: list[str] = []
        timed_out: list[str] = []

        def emit(kind: str, **fields: Any) -> None:
            if recorder is not None:
                recorder.emit(kind, **fields)

        def absorb(handle: WorkerHandle, chunk: list[Job], frame: dict[str, Any]) -> None:
            """Fold one chunk result in (runs under the coordinator lock)."""
            for payload in frame.get("outcomes", ()):
                outcome = outcome_from_wire(payload)
                attempts[outcome.name] = outcome.attempts
                if outcome.ok:
                    values[outcome.name] = outcome.value
                    if checkpoint is not None:
                        checkpoint.record(plan, outcome)
                else:
                    quarantined.append(outcome.name)
                    if outcome.timed_out:
                        timed_out.append(outcome.name)
            registry.merge(registry_from_wire(frame.get("registry", [])))
            if recorder is not None:
                recorder.ingest(frame.get("flight", []))
            if reporter is not None:
                summary = frame.get("heartbeat")
                if summary:
                    reporter.absorb(summary)
                reporter.add(0, jobs=len(chunk))

        remaining = [job for job in plan.jobs if job.name not in values]
        server = Coordinator(
            plan,
            remaining,
            policy,
            host=self.bind_host,
            port=self.bind_port,
            chunks_per_worker=self.chunks_per_worker,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            max_job_requeues=self.max_job_requeues,
            absorb=absorb,
            emit=emit,
        )
        if not remaining:
            server.done.set()
        interrupted = False
        respawns = 0
        spawned: list[subprocess.Popen] = []
        hosts: dict[str, dict[str, Any]] = {}
        try:
            self.address = server.start()
            if self.spawn_workers:
                spawned = [
                    self._spawn_worker(self.address, respawn=False)
                    for _ in range(self.spawn_workers)
                ]
            elif remaining:
                print(
                    f"[distributed] waiting for workers: "
                    f"drs-worker --coordinator {self.address[0]}:{self.address[1]}",
                    file=sys.stderr,
                    flush=True,
                )
            try:
                while not server.done.wait(timeout=0.1):
                    server.expire_stale_workers()
                    respawns = self._keep_fleet_alive(server, spawned, respawns, emit)
            except KeyboardInterrupt:
                interrupted = True
                emit(
                    "plan.interrupted",
                    jobs=len(plan.jobs),
                    completed=len(values),
                    backend=self.name,
                )
        finally:
            server.broadcast_shutdown()
            server.stop()
            hosts = server.host_attribution()
            for proc in spawned:
                if proc.poll() is None:
                    proc.terminate()
            for proc in spawned:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        for outcome in server._quarantined_by_death:
            attempts[outcome.name] = outcome.attempts
            quarantined.append(outcome.name)
        observed = len(hosts)
        self.workers = max(self.spawn_workers, observed, 1)
        execution = PlanExecution(
            values=values,
            backend=self.name,
            workers=self.workers,
            job_seeds=plan.job_seeds(),
            attempts=attempts,
            quarantined=quarantined,
            timed_out=timed_out,
            resumed=resumed,
            pool_respawns=respawns,
            hosts=hosts,
            interrupted=interrupted,
        )
        if interrupted:
            raise PlanInterrupted(execution)
        if server.failure is not None:
            raise server.failure
        emit(
            "plan.end",
            jobs=len(plan.jobs),
            completed=len(values),
            quarantined=len(quarantined),
            pool_respawns=respawns,
            stolen=server.jobs_stolen,
            workers=observed,
        )
        return execution

    def _keep_fleet_alive(
        self,
        server: Coordinator,
        spawned: list[subprocess.Popen],
        respawns: int,
        emit: Callable[..., None],
    ) -> int:
        """Replace dead spawned workers while jobs remain; returns respawns."""
        if not spawned:
            return respawns
        with server.lock:
            work_left = len(server.settled) < server.total and server.failure is None
        if not work_left:
            return respawns
        for i, proc in enumerate(spawned):
            if proc.poll() is None:
                continue
            if respawns >= self.max_worker_respawns:
                with server.lock:
                    alive = sum(1 for w in server.workers.values() if w.alive)
                    if alive == 0 and all(p.poll() is not None for p in spawned):
                        server.failure = JobError(
                            server.plan.experiment,
                            "<fleet>",
                            f"all spawned workers died and the respawn budget "
                            f"({self.max_worker_respawns}) is exhausted",
                        )
                        server.done.set()
                return respawns
            respawns += 1
            spawned[i] = self._spawn_worker(self.address, respawn=True)
            emit("pool.respawn", respawns=respawns, requeued=0, backend=self.name)
        return respawns

"""Engine flight recorder: cross-worker structured lifecycle telemetry.

A ``--jobs N`` run used to be a telemetry blind spot between job submission
and :meth:`MetricsRegistry.merge`: metrics and heartbeats came back merged,
but nothing recorded *when* each job ran, *where* (which worker PID), how
many attempts it took, or what the scheduler's queue looked like while it
waited.  The flight recorder closes that gap with one append-only JSONL
stream per run — ``<out>/<name>.flight.jsonl`` — holding every engine
lifecycle event:

========================  ====================================================
kind                      emitted when
========================  ====================================================
``plan.begin/plan.end``   an executor starts/finishes a :class:`JobPlan`
``job.submitted``         the scheduler hands a job to a backend
``job.resumed``           a checkpoint satisfied the job without running it
``job.attempt``           one attempt starts (``attempt`` counts from 1)
``job.retry``             a failed attempt schedules another (with backoff)
``job.timeout``           an attempt hit its wall-clock budget
``job.completed``         a job finished OK (wall/CPU time, seed fingerprint)
``job.quarantined``       a job exhausted its retry budget
``worker.spawn``          a pool worker process ran its first chunk
``worker.exit``           the parent retired a pool worker at shutdown
``worker.join``           a distributed worker completed its handshake
``worker.leave``          a distributed worker left (goodbye, heartbeat
                          timeout, or dropped connection); counts requeues
``job.stolen``            a requeued job was picked up by a different worker
``pool.respawn``          a broken process pool (or dead spawned distributed
                          worker) was replaced mid-plan
``plan.interrupted``      Ctrl-C/SIGINT cut the plan short (partial results
                          checkpointed; the manifest says ``interrupted``)
``scheduler.gauge``       queue depth / in-flight / utilization sample
``checkpoint.write``      one job record persisted to the checkpoint stream
``checkpoint.compact``    the checkpoint file was rewritten to shed stale lines
``heartbeat``             a :class:`~repro.obs.progress.ProgressReporter` beat
``stats.cell``            a Monte Carlo (N, f) cell's precision snapshot
``run.end``               the recorder closed (carries the event tally)
========================  ====================================================

Every event carries a wall-clock timestamp ``t``, the emitting (or, for
events the parent records *about* a worker, the described) process ``pid``,
a recorder-global sequence number ``seq``, the experiment name, and — for
job events — the job name.

Transport
---------

The recorder is multiprocessing-safe by construction rather than by locks
across processes:

* In the **coordinating process** a :class:`FlightRecorder` opened with a
  path is queue-backed: ``emit`` enqueues onto a thread-safe queue and a
  daemon writer thread drains it to the JSONL sink, flushing after every
  line — so a live ``repro obs watch`` tailing the file sees events within
  one flush, and a hard kill loses at most the queued tail.  A torn final
  line (SIGKILL mid-write) is tolerated by :func:`read_flight_events`.
* **Worker processes** (which cannot share a file handle or a queue with
  the parent under ``spawn``) run a buffer-mode recorder (``path=None``):
  events collect in memory and ride back to the parent with the chunk
  result, exactly like worker metrics registries ride back for
  :meth:`MetricsRegistry.merge`.  The parent ingests them — preserving the
  worker's timestamps and PID, assigning its own global ``seq`` — so the
  sink is one totally ordered stream.  Events buffered in a worker that
  dies mid-chunk are lost with it; the parent's ``pool.respawn`` event
  records that the gap exists.

Deep engine code publishes through the module-level *current recorder*
(:func:`set_flight_recorder` / :func:`flight_recorder`), the same pattern
metrics and heartbeats use: one global lookup plus a ``None`` check when
recording is off, so un-instrumented runs pay nothing.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import weakref
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

FLIGHT_SCHEMA_VERSION = 1

#: canonical suffix of flight-recorder artifacts (``repro obs`` dispatches on it)
FLIGHT_SUFFIX = ".flight.jsonl"

#: every kind the engine emits today (readers must tolerate unknown kinds)
EVENT_KINDS = frozenset(
    {
        "plan.begin",
        "plan.end",
        "job.submitted",
        "job.resumed",
        "job.attempt",
        "job.retry",
        "job.timeout",
        "job.completed",
        "job.quarantined",
        "worker.spawn",
        "worker.exit",
        "worker.join",
        "worker.leave",
        "job.stolen",
        "pool.respawn",
        "plan.interrupted",
        "scheduler.gauge",
        "checkpoint.write",
        "checkpoint.compact",
        "heartbeat",
        "stats.cell",
        "run.end",
    }
)


def _drain_pending(
    pending: "queue.SimpleQueue[str | None]", writer: threading.Thread | None
) -> None:
    """Finalizer: let the writer thread drain what is already queued.

    Daemon threads are killed abruptly at interpreter exit, so a recorder
    that was never :meth:`FlightRecorder.close`\\ d used to silently drop
    its queued tail.  ``weakref.finalize`` runs this before threads die
    (and at garbage collection of an abandoned recorder): it hands the
    writer its stop sentinel and waits for the flush.  Takes the queue and
    thread as arguments — never the recorder — so the finalizer holds no
    reference that would keep the recorder alive.
    """
    if writer is None or not writer.is_alive():
        return
    pending.put(None)
    writer.join(timeout=5.0)


class FlightRecorder:
    """Structured event channel for one run.

    With ``path`` the recorder owns the JSONL sink (queue + writer thread);
    with ``path=None`` it is a worker-side buffer whose :meth:`drain` output
    the parent feeds to :meth:`ingest`.  Either way :meth:`emit` is the one
    write API.  Thread-safe; cheap when idle.
    """

    def __init__(
        self,
        path: str | Path | None,
        experiment: str = "",
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = None if path is None else Path(path)
        self.experiment = experiment
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self.events_written = 0
        self.by_kind: dict[str, int] = {}
        #: pid -> names of jobs that *completed* there (manifest attribution)
        self.worker_jobs: dict[int, list[str]] = {}
        self._buffer: list[dict[str, Any]] = []
        self._queue: "queue.SimpleQueue[str | None]" = queue.SimpleQueue()
        self._writer: threading.Thread | None = None
        self._finalizer: weakref.finalize | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")  # truncate: one stream per run
            self._writer = threading.Thread(
                target=self._drain_to_sink, name="flight-recorder", daemon=True
            )
            self._writer.start()
            # drain the queued tail even if close() never runs (interpreter
            # exit, abandoned recorder): see _drain_pending
            self._finalizer = weakref.finalize(self, _drain_pending, self._queue, self._writer)

    # ----------------------------------------------------------------- writing
    def emit(self, kind: str, job: str | None = None, pid: int | None = None, **fields: Any) -> dict:
        """Record one event; returns the event dict.

        ``pid`` defaults to the calling process (override it for events the
        parent records *about* a worker, e.g. ``worker.exit``).  Extra
        ``fields`` must be JSON-serializable.
        """
        event: dict[str, Any] = {
            "t": round(self._clock(), 6),
            "kind": kind,
            "pid": os.getpid() if pid is None else int(pid),
        }
        if self.experiment:
            event["experiment"] = self.experiment
        if job is not None:
            event["job"] = job
        if fields:
            event.update(fields)
        self._record(event)
        return event

    def ingest(self, events: Iterable[Mapping[str, Any]]) -> int:
        """Fold worker-buffered events into this recorder's stream.

        The events keep their source timestamps and PIDs; this recorder
        assigns fresh global sequence numbers in arrival order (so ``seq``
        is a total order over the sink even when worker clocks interleave).
        Returns the number of events ingested.
        """
        count = 0
        for event in events:
            self._record(dict(event))
            count += 1
        return count

    def _record(self, event: dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                return
            self._seq += 1
            event["seq"] = self._seq
            self.events_written += 1
            kind = event.get("kind", "?")
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            if kind == "job.completed" and "job" in event:
                self.worker_jobs.setdefault(int(event.get("pid", 0)), []).append(event["job"])
            if self.path is None:
                self._buffer.append(event)
            else:
                self._queue.put(json.dumps(event, default=str))

    # ------------------------------------------------------------ worker side
    def drain(self) -> list[dict[str, Any]]:
        """Return (and clear) buffered events — the worker→parent payload."""
        with self._lock:
            events, self._buffer = self._buffer, []
        for event in events:
            event.pop("seq", None)  # the parent assigns global sequence numbers
        return events

    # ------------------------------------------------------------- sink thread
    def _drain_to_sink(self) -> None:
        assert self.path is not None
        with self.path.open("a") as sink:
            while True:
                line = self._queue.get()
                if line is None:
                    return
                sink.write(line + "\n")
                sink.flush()

    def flush(self, timeout_s: float = 5.0) -> None:
        """Block until every event emitted so far has reached the sink."""
        if self._writer is None:
            return
        deadline = time.monotonic() + timeout_s
        while not self._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.005)

    # ------------------------------------------------------------------ summary
    def summary(self) -> dict[str, Any]:
        """Manifest-ready description of the stream (path, tallies, workers)."""
        with self._lock:
            return {
                "schema": FLIGHT_SCHEMA_VERSION,
                "path": None if self.path is None else self.path.name,
                "events": self.events_written,
                "by_kind": dict(sorted(self.by_kind.items())),
                "workers": {
                    str(pid): {"jobs": len(names), "names": sorted(names)}
                    for pid, names in sorted(self.worker_jobs.items())
                },
            }

    def close(self) -> dict[str, Any]:
        """Emit ``run.end``, stop the writer, and return :meth:`summary`."""
        if not self._closed:
            self.emit("run.end", events=self.events_written + 1, by_kind=dict(self.by_kind))
            with self._lock:
                self._closed = True
            if self._finalizer is not None:
                self._finalizer.detach()  # close() supersedes the exit drain
                self._finalizer = None
            if self._writer is not None:
                self._queue.put(None)
                self._writer.join(timeout=5.0)
                self._writer = None
        return self.summary()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------- current scope
_current: FlightRecorder | None = None


def set_flight_recorder(recorder: FlightRecorder | None) -> None:
    """Install (or clear, with ``None``) the process-wide recorder."""
    global _current
    _current = recorder


def flight_recorder() -> FlightRecorder | None:
    """The currently installed recorder, or ``None`` (the hot-path check)."""
    return _current


# -------------------------------------------------------------------- reading
def read_flight_events(path: str | Path) -> list[dict[str, Any]]:
    """Read a flight JSONL back, tolerating a torn tail.

    A process killed mid-write leaves at most one truncated final line;
    any line that does not parse as a JSON object is skipped, so readers
    (``repro obs watch``, the Perfetto exporter, manifests) always see a
    valid prefix of the stream.
    """
    events: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and "kind" in event:
            events.append(event)
    return events


def flight_summary(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Offline :meth:`FlightRecorder.summary` equivalent over raw events."""
    by_kind: dict[str, int] = {}
    workers: dict[int, list[str]] = {}
    count = 0
    for event in events:
        count += 1
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "job.completed" and "job" in event:
            workers.setdefault(int(event.get("pid", 0)), []).append(str(event["job"]))
    return {
        "schema": FLIGHT_SCHEMA_VERSION,
        "events": count,
        "by_kind": dict(sorted(by_kind.items())),
        "workers": {
            str(pid): {"jobs": len(names), "names": sorted(names)}
            for pid, names in sorted(workers.items())
        },
    }

"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

This is the measurement substrate the model components register into instead
of hand-rolling :class:`~repro.simkit.trace.Counter` objects.  A registry is
cheap (plain dicts, no locks — the simulator is single-threaded) and
exportable two ways:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition,
* :meth:`MetricsRegistry.snapshot` — plain dicts, one per metric, suitable
  for JSONL dumps and the ``repro obs`` pretty-printer.

A process-wide *current* registry lets deep model code publish without
threading a handle through every constructor; experiment drivers swap in a
fresh registry per run with :func:`use_registry` so artifacts never bleed
between experiments.  Components still accept an explicit ``metrics=``
parameter for direct use.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.simkit.trace import Counter

#: default buckets for latency-like histograms (seconds): log-ish spacing
#: from 10 µs (one hub propagation delay) to 10 s (a failed discovery round).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)

#: default buckets for small-count histograms (broadcast fan-out, retries).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


class Gauge:
    """A value that can go up and down (queue depth, events/sec)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta``."""
        self.value += delta

    def reset(self) -> None:
        """Zero the gauge."""
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    Buckets are upper bounds (``le`` in Prometheus terms); an implicit
    +inf bucket catches overflow.  Observation is O(#buckets) worst case
    with an early exit, which for the ~20 default buckets is cheap enough
    for per-probe hot paths.
    """

    def __init__(self, name: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        """Arithmetic mean of all observations (0 if empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation within buckets.

        Returns 0 for an empty histogram; observations in the +inf bucket
        report the largest finite bound (the histogram cannot do better).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            in_bucket = self.counts[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                frac = (target - cumulative) / in_bucket
                return lower + frac * (bound - lower)
            cumulative += in_bucket
            lower = bound
        return self.bounds[-1]

    def reset(self) -> None:
        """Drop all observations."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean():.6g})"


def _key(name: str, labels: dict[str, str] | None) -> tuple[str, tuple[tuple[str, str], ...]]:
    return name, tuple(sorted((labels or {}).items()))


class MetricsRegistry:
    """Get-or-create home for every metric of one run.

    Metrics are keyed by ``(name, labels)``; asking twice for the same key
    returns the same object, so independent components (every NIC, every
    daemon) share one aggregate by using one name.  Legacy
    :class:`~repro.simkit.trace.Counter` objects can be adopted with
    :meth:`attach` so existing call sites keep working unchanged.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, dict[str, Any]] = {}

    # ------------------------------------------------------------- creation
    def counter(self, name: str, labels: dict[str, str] | None = None, help: str = "") -> Counter:
        """Get or create a monotonically accumulating counter."""
        return self._get_or_create(name, labels, help, "counter", lambda: Counter(name))

    def gauge(self, name: str, labels: dict[str, str] | None = None, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, labels, help, "gauge", lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: dict[str, str] | None = None,
        help: str = "",
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get_or_create(name, labels, help, "histogram", lambda: Histogram(name, buckets))

    def attach(self, counter: Counter, name: str | None = None, help: str = "") -> Counter:
        """Adopt an existing legacy ``Counter`` under its own (or a new) name."""
        key = _key(name or counter.name, None)
        entry = self._metrics.get(key)
        if entry is None:
            self._metrics[key] = {"kind": "counter", "help": help, "obj": counter}
            return counter
        return entry["obj"]

    def _get_or_create(self, name, labels, help, kind, factory):
        key = _key(name, labels)
        entry = self._metrics.get(key)
        if entry is None:
            entry = {"kind": kind, "help": help, "obj": factory()}
            self._metrics[key] = entry
        elif entry["kind"] != kind:
            raise ValueError(f"metric {name!r} already registered as {entry['kind']}, not {kind}")
        return entry["obj"]

    # -------------------------------------------------------------- queries
    def get(self, name: str, labels: dict[str, str] | None = None) -> Any:
        """The metric object under a key, or ``None``."""
        entry = self._metrics.get(_key(name, labels))
        return entry["obj"] if entry else None

    def names(self) -> list[str]:
        """Distinct metric names, registration order preserved."""
        seen: dict[str, None] = {}
        for name, _labels in self._metrics:
            seen.setdefault(name, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[str, dict[str, str], str, Any]]:
        for (name, labels), entry in self._metrics.items():
            yield name, dict(labels), entry["kind"], entry["obj"]

    # --------------------------------------------------------------- export
    def snapshot(self) -> list[dict[str, Any]]:
        """Plain-dict state of every metric (JSONL-ready, one dict each)."""
        out: list[dict[str, Any]] = []
        for name, labels, kind, obj in self:
            row: dict[str, Any] = {"name": name, "kind": kind}
            if labels:
                row["labels"] = labels
            if kind == "counter":
                row["value"] = obj.value
                row["events"] = obj.events
            elif kind == "gauge":
                row["value"] = obj.value
            else:  # histogram
                row.update(
                    count=obj.count,
                    sum=obj.sum,
                    mean=obj.mean(),
                    min=obj.min if obj.count else None,
                    max=obj.max if obj.count else None,
                    p50=obj.quantile(0.5),
                    p99=obj.quantile(0.99),
                    buckets=[[b, c] for b, c in zip(obj.bounds, obj.counts)] + [["+inf", obj.counts[-1]]],
                )
            out.append(row)
        return out

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the snapshot as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for row in self.snapshot():
                fh.write(json.dumps(row) + "\n")
        return path

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as cumulative _bucket)."""
        lines: list[str] = []
        typed: set[str] = set()
        for name, labels, kind, obj in self:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")
            suffix = _format_labels(labels)
            if kind == "counter":
                lines.append(f"{name}{suffix} {_fmt(obj.value)}")
            elif kind == "gauge":
                lines.append(f"{name}{suffix} {_fmt(obj.value)}")
            else:
                cumulative = 0
                for bound, count in zip(obj.bounds, obj.counts):
                    cumulative += count
                    lines.append(f"{name}_bucket{_format_labels({**labels, 'le': _fmt(bound)})} {cumulative}")
                cumulative += obj.counts[-1]
                lines.append(f"{name}_bucket{_format_labels({**labels, 'le': '+Inf'})} {cumulative}")
                lines.append(f"{name}_sum{suffix} {_fmt(obj.sum)}")
                lines.append(f"{name}_count{suffix} {obj.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str | Path) -> Path:
        """Write :meth:`render_prometheus` output to a file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_prometheus())
        return path

    def reset(self) -> None:
        """Zero every metric (registrations survive)."""
        for _name, _labels, _kind, obj in self:
            obj.reset()

    # ---------------------------------------------------------------- merging
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's state into this one; returns ``self``.

        The parallel experiment executor gives each worker process a private
        registry (the simulator is single-threaded per process and registries
        are lock-free) and merges them back here.  Semantics per kind:

        * counters: values and event counts add,
        * gauges: values add (the throughput gauges are per-worker rates, so
          their sum is the aggregate rate),
        * histograms: bucket counts, count, and sum add; min/max combine
          (bucket bounds must match, else the streams are not comparable).

        ``other`` is left untouched; merging the same registry twice
        double-counts, exactly like Prometheus federation would.
        """
        for (name, labels), entry in other._metrics.items():
            kind, obj = entry["kind"], entry["obj"]
            label_dict = dict(labels) or None
            if kind == "counter":
                mine = self.counter(name, label_dict, help=entry["help"])
                mine.value += obj.value
                mine.events += obj.events
            elif kind == "gauge":
                mine = self.gauge(name, label_dict, help=entry["help"])
                mine.value += obj.value
            else:
                mine = self.histogram(name, buckets=obj.bounds, labels=label_dict, help=entry["help"])
                if mine.bounds != obj.bounds:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds differ "
                        f"({mine.bounds} vs {obj.bounds})"
                    )
                mine.counts = [a + b for a, b in zip(mine.counts, obj.counts)]
                mine.count += obj.count
                mine.sum += obj.sum
                mine.min = min(mine.min, obj.min)
                mine.max = max(mine.max, obj.max)
        return self


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


# --------------------------------------------------------------- current scope
_GLOBAL = MetricsRegistry()
_current: MetricsRegistry = _GLOBAL


def current_registry() -> MetricsRegistry:
    """The registry deep model code publishes into right now."""
    return _current


def resolve_registry(metrics: MetricsRegistry | None) -> MetricsRegistry:
    """An explicit registry if given, else the current one."""
    return metrics if metrics is not None else _current


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Make ``registry`` current within the block (experiment/scenario scope)."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous


# The histograms and gauges every snapshot must expose even when a run never
# exercises them (a pure Monte Carlo experiment sends no probes): registering
# them up front keeps artifact schemas stable and diffable across runs.
CORE_HISTOGRAMS: tuple[tuple[str, tuple[float, ...], str], ...] = (
    ("drs_probe_rtt_seconds", DEFAULT_LATENCY_BUCKETS, "round-trip time of answered DRS link probes"),
    ("drs_failover_latency_seconds", DEFAULT_LATENCY_BUCKETS, "failure detection to repair-route install"),
    ("drs_broadcast_fanout", DEFAULT_COUNT_BUCKETS, "segments each DRS broadcast actually reached"),
    ("net_queue_depth_seconds", DEFAULT_LATENCY_BUCKETS, "medium backlog seen by each transmitted frame"),
)

CORE_COUNTERS: tuple[tuple[str, str], ...] = (
    ("drs_probes_sent_total", "link probes sent by all monitors"),
    ("drs_probe_bytes_total", "request-side probe bytes on the wire"),
    ("drs_repairs_total", "successful repair-route installations"),
    ("drs_discoveries_total", "two-hop discovery rounds started"),
    ("drs_failed_repairs_total", "discovery rounds that found no route"),
    ("drs_control_bytes_total", "DRS control-plane bytes on the wire"),
    ("net_frames_sent_total", "frames handed to the medium by all NICs"),
    ("net_frames_received_total", "frames delivered to all NICs"),
    ("net_frames_dropped_total", "frames dropped by NICs and segments"),
    ("net_bits_carried_total", "bits serialized through all segments"),
    ("icmp_timeouts_total", "echo transactions that timed out"),
    ("sim_events_total", "simulator events fired"),
    ("sim_callback_seconds_total", "wall-clock seconds inside event callbacks"),
    ("sim_run_seconds_total", "wall-clock seconds inside Simulator.run"),
    ("mc_iterations_total", "Monte Carlo iterations evaluated"),
    ("mc_wall_seconds_total", "wall-clock seconds in the Monte Carlo hot path"),
    ("engine_job_attempts_total", "job attempts started by the execution engine"),
    ("engine_job_retries_total", "job attempts beyond the first (retries)"),
    ("engine_job_timeouts_total", "job attempts abandoned at the wall-clock timeout"),
    ("engine_jobs_quarantined_total", "jobs that exhausted their retry budget"),
    ("engine_pool_respawns_total", "broken process pools replaced mid-plan"),
)

CORE_GAUGES: tuple[tuple[str, str], ...] = (
    ("sim_events_per_second", "simulator throughput: events fired per wall second"),
    ("mc_iterations_per_second", "Monte Carlo throughput: iterations per wall second"),
)


def ensure_core_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Pre-register the stable core schema on ``registry`` (default: current)."""
    registry = resolve_registry(registry)
    for name, buckets, help in CORE_HISTOGRAMS:
        registry.histogram(name, buckets=buckets, help=help)
    for name, help in CORE_COUNTERS:
        registry.counter(name, help=help)
    for name, help in CORE_GAUGES:
        registry.gauge(name, help=help)
    return registry

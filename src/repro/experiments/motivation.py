"""TAB-MOTIV — the paper's field-study motivation statistic.

"We evaluated one hundred deployed systems and found that over a one-year
period, thirteen percent of the hardware failures were network related."

The statistic is recomputed from the synthetic fleet log (the original is
proprietary; DESIGN.md §3 records the substitution).
"""

from __future__ import annotations

import numpy as np

from repro.cluster import FailureLogConfig, category_breakdown, generate_failure_log, network_fraction
from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult


def run(fleet_years: int = 20, seed: int = 1999) -> ExperimentResult:
    """Generate ``fleet_years`` 100-server years and report the shares."""
    rng = np.random.default_rng(seed)
    config = FailureLogConfig(servers=100, duration_days=365.0 * fleet_years)
    events = generate_failure_log(config, rng)
    result = ExperimentResult("motivation")
    breakdown = category_breakdown(events)
    result.add_table(
        "categories",
        ["category", "share", "network-related"],
        [[c, share, c in ("nic", "hub", "cable")] for c, share in breakdown.items()],
        caption=f"Hardware failure mix over {fleet_years} fleet-years ({len(events)} events)",
    )
    fraction = network_fraction(events)
    result.add_table(
        "headline",
        ["metric", "measured", "paper"],
        [["network-related share of hardware failures", fraction, 0.13]],
        caption="Paper's motivation statistic",
    )
    # single-year variance: what one year of observation (the paper's window)
    # could plausibly report
    single_years = []
    for year in range(min(fleet_years, 10)):
        year_events = [e for e in events if 365 * year < e.time_days <= 365 * (year + 1)]
        if year_events:
            single_years.append(network_fraction(year_events))
    if single_years:
        result.note(
            f"single-year network share ranges {min(single_years):.3f}..{max(single_years):.3f} "
            f"across {len(single_years)} observation years (paper observed 0.13 in one year)"
        )
    return result


register(
    ExperimentSpec(
        name="motivation",
        run=run,
        profiles={"quick": {"fleet_years": 5}, "full": {}},
        order=50,
        description="prose 13% network-failure share",
    )
)

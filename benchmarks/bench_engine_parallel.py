"""Engine bench — serial vs process-pool wall time on the quick MC sweeps.

Not a paper artifact: times the two Monte Carlo-heavy quick-profile
experiments (``figure2``, ``availability``) on both executor backends and
asserts they agree on values.  On multi-core runners the pool should win;
on a single core it records the pool's round-trip overhead instead — either
way the committed ``BENCH_bench_engine_parallel.json`` snapshot gives perf
PRs a baseline for the executor layer itself.
"""

from repro.engine import ParallelExecutor, SerialExecutor
from repro.experiments import availability, figure2

QUICK_FIGURE2 = {"mc_iterations": 2_000}
QUICK_AVAILABILITY = {"n_values": (4, 16), "mc_iterations": 30_000}


def _run_quick_sweeps(executor):
    f2 = figure2.run(**QUICK_FIGURE2, executor=executor)
    av = availability.run(**QUICK_AVAILABILITY, executor=executor)
    return f2, av


def test_quick_sweeps_serial(benchmark):
    f2, av = benchmark.pedantic(
        lambda: _run_quick_sweeps(SerialExecutor()), rounds=1, iterations=1, warmup_rounds=0
    )
    assert f2.meta["engine"]["backend"] == "serial"
    assert av.meta["engine"]["backend"] == "serial"


def test_quick_sweeps_process_pool(benchmark):
    f2, av = benchmark.pedantic(
        lambda: _run_quick_sweeps(ParallelExecutor(workers=2)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert f2.meta["engine"]["backend"] == "process-pool"
    assert f2.meta["engine"]["workers"] == 2
    # backend must change wall time only, never values
    serial_f2, serial_av = _run_quick_sweeps(SerialExecutor())
    for key, curves in serial_f2.series["montecarlo"].curves.items():
        pooled = f2.series["montecarlo"].curves[key]
        assert curves[1].tolist() == pooled[1].tolist(), key
    assert serial_av.tables["weighted"].rows == av.tables["weighted"].rows

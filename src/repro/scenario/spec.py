"""Scenario specification: parsing and validation."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


class ScenarioError(ValueError):
    """A scenario spec is malformed; the message says which field and why."""


VALID_PROTOCOLS = ("drs", "reactive", "distvector", "linkstate", "static")
VALID_WORKLOADS = ("stream", "voicemail", "mpi", "none")


@dataclass(frozen=True)
class FaultStep:
    """One scripted fault action."""

    at: float
    action: str  # "fail" | "repair"
    component: str


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated scenario."""

    name: str
    nodes: int
    duration_s: float
    protocol_kind: str
    protocol_options: dict[str, Any] = field(default_factory=dict)
    workload_kind: str = "none"
    workload_options: dict[str, Any] = field(default_factory=dict)
    faults: tuple[FaultStep, ...] = ()
    bandwidth_bps: float = 100e6
    loss_rate: float = 0.0
    seed: int = 0
    fabric: str = "hub"  #: "hub" (the paper's shared medium) or "switch"

    @staticmethod
    def from_dict(raw: dict[str, Any]) -> "ScenarioSpec":
        """Validate a plain dict into a spec, with precise error messages."""
        if not isinstance(raw, dict):
            raise ScenarioError(f"scenario must be an object, got {type(raw).__name__}")

        def need(key: str, kind: type, default=None):
            if key not in raw:
                if default is not None:
                    return default
                raise ScenarioError(f"missing required field {key!r}")
            value = raw[key]
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind):
                raise ScenarioError(f"field {key!r} must be {kind.__name__}, got {type(value).__name__}")
            return value

        name = need("name", str)
        nodes = need("nodes", int)
        if nodes < 2:
            raise ScenarioError(f"nodes must be >= 2, got {nodes}")
        duration = need("duration_s", float)
        if duration <= 0:
            raise ScenarioError(f"duration_s must be positive, got {duration}")

        protocol = raw.get("protocol", {"kind": "static"})
        if not isinstance(protocol, dict) or "kind" not in protocol:
            raise ScenarioError("protocol must be an object with a 'kind' field")
        protocol_kind = protocol["kind"]
        if protocol_kind not in VALID_PROTOCOLS:
            raise ScenarioError(f"protocol.kind must be one of {VALID_PROTOCOLS}, got {protocol_kind!r}")
        protocol_options = {k: v for k, v in protocol.items() if k != "kind"}

        workload = raw.get("workload", {"kind": "none"})
        if not isinstance(workload, dict) or "kind" not in workload:
            raise ScenarioError("workload must be an object with a 'kind' field")
        workload_kind = workload["kind"]
        if workload_kind not in VALID_WORKLOADS:
            raise ScenarioError(f"workload.kind must be one of {VALID_WORKLOADS}, got {workload_kind!r}")
        workload_options = {k: v for k, v in workload.items() if k != "kind"}

        steps: list[FaultStep] = []
        for index, entry in enumerate(raw.get("faults", [])):
            if not isinstance(entry, dict) or "at" not in entry:
                raise ScenarioError(f"faults[{index}] must be an object with an 'at' time")
            at = float(entry["at"])
            if at < 0 or at > duration:
                raise ScenarioError(f"faults[{index}].at={at} outside [0, duration_s]")
            actions = [key for key in ("fail", "repair") if key in entry]
            if len(actions) != 1:
                raise ScenarioError(f"faults[{index}] needs exactly one of 'fail' or 'repair'")
            action = actions[0]
            steps.append(FaultStep(at=at, action=action, component=str(entry[action])))

        loss_rate = float(raw.get("loss_rate", 0.0))
        if not 0.0 <= loss_rate < 1.0:
            raise ScenarioError(f"loss_rate must be in [0, 1), got {loss_rate}")

        fabric = raw.get("fabric", "hub")
        if fabric not in ("hub", "switch"):
            raise ScenarioError(f"fabric must be 'hub' or 'switch', got {fabric!r}")

        return ScenarioSpec(
            fabric=fabric,
            name=name,
            nodes=nodes,
            duration_s=duration,
            protocol_kind=protocol_kind,
            protocol_options=protocol_options,
            workload_kind=workload_kind,
            workload_options=workload_options,
            faults=tuple(sorted(steps, key=lambda s: s.at)),
            bandwidth_bps=float(raw.get("bandwidth_bps", 100e6)),
            loss_rate=loss_rate,
            seed=int(raw.get("seed", 0)),
        )


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate a scenario JSON file."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    return ScenarioSpec.from_dict(raw)

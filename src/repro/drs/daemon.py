"""The DRS daemon: monitor + failover + periodic path validation.

"The DRS demon loops through a cycle of monitoring communication links,
answering requests, and fixing problems as they occur, for the life of the
server cluster."  Request answering is event-driven (ICMP echo responder and
the UDP control handler registered by the failover engine); this class wires
the pieces together per node and runs the periodic loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drs.config import DrsConfig
from repro.drs.failover import FailoverEngine
from repro.drs.monitor import LinkMonitor
from repro.drs.state import PeerTable
from repro.netsim.topology import Cluster
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import Span, span_log
from repro.protocols.stack import HostStack
from repro.simkit import Process, Simulator, TraceRecorder


class DrsDaemon:
    """One node's DRS instance."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        peers: list[int],
        config: DrsConfig,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.config = config
        self.table = PeerTable(owner=stack.node.node_id, peers=peers, networks=stack.node.networks)
        self.monitor = LinkMonitor(sim, stack.icmp, self.table, config, metrics=metrics, trace=trace)
        self.failover = FailoverEngine(sim, stack, self.table, config, trace=trace, metrics=metrics)
        # Triggered updates (notify_peers): notifications prompt an immediate
        # out-of-band recheck of the announced link.
        self.failover.recheck_link = lambda peer, net: self.monitor.immediate_recheck(peer, net, lambda up: None)
        self._path_check_proc: Process | None = None
        self._spans = span_log(trace) if trace is not None else None
        self._life_span: Span | None = None

    @property
    def node_id(self) -> int:
        """The node this daemon runs on."""
        return self.stack.node.node_id

    def start(self) -> None:
        """Start the monitor loop and the periodic path checker."""
        self.monitor.start()
        if self._path_check_proc is None or self._path_check_proc.finished:
            self._path_check_proc = Process(self.sim, self._path_check_loop(), name=f"drs{self.node_id}.pathcheck")
        if self._spans is not None and self._spans.wants() and self._life_span is None:
            self._life_span = self._spans.begin(f"daemon node{self.node_id}", "daemon", node=self.node_id)

    def stop(self) -> None:
        """Stop periodic activity (control-plane handlers stay registered)."""
        self.monitor.stop()
        if self._path_check_proc is not None:
            self._path_check_proc.kill()
            self._path_check_proc = None
        if self._life_span is not None and self._spans is not None:
            self._spans.end(self._life_span)
            self._life_span = None

    @property
    def running(self) -> bool:
        """True while the monitor loop is active."""
        return self.monitor.running

    def _path_check_loop(self):
        while True:
            yield self.config.path_check_period_s
            self.failover.check_repaired_paths()

    # ------------------------------------------------------------ diagnostics
    def probe_overhead_bytes(self) -> float:
        """Request-side probe bytes this daemon has put on the wire."""
        return self.monitor.probe_bytes.value

    def repairs_made(self) -> int:
        """Total successful repair installations (direct swaps + two-hop)."""
        return int(self.failover.repairs.value)


@dataclass
class DrsDeployment:
    """All daemons of one cluster plus the shared configuration."""

    config: DrsConfig
    daemons: dict[int, DrsDaemon]

    def start(self) -> None:
        """Start every daemon."""
        for daemon in self.daemons.values():
            daemon.start()

    def stop(self) -> None:
        """Stop every daemon."""
        for daemon in self.daemons.values():
            daemon.stop()

    def total_probe_bytes(self) -> float:
        """Cluster-wide request-side probe bytes."""
        return sum(d.probe_overhead_bytes() for d in self.daemons.values())

    def total_repairs(self) -> int:
        """Cluster-wide successful repairs."""
        return sum(d.repairs_made() for d in self.daemons.values())


def install_drs(
    cluster: Cluster,
    stacks: dict[int, HostStack],
    config: DrsConfig | None = None,
    start: bool = True,
    metrics: MetricsRegistry | None = None,
) -> DrsDeployment:
    """Install (and by default start) a DRS daemon on every cluster node.

    Every daemon monitors every other node on both networks — the full-mesh
    check schedule the paper's deployment used within a cluster.  All daemons
    publish into one shared ``metrics`` registry (default: the current one).
    """
    if config is None:
        config = DrsConfig()
    registry = resolve_registry(metrics)
    node_ids = [node.node_id for node in cluster.nodes]
    daemons = {
        node_id: DrsDaemon(
            cluster.sim, stacks[node_id], peers=node_ids, config=config, trace=cluster.trace, metrics=registry
        )
        for node_id in node_ids
    }
    deployment = DrsDeployment(config=config, daemons=daemons)
    if start:
        deployment.start()
    return deployment

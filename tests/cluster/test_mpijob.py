"""Tests for the BSP ring job."""

import pytest

from repro.cluster import MpiJobConfig, MpiRingJob, install_messaging
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def _rig(n=5, **cfg):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    job = MpiRingJob(sim, comm, MpiJobConfig(**{"iterations": 20, "compute_time_s": 0.01, **cfg}))
    return sim, cluster, stacks, job


def test_config_validation():
    with pytest.raises(ValueError):
        MpiJobConfig(iterations=0)
    with pytest.raises(ValueError):
        MpiJobConfig(compute_time_s=-1)
    with pytest.raises(ValueError):
        MpiJobConfig(halo_bytes=-1)


def test_needs_three_ranks():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 2)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    with pytest.raises(ValueError):
        MpiRingJob(sim, comm, MpiJobConfig())


def test_job_completes_all_iterations():
    sim, cluster, stacks, job = _rig()
    job.start()
    sim.run(until=60.0)
    assert job.done
    assert job.stats.completed_iterations == 20
    assert job.stats.mean_iteration_s() > 0.01  # compute + comm


def test_iteration_time_dominated_by_compute_when_healthy():
    sim, cluster, stacks, job = _rig(compute_time_s=0.05)
    job.start()
    sim.run(until=60.0)
    assert job.done
    # communication adds little on an idle 100 Mb/s segment
    assert job.stats.median_iteration_s() < 0.05 * 1.5


def test_failure_inflates_exactly_the_overlapping_iterations():
    from repro.drs import install_drs
    from tests.drs.conftest import FAST

    sim, cluster, stacks, job = _rig(n=5, iterations=40, compute_time_s=0.02)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)  # DRS warmup before the job starts
    job.start()
    sim.schedule(0.4, lambda: cluster.faults.fail("nic2.0"))  # mid-job
    sim.run(until=120.0)
    assert job.done
    times = job.stats.iteration_times
    # at least one iteration carries the outage, but the median stays normal
    assert job.stats.max_iteration_s() > 3 * job.stats.median_iteration_s()
    slow = [t for t in times if t > 3 * job.stats.median_iteration_s()]
    assert 1 <= len(slow) <= 5  # DRS confines the damage to a few iterations


def test_job_stalls_forever_without_routing_repair():
    sim, cluster, stacks, job = _rig(n=5, iterations=40, compute_time_s=0.02)
    job.start()
    sim.schedule(0.5, lambda: cluster.faults.fail("hub0"))
    sim.run(until=120.0)
    assert not job.done  # static routes: the barrier never clears

"""The builder catalog and the ``--topology`` spec-string grammar."""

import pytest

from repro.analysis import require_baseline_connectivity
from repro.topology import (
    TOPOLOGY_FAMILIES,
    build_topology,
    dual_hub_cluster,
    fat_tree_three_level,
    fat_tree_two_level,
    k_hub_cluster,
    multi_cluster_wan,
    parse_topology_spec,
    topology_catalog,
)


class TestCatalog:
    def test_catalog_lists_every_family(self):
        assert topology_catalog() == [
            "dual-hub", "khub", "fattree2", "fattree3", "multicluster",
        ]
        assert set(TOPOLOGY_FAMILIES) == set(topology_catalog())

    def test_every_family_builds_and_survives_zero_failures(self):
        for family in topology_catalog():
            topology = build_topology(family)
            require_baseline_connectivity(topology)
            assert topology.family == family
            assert topology.width >= 1


class TestSpecGrammar:
    def test_bare_family_uses_builder_defaults(self):
        family, params = parse_topology_spec("khub")
        assert (family, params) == ("khub", {})

    def test_parameters_parse_as_ints(self):
        family, params = parse_topology_spec("fattree2:leaves=6,spines=3,size=12")
        assert family == "fattree2"
        assert params == {"leaves": 6, "spines": 3, "size": 12}

    def test_unknown_family_names_the_catalog(self):
        with pytest.raises(ValueError, match="dual-hub, khub, fattree2"):
            parse_topology_spec("torus")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown topology parameter 'wings'"):
            parse_topology_spec("khub:wings=3")

    def test_malformed_and_non_integer_parameters_rejected(self):
        with pytest.raises(ValueError, match="malformed topology parameter"):
            parse_topology_spec("khub:hubs")
        with pytest.raises(ValueError, match="needs an integer"):
            parse_topology_spec("khub:hubs=many")

    def test_size_argument_overrides_spec_size(self):
        assert build_topology("dual-hub:size=4", size=9).meta["n"] == 9
        assert build_topology("dual-hub:size=4").meta["n"] == 4

    def test_parameter_family_mismatch_becomes_a_value_error(self):
        # 'spines' is a real parameter, just not one dual-hub accepts
        with pytest.raises(ValueError, match="topology spec 'dual-hub:spines=4'"):
            build_topology("dual-hub:spines=4")


class TestFamilyShapes:
    def test_dual_hub_matches_the_paper_universe(self):
        topology = dual_hub_cluster(8)
        assert topology.width == 18  # 2N + 2
        assert topology.roles[0] == topology.roles[1] == "hub"
        assert topology.role_counts() == {"hub": 2, "nic": 16}
        assert len(topology.terminals) == 8
        # NIC of node i on network j sits at 2 + 2i + j, wired to hub j
        adjacency = topology.adjacency_sets()
        for i in range(8):
            for j in range(2):
                assert j in adjacency[2 + 2 * i + j]

    def test_khub_with_two_hubs_reproduces_the_dual_hub_graph(self):
        k = k_hub_cluster(5, hubs=2)
        d = dual_hub_cluster(5)
        assert k.roles == d.roles
        assert k.failure_sites == d.failure_sites
        assert sorted(map(sorted, k.edges)) == sorted(map(sorted, d.edges))

    def test_khub_nic_bounds(self):
        assert k_hub_cluster(4, hubs=4, nics=2).role_counts() == {"hub": 4, "nic": 8}
        with pytest.raises(ValueError, match="nics per node"):
            k_hub_cluster(4, hubs=2, nics=3)

    def test_fattree2_default_pair_crosses_leaves(self):
        topology = fat_tree_two_level(8, leaves=4, spines=2)
        assert topology.width == 8 + 4 + 2
        # hosts 0 and 1 round-robin onto different leaves
        adjacency = topology.adjacency_sets()
        leaf_of = lambda h: next(v for v in adjacency[h] if topology.roles[v] == "leaf")
        assert leaf_of(0) != leaf_of(1)

    def test_fattree3_default_pair_crosses_pods(self):
        topology = fat_tree_three_level(8, pods=2, leaves_per_pod=2)
        a = topology.terminals[topology.predicate.a]
        b = topology.terminals[topology.predicate.b]
        assert a != b
        # severing every core must disconnect the cross-pod pair
        cores = [i for i, site in enumerate(topology.failure_sites)
                 if topology.roles[site] == "core"]
        assert not topology.connected(cores)

    def test_multicluster_pair_depends_on_the_wan_ring(self):
        topology = multi_cluster_wan(2, clusters=3)
        wan = [i for i, site in enumerate(topology.failure_sites)
               if topology.roles[site] == "wan"]
        assert len(wan) == 3
        # cluster 2 is pure transit: the ring routes around its router...
        assert topology.connected(wan[2:])
        # ...but an endpoint cluster's router is its only exit
        assert not topology.connected(wan[:1])

    def test_builders_reject_degenerate_sizes(self):
        with pytest.raises(ValueError, match="size >= 2"):
            dual_hub_cluster(1)
        with pytest.raises(ValueError, match="size >= 2"):
            k_hub_cluster(0)
        with pytest.raises(ValueError, match="size >= 2"):
            fat_tree_two_level(1)
        with pytest.raises(ValueError, match="pods >= 2"):
            fat_tree_three_level(4, pods=1)
        with pytest.raises(ValueError, match="clusters >= 2"):
            multi_cluster_wan(2, clusters=1)

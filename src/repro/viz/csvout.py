"""CSV emission for figure series and tables."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Sequence


def write_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> Path:
    """Write headers+rows to ``path``, creating parent directories.

    Returns the resolved path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(f"row width {len(row)} != header width {len(headers)}")
            writer.writerow(list(row))
    return path

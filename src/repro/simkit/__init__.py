"""Discrete-event simulation kernel.

``simkit`` is a small, deterministic discrete-event simulation (DES) core in
the style of SimPy, purpose-built for the DRS reproduction:

* :class:`~repro.simkit.simulator.Simulator` — the event loop: a priority
  queue of timestamped callbacks with stable FIFO tie-breaking, so two runs
  with the same seed produce byte-identical traces.
* :class:`~repro.simkit.process.Process` — generator-based cooperative
  processes that ``yield`` delays or :class:`~repro.simkit.process.Signal`
  objects (used for protocol daemons such as the DRS monitor loop).
* :class:`~repro.simkit.rng.RngRegistry` — named, independent random streams
  split from one root :class:`numpy.random.SeedSequence` so adding a new
  consumer never perturbs existing ones.
* :mod:`~repro.simkit.trace` — counters, time-weighted averages and event
  traces used by the measurement harness.

The kernel is intentionally pure Python: per the project's HPC guidelines the
event loop is not the hot path (the vectorized Monte Carlo estimator in
:mod:`repro.analysis` is), so clarity and determinism win here.
"""

from repro.simkit.errors import SimulationError, ScheduleInPastError, StoppedSimulation
from repro.simkit.events import Event, EventQueue
from repro.simkit.simulator import SimProfile, Simulator, set_auto_profile
from repro.simkit.process import Process, Signal, Timeout
from repro.simkit.rng import RngRegistry, seed_fingerprint, spawn_seedseq, spawned_rng
from repro.simkit.trace import Counter, TimeWeightedValue, TraceRecorder, TraceEntry

__all__ = [
    "Simulator",
    "SimProfile",
    "set_auto_profile",
    "Event",
    "EventQueue",
    "Process",
    "Signal",
    "Timeout",
    "RngRegistry",
    "spawn_seedseq",
    "spawned_rng",
    "seed_fingerprint",
    "Counter",
    "TimeWeightedValue",
    "TraceRecorder",
    "TraceEntry",
    "SimulationError",
    "ScheduleInPastError",
    "StoppedSimulation",
]

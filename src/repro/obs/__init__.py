"""Observability layer: metrics registry, run artifacts, and profiling.

``repro.obs`` is the measurement substrate the rest of the stack publishes
into:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with named counters,
  gauges, and fixed-bucket histograms; Prometheus-text and JSONL export;
  a swappable *current* registry for per-run scoping.
* :mod:`repro.obs.artifacts` — :class:`RunManifest` (seed, config hash,
  wall time, event count, package version) plus metrics-snapshot and
  trace-JSONL writers, emitted next to every experiment/scenario result.
* :mod:`repro.obs.profiler` — simulator event-loop accounting and Monte
  Carlo throughput publication.
* :mod:`repro.obs.spans` — causal spans over the trace recorder: incident
  roots from the fault injector, failover/discovery/probe children from the
  daemons, Chrome trace-event export for Perfetto.
* :mod:`repro.obs.postmortem` — per-incident detection→repair critical
  paths scored against the TCP-retransmit deadline budget.
* :mod:`repro.obs.progress` — heartbeat reporter for long sweeps
  (trials/sec, ETA, incident counts on stderr + run manifests).
* :mod:`repro.obs.bench` — ``BENCH_*.json`` snapshot writer for the
  pytest-benchmark suite.
* :mod:`repro.obs.benchtrack` — CI-width-aware diffing of committed
  ``BENCH_*.json`` snapshots (the ``bench-diff`` perf gate).
* :mod:`repro.obs.flightrecorder` — the engine flight recorder: a
  multiprocessing-safe structured event channel streaming every job,
  worker, checkpoint, and heartbeat lifecycle event to a crash-tolerant
  JSONL sink.
* :mod:`repro.obs.watch` — live ANSI dashboard (``repro obs watch``)
  folding a flight stream into per-worker run state.
* :mod:`repro.obs.precision` — statistical observability: per-cell Wilson
  CI records (``stats.cell`` flight events), adaptive-stopping bookkeeping,
  and the ``repro obs precision`` sweep-quality report.
* :mod:`repro.obs.cli` — the ``repro obs`` pretty-printer plus the
  ``export-trace``, ``postmortem``, ``watch``, ``bench-diff``, and
  ``precision`` verbs.
* :mod:`repro.obs.compat` — deprecation shims for the legacy primitives.
"""

from repro.obs.artifacts import (
    RunManifest,
    load_manifest,
    spec_hash,
    write_metrics_files,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    ensure_core_metrics,
    resolve_registry,
    use_registry,
)
from repro.obs.bench import load_bench_snapshot, write_bench_snapshots
from repro.obs.benchtrack import (
    BenchDelta,
    bench_diff_report,
    diff_snapshots,
    render_bench_diff,
)
from repro.obs.flightrecorder import (
    FLIGHT_SUFFIX,
    FlightRecorder,
    flight_recorder,
    flight_summary,
    read_flight_events,
    set_flight_recorder,
)
from repro.obs.postmortem import (
    IncidentReport,
    build_postmortems,
    render_postmortems,
    summarize_postmortems,
)
from repro.obs.profiler import (
    install_profiling,
    publish_mc_throughput,
    publish_profile,
    uninstall_profiling,
)
from repro.obs.precision import (
    STATS_CELL_KIND,
    CellPrecision,
    cells_from_manifest,
    fold_cells,
    precision_report,
    publish_cell_precision,
    render_precision_report,
)
from repro.obs.progress import ProgressReporter, heartbeat, set_heartbeat
from repro.obs.watch import WatchState, render_watch
from repro.obs.watch import follow as follow_flight
from repro.obs.spans import (
    SPAN_CATEGORY,
    Span,
    SpanLog,
    flight_to_chrome_trace,
    span_log,
    spans_from_entries,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_flight_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "current_registry",
    "resolve_registry",
    "use_registry",
    "ensure_core_metrics",
    "RunManifest",
    "load_manifest",
    "spec_hash",
    "write_metrics_files",
    "write_trace_jsonl",
    "install_profiling",
    "uninstall_profiling",
    "publish_profile",
    "publish_mc_throughput",
    "SPAN_CATEGORY",
    "Span",
    "SpanLog",
    "span_log",
    "spans_from_entries",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flight_to_chrome_trace",
    "write_flight_chrome_trace",
    "IncidentReport",
    "build_postmortems",
    "render_postmortems",
    "summarize_postmortems",
    "ProgressReporter",
    "set_heartbeat",
    "heartbeat",
    "write_bench_snapshots",
    "load_bench_snapshot",
    "BenchDelta",
    "diff_snapshots",
    "render_bench_diff",
    "bench_diff_report",
    "FlightRecorder",
    "FLIGHT_SUFFIX",
    "flight_recorder",
    "set_flight_recorder",
    "read_flight_events",
    "flight_summary",
    "WatchState",
    "render_watch",
    "follow_flight",
    "STATS_CELL_KIND",
    "CellPrecision",
    "publish_cell_precision",
    "fold_cells",
    "cells_from_manifest",
    "precision_report",
    "render_precision_report",
]

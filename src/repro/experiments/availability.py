"""EXP-AVAIL — downtime budgets: what proactive repair is worth per year.

Turns the paper's models into the number an operator signs an SLA against:
expected downtime minutes per server-pair per year, combining

* the structural layer (Equation 1 mixed over iid component states), and
* the transient layer (each path-affecting failure event costs one routing
  repair latency of outage),

for DRS-like (~1 s) versus reactive-like (~9 s) repair, across cluster
sizes, plus the field-calibrated weighted-failure correction.

The downtime table is closed-form; the weighted-failure correction is Monte
Carlo and decomposes into one engine job per (N, f) point with an
independently spawned stream.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import (
    hub_nic_weight_ratio,
    pair_availability,
    simulate_weighted_success,
    success_probability,
)
from repro.engine import ExperimentSpec, Job, JobPlan, register, run_plan
from repro.experiments.base import ExperimentResult

#: (N, f) grid of the field-calibrated weighted-failure spot checks.
WEIGHTED_POINTS: tuple[tuple[int, int], ...] = tuple((n, f) for n in (8, 16, 32) for f in (2, 3))


def _weighted_point(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> float:
    """Engine job: hub-weighted Monte Carlo P[Success] at one (N, f) point."""
    rng = np.random.default_rng(seed_seq)
    return simulate_weighted_success(
        params["n"], params["f"], params["iterations"], rng, hub_weight=params["hub_weight"]
    )


def build_plan(
    n_values: tuple[int, ...] = (4, 8, 12, 24, 48),
    mtbf_hours: float = 8_760.0,   # one failure per component-year
    mttr_hours: float = 24.0,
    drs_repair_s: float = 1.1,
    reactive_repair_s: float = 9.0,
    mc_iterations: int = 150_000,
    seed: int = 5,
) -> JobPlan:
    """One job per weighted-failure (N, f) spot check; the rest reduces."""
    jobs = [
        Job(
            name=f"weighted/n={n}/f={f}",
            fn=_weighted_point,
            params={
                "n": n,
                "f": f,
                "iterations": mc_iterations,
                "hub_weight": hub_nic_weight_ratio(n),
            },
        )
        for n, f in WEIGHTED_POINTS
    ]

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("availability")
        result.meta = {
            "seed": seed,
            "n_values": list(n_values),
            "mtbf_hours": mtbf_hours,
            "mttr_hours": mttr_hours,
            "mc_iterations": mc_iterations,
        }
        rows = []
        # Static routing never reroutes: the pair is down whenever any of the 3
        # active-path components (two NICs + the hub) is down -> full MTTRs.
        rho = mttr_hours / (mtbf_hours + mttr_hours)
        static_downtime = (1.0 - (1.0 - rho) ** 3) * 365.25 * 24 * 60
        for n in n_values:
            drs = pair_availability(n, mtbf_hours, mttr_hours, drs_repair_s)
            reactive = pair_availability(n, mtbf_hours, mttr_hours, reactive_repair_s)
            rows.append(
                [
                    n,
                    static_downtime,
                    reactive.downtime_minutes_per_year,
                    drs.downtime_minutes_per_year,
                    reactive.downtime_minutes_per_year - drs.downtime_minutes_per_year,
                    drs.nines,
                ]
            )
        result.add_table(
            "downtime",
            [
                "N",
                "static downtime (min/yr)",
                "reactive downtime (min/yr)",
                "DRS downtime (min/yr)",
                "saved by proactive (min/yr)",
                "nines (DRS)",
            ],
            rows,
            caption=f"Pair downtime budget (MTBF {mtbf_hours:.0f} h, MTTR {mttr_hours:.0f} h per component)",
        )
        result.note(
            "any rerouting (even reactive) removes the O(MTTR) outages static "
            "routing eats; proactive detection then trims the per-event transient "
            f"({reactive_repair_s:.0f}s -> {drs_repair_s:.1f}s per failure event)"
        )

        # field-calibrated weighted failures: hubs fail disproportionately often
        weighted_rows = []
        for n, f in WEIGHTED_POINTS:
            uniform = success_probability(n, f)
            ratio = hub_nic_weight_ratio(n)
            # quarantined points are absent: NaN keeps the table shape intact
            weighted = values.get(f"weighted/n={n}/f={f}", float("nan"))
            weighted_rows.append([n, f, ratio, uniform, weighted, weighted - uniform])
        result.add_table(
            "weighted",
            ["N", "f", "hub/NIC weight", "uniform P[S] (Eq. 1)", "field-weighted P[S]", "difference"],
            weighted_rows,
            caption="Equation 1 vs field-calibrated failure weights (hub-heavy)",
        )
        result.note(
            "hub-weighted draws lower survivability versus the paper's uniform "
            "assumption: the two shared hubs are exactly the components whose "
            "joint failure has no DRS answer"
        )
        return result

    return JobPlan(experiment="availability", seed=seed, jobs=jobs, reduce=reduce)


def run(
    n_values: tuple[int, ...] = (4, 8, 12, 24, 48),
    mtbf_hours: float = 8_760.0,
    mttr_hours: float = 24.0,
    drs_repair_s: float = 1.1,
    reactive_repair_s: float = 9.0,
    mc_iterations: int = 150_000,
    seed: int = 5,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Downtime table per cluster size and repair regime."""
    plan = build_plan(
        n_values=n_values,
        mtbf_hours=mtbf_hours,
        mttr_hours=mttr_hours,
        drs_repair_s=drs_repair_s,
        reactive_repair_s=reactive_repair_s,
        mc_iterations=mc_iterations,
        seed=seed,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="availability",
        run=run,
        profiles={"quick": {"n_values": (4, 16), "mc_iterations": 30_000}, "full": {}},
        parallel=True,
        order=110,
        description="downtime minutes/year planning + field-weighted correction",
    )
)

"""Addressing: node identifiers and per-network interface addresses.

The cluster address plan mirrors the deployed DRS configuration: every server
``i`` owns one interface on each of the two backplanes, addressed as
``(node=i, network=j)`` — the simulation analogue of having one IP per NIC on
two disjoint subnets.
"""

from __future__ import annotations

from dataclasses import dataclass

NodeId = int
NetworkId = int

#: Destination node id meaning "all nodes on this network" (limited broadcast).
BROADCAST_NODE: NodeId = -1


@dataclass(frozen=True, slots=True)
class InterfaceAddr:
    """Layer-2/3 address of one NIC: which node, on which backplane."""

    node: NodeId
    network: NetworkId

    def is_broadcast(self) -> bool:
        """True for the per-network broadcast address."""
        return self.node == BROADCAST_NODE

    def __str__(self) -> str:
        host = "*" if self.is_broadcast() else str(self.node)
        return f"net{self.network}.{host}"


def broadcast_addr(network: NetworkId) -> InterfaceAddr:
    """The broadcast address on backplane ``network``."""
    return InterfaceAddr(node=BROADCAST_NODE, network=network)

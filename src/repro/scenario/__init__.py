"""Declarative scenario runner: describe a run, get a report.

A *scenario* is a plain dict (typically loaded from JSON) naming a
topology, a routing protocol, a workload, a failure script, and a duration;
:func:`run_scenario` builds the whole stack, drives it, and returns a
:class:`ScenarioReport` with routing, transport, and workload metrics.

This is the operator-facing front door of the library: the `drs-sim` CLI
wraps it, and the shipped scenario files under ``examples/scenarios/``
reproduce the paper's qualitative claims without writing Python.

Example spec::

    {
      "name": "nic-failure-under-drs",
      "nodes": 8,
      "protocol": {"kind": "drs", "sweep_period_s": 0.5},
      "workload": {"kind": "stream", "src": 0, "dst": 1,
                    "interval_s": 0.1, "message_bytes": 256},
      "faults": [{"at": 10.0, "fail": "nic1.0"},
                  {"at": 25.0, "repair": "nic1.0"}],
      "duration_s": 40.0
    }
"""

from repro.scenario.spec import ScenarioError, ScenarioSpec, load_scenario
from repro.scenario.run import ScenarioReport, run_scenario
from repro.scenario.cli import main

__all__ = [
    "ScenarioSpec",
    "ScenarioError",
    "load_scenario",
    "run_scenario",
    "ScenarioReport",
    "main",
]

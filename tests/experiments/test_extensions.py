"""Tests for the extension experiments: gray failure, all-pairs, availability."""

import math

from repro.experiments import availability, grayfailure, wholecluster


def test_grayfailure_tradeoff_shape():
    result = grayfailure.run(loss_rates=(0.0, 0.05), retry_values=(1, 2), sim_seconds=30.0)
    fp = {(row[0], row[1]): row[2] for row in result.tables["false_positives"].rows}
    # no loss -> no false positives at any threshold
    assert fp[(0.0, 1)] == 0 and fp[(0.0, 2)] == 0
    # under loss, a higher threshold suppresses false positives
    assert fp[(0.05, 2)] < fp[(0.05, 1)]
    lat = {row[0]: row[1] for row in result.tables["detection_latency"].rows}
    # patience costs detection latency on clean networks
    assert lat[1] < lat[2]


def test_wholecluster_orderings():
    result = wholecluster.run(f_values=(3,), n_max=30, iid_n_values=(4, 32), mc_iterations=5_000)
    curves = result.series["conditional"].curves
    ns, pair_ps = curves["pair f=3"]
    _, all_ps = curves["all f=3"]
    assert (all_ps <= pair_ps + 1e-12).all()
    iid = {(row[0], row[1]): (row[2], row[3]) for row in result.tables["iid_regime"].rows}
    rho = result.tables["iid_regime"].rows[0][0]
    pair_small, all_small = iid[(rho, 4)]
    pair_large, all_large = iid[(rho, 32)]
    assert pair_large >= pair_small - 1e-9   # pairwise improves with N
    assert all_large < all_small             # whole-cluster decays with N
    # closed form vs MC agreement
    for row in result.tables["mc_check"].rows:
        assert row[4] < 0.02


def test_scenariosuite_runs_all_shipped(tmp_path):
    from repro.experiments import scenariosuite

    result = scenariosuite.run()
    rows = result.tables["suite"].rows
    assert len(rows) >= 4
    names = [row[0] for row in rows]
    assert "nic-failure-drs" in names
    for row in rows:
        assert "HUNG" not in row[-1]


def test_scenariosuite_missing_dir_raises(tmp_path):
    import pytest as _pytest

    from repro.experiments import scenariosuite

    with _pytest.raises(FileNotFoundError):
        scenariosuite.run(tmp_path)


def test_availability_orderings():
    result = availability.run(n_values=(4, 24), mc_iterations=20_000)
    for row in result.tables["downtime"].rows:
        n, static_dt, reactive_dt, drs_dt, saved, nines = row
        assert static_dt > reactive_dt > drs_dt
        assert saved > 0
        assert nines > 3
        assert not math.isnan(drs_dt)
    for row in result.tables["weighted"].rows:
        n, f, ratio, uniform, weighted, diff = row
        assert ratio > 1
        assert diff < 0  # hub-heavy failures hurt

"""Crash-safe checkpointing of completed job results.

A long sweep streams every finished job into ``<run>/<name>.checkpoint.jsonl``
— one JSON record per job, the whole file rewritten via write-temp-then-
``os.replace`` on each append, so the on-disk artifact is a valid JSONL
snapshot at every instant, even through ``SIGKILL``.  ``drs-experiments
--resume <run>`` feeds the file back through :meth:`Checkpoint.load`, which
keeps only records that still match the rebuilt plan (same experiment, same
root seed, same per-job spawned-seed fingerprint) — so a checkpoint taken
under one seed can never contaminate a run under another.

Because job values are deterministic functions of ``(root seed, experiment,
job name)`` (the engine's seed-spawning contract), a resumed run that skips
checkpointed jobs reduces to byte-identical final CSVs versus an
uninterrupted run.  Values round-trip through JSON exactly: Python floats
serialize shortest-round-trip, and the only non-JSON-native job value types
(tuples, NumPy scalars/arrays) are tagged by :func:`encode_value` /
:func:`decode_value`.

Fault injection for tests and CI: setting ``DRS_ENGINE_CRASH_AFTER=<k>``
SIGKILLs the process right after the ``k``-th record is persisted — the
``make quick-resume`` target uses it to prove the interrupted+resumed run
matches an uninterrupted one byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs.artifacts import atomic_write_text
from repro.obs.flightrecorder import flight_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.jobs import JobPlan
    from repro.engine.retry import JobOutcome

CHECKPOINT_SCHEMA_VERSION = 1

#: Test/CI-only fault injection: SIGKILL self after this many persisted records.
CRASH_AFTER_ENV = "DRS_ENGINE_CRASH_AFTER"

_records_persisted = 0  # process-wide, for the injection hook only


def encode_value(value: Any) -> Any:
    """JSON-safe form of a job value, tagging tuples and NumPy types.

    Raises ``TypeError`` for values with no faithful JSON round-trip; the
    checkpoint then simply skips that job (it reruns on resume) rather
    than corrupting the record stream.
    """
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise TypeError("checkpointable dict values need string keys")
        if "__tuple__" in value or "__ndarray__" in value:
            raise TypeError("dict value collides with checkpoint type tags")
        return {k: encode_value(v) for k, v in value.items()}
    raise TypeError(f"job value of type {type(value).__name__} is not checkpointable")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        return {k: decode_value(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class CheckpointRecord:
    """One completed job: identity, provenance, and its (decoded) value."""

    experiment: str
    root_seed: int
    job: str
    seed_fingerprint: int
    value: Any
    attempts: int = 1
    elapsed_s: float = 0.0


class Checkpoint:
    """Streamed record of completed jobs backing ``--resume``.

    One instance per (experiment run, output directory).  ``load(plan)``
    returns the records still valid for the plan; ``record(plan, outcome)``
    persists one more completed job.  Every persist rewrites the file
    atomically, so a crash at any point leaves a loadable JSONL.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: list[CheckpointRecord] = []
        self._fingerprints: dict[str, int] | None = None
        self._loaded_for: tuple[str, int] | None = None

    # -------------------------------------------------------------- loading
    def load(self, plan: "JobPlan") -> list[CheckpointRecord]:
        """Records of ``plan``'s jobs completed by a previous (or this) run.

        Validates each stored record against the plan: experiment name,
        root seed, and the job's current spawned-seed fingerprint must all
        match, and the job must still exist in the plan.  Corrupt lines
        (e.g. a torn write from a crash mid-rename) are skipped.
        """
        self._fingerprints = plan.job_seeds()
        kept: dict[str, CheckpointRecord] = {}
        if self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    record = CheckpointRecord(
                        experiment=raw["experiment"],
                        root_seed=int(raw["root_seed"]),
                        job=raw["job"],
                        seed_fingerprint=int(raw["seed_fingerprint"]),
                        value=decode_value(raw["value"]),
                        attempts=int(raw.get("attempts", 1)),
                        elapsed_s=float(raw.get("elapsed_s", 0.0)),
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                if record.experiment != plan.experiment or record.root_seed != plan.seed:
                    continue
                if self._fingerprints.get(record.job) != record.seed_fingerprint:
                    continue
                kept[record.job] = record  # duplicates: last write wins
        self._records = list(kept.values())
        self._loaded_for = (plan.experiment, plan.seed)
        return list(self._records)

    # ------------------------------------------------------------ recording
    def record(self, plan: "JobPlan", outcome: "JobOutcome") -> bool:
        """Persist one completed job; returns False if its value can't encode."""
        if self._loaded_for != (plan.experiment, plan.seed):
            self.load(plan)
        assert self._fingerprints is not None
        try:
            encoded = encode_value(outcome.value)
        except TypeError:
            return False
        record = CheckpointRecord(
            experiment=plan.experiment,
            root_seed=plan.seed,
            job=outcome.name,
            seed_fingerprint=self._fingerprints[outcome.name],
            value=outcome.value,
            attempts=outcome.attempts,
            elapsed_s=outcome.elapsed_s,
        )
        self._records = [r for r in self._records if r.job != record.job] + [record]
        self._flush(replacement_encoded={record.job: encoded})
        recorder = flight_recorder()
        if recorder is not None:
            recorder.emit(
                "checkpoint.write",
                job=outcome.name,
                records=len(self._records),
                bytes=self.path.stat().st_size if self.path.exists() else 0,
            )
        return True

    def _serialize(self, record: CheckpointRecord, encoded_value: Any) -> str:
        return json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "experiment": record.experiment,
                "root_seed": record.root_seed,
                "job": record.job,
                "seed_fingerprint": record.seed_fingerprint,
                "value": encoded_value,
                "attempts": record.attempts,
                "elapsed_s": record.elapsed_s,
            }
        )

    def _flush(self, replacement_encoded: dict[str, Any]) -> None:
        lines = []
        for record in self._records:
            encoded = (
                replacement_encoded[record.job]
                if record.job in replacement_encoded
                else encode_value(record.value)
            )
            lines.append(self._serialize(record, encoded))
        atomic_write_text(self.path, "\n".join(lines) + ("\n" if lines else ""))
        _maybe_injected_crash()

    # --------------------------------------------------------------- queries
    def completed_jobs(self) -> list[str]:
        """Names of the jobs currently persisted (after ``load``)."""
        return [record.job for record in self._records]


def _maybe_injected_crash() -> None:
    """Honor ``DRS_ENGINE_CRASH_AFTER``: die hard after the k-th record.

    SIGKILL (not an exception) so nothing — no finally blocks, no atexit —
    gets to tidy up: exactly the failure mode resume must survive.
    """
    budget = os.environ.get(CRASH_AFTER_ENV)
    if not budget:
        return
    global _records_persisted
    _records_persisted += 1
    if _records_persisted >= int(budget):
        os.kill(os.getpid(), signal.SIGKILL)

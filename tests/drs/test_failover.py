"""Integration tests: DRS detection and repair across failure modes."""

from repro.drs import LinkState
from repro.protocols import RouteSource

from tests.drs.conftest import routed_ping_ok


def test_warmup_marks_all_links_up(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    for daemon in deployment.daemons.values():
        assert all(l.state is LinkState.UP for l in daemon.table.links())


def test_peer_nic_failure_swaps_to_second_network(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic1.0")  # node 1 loses its primary-network NIC
    sim.run(until=sim.now + 1.0)
    route = stacks[0].table.lookup(1)
    assert route.direct and route.network == 1
    assert route.source is RouteSource.DRS
    assert routed_ping_ok(sim, stacks, 0, 1)
    assert routed_ping_ok(sim, stacks, 1, 0)


def test_own_nic_failure_reroutes_all_peers(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic0.0")  # node 0's own primary NIC dies
    sim.run(until=sim.now + 1.0)
    for peer in (1, 2, 3, 4):
        route = stacks[0].table.lookup(peer)
        assert route.direct and route.network == 1
        assert routed_ping_ok(sim, stacks, 0, peer)


def test_hub_failure_moves_cluster_to_second_backplane(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("hub0")
    sim.run(until=sim.now + 1.0)
    for src in range(5):
        for dst in range(5):
            if src == dst:
                continue
            route = stacks[src].table.lookup(dst)
            assert route.network == 1 and route.direct
    assert routed_ping_ok(sim, stacks, 0, 4)


def test_crossed_nic_failures_use_two_hop_route(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    # Node 0 can only transmit on net 0; node 1 only reachable on net 1.
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    route = stacks[0].table.lookup(1)
    assert not route.direct, f"expected two-hop repair, got {route}"
    router = route.next_hop
    assert router not in (0, 1)
    # the volunteer pinned its direct second leg
    leg2 = stacks[router].table.lookup(1)
    assert leg2.direct and leg2.network == 1
    assert routed_ping_ok(sim, stacks, 0, 1)
    assert routed_ping_ok(sim, stacks, 1, 0)


def test_detection_latency_within_configured_bound(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cfg = deployment.config
    start = sim.now
    cluster.faults.fail("nic1.0")
    sim.run(until=start + 2.0)
    repairs = [
        e for e in cluster.trace.entries("drs-repair")
        if e.fields["node"] == 0 and e.fields["peer"] == 1 and e.time >= start
    ]
    assert repairs, "node 0 never repaired its route to node 1"
    # detection+repair must land within one sweep + retry timeouts (+ margin)
    assert repairs[0].time - start <= cfg.detection_bound_s() + 0.05


def test_heal_restores_direct_route(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    assert stacks[0].table.lookup(1).network == 1
    cluster.faults.repair("nic1.0")
    sim.run(until=sim.now + 1.0)
    route = stacks[0].table.lookup(1)
    assert route.direct
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_two_hop_withdrawn_when_direct_heals(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    assert not stacks[0].table.lookup(1).direct
    cluster.faults.repair("nic1.0")
    sim.run(until=sim.now + 2.0)
    route = stacks[0].table.lookup(1)
    assert route.direct, f"healed direct link not restored: {route}"
    assert 1 not in deployment.daemons[0].failover.repaired_via


def test_both_hubs_down_peer_unreachable_then_recovers(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("hub0")
    cluster.faults.fail("hub1")
    sim.run(until=sim.now + 3.0)
    assert not routed_ping_ok(sim, stacks, 0, 1)
    cluster.faults.repair("hub1")
    sim.run(until=sim.now + 3.0)
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_router_death_triggers_rediscovery(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    first_router = stacks[0].table.lookup(1).next_hop
    # Kill the volunteer's NIC on our first-leg network: leg1 dies.
    cluster.faults.fail(f"nic{first_router}.0")
    sim.run(until=sim.now + 3.0)
    route = stacks[0].table.lookup(1)
    assert route is not None and not route.direct
    assert route.next_hop != first_router
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_no_ttl_drops_in_steady_state(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    # exchange routed traffic for a while; two-hop routes must not loop
    for _ in range(5):
        assert routed_ping_ok(sim, stacks, 0, 1)
    assert sum(s.net.dropped_ttl.value for s in stacks.values()) == 0


def test_probe_traffic_stays_within_budget(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    # measure the steady-state probe load over a window
    bp = cluster.backplanes[0]
    start_bits = bp.bits_carried.value
    start_t = sim.now
    sim.run(until=sim.now + 5.0)
    used = (bp.bits_carried.value - start_bits) / (bp.bandwidth_bps * (sim.now - start_t))
    # 5 nodes, sweep 0.1s: per network per sweep = n(n-1) probe exchanges
    expected = 5 * 4 * 2 * 84 * 8 / (0.1 * 100e6)
    assert abs(used - expected) / expected < 0.25


def test_stop_halts_probing(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    deployment.stop()
    probes_before = deployment.total_probe_bytes()
    sim.run(until=sim.now + 1.0)
    assert deployment.total_probe_bytes() == probes_before
    assert not deployment.daemons[0].running


def test_restart_after_stop(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    deployment.stop()
    deployment.start()
    probes_before = deployment.total_probe_bytes()
    sim.run(until=sim.now + 1.0)
    assert deployment.total_probe_bytes() > probes_before

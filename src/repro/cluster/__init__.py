"""Cluster application layer: workloads that ride on the protocol stack.

The paper motivates DRS with distributed server applications (NOW/PVM/MPI
clusters, and the deployed MCI WorldCom voice-mail clusters).  This package
provides the application-level pieces the experiments drive:

* :mod:`~repro.cluster.messaging` — an MPI-flavoured reliable message layer
  (send/receive/broadcast with delivery-latency tracking) built on TCP-lite,
* :mod:`~repro.cluster.voicemail` — a voice-mail server workload: subscriber
  mailboxes sharded across the cluster, deposits/retrievals that require
  server-to-server transfers,
* :mod:`~repro.cluster.failurelog` — a synthetic fleet failure log
  calibrated to the paper's one-year field study (13% of hardware failures
  network-related).
"""

from repro.cluster.messaging import ClusterComm, Endpoint, install_messaging
from repro.cluster.voicemail import VoicemailCluster, VoicemailConfig, VoicemailStats
from repro.cluster.mpijob import MpiJobConfig, MpiJobStats, MpiRingJob
from repro.cluster.failurelog import (
    FailureEvent,
    FailureLogConfig,
    category_breakdown,
    generate_failure_log,
    network_fraction,
    to_fault_scenario,
)

__all__ = [
    "Endpoint",
    "ClusterComm",
    "install_messaging",
    "VoicemailCluster",
    "VoicemailConfig",
    "VoicemailStats",
    "MpiRingJob",
    "MpiJobConfig",
    "MpiJobStats",
    "FailureEvent",
    "FailureLogConfig",
    "generate_failure_log",
    "category_breakdown",
    "network_fraction",
    "to_fault_scenario",
]

"""Performance bench — variance reduction vs crude CRN at equal CI width.

Guards the stratified/control-variate estimator stack
(:mod:`repro.analysis.variance`): at the same adaptive-stopping target,
the ``stratified-cv`` kernel must reach the requested interval half-width
with at least **3x** fewer trials than the crude common-random-numbers
sweep (``simulate_grid(method="crn")``).  Strata 1 and 2 are answered in
closed form and the endpoint-dead control variate absorbs most of the
sampled stratum's variance, so the trial budget collapses — the gate is on
the deterministic trials ratio (machine-independent), with wall-clock in
``extra_info`` for the committed snapshot.

``VARIANCE_BENCH_TARGET`` shrinks the precision target for the quick CI
profile (default 0.0002 half-width, the full-profile setting behind the
committed ``BENCH_bench_variance_reduction.json``).
"""

import os
from time import perf_counter

from repro.analysis import simulate_grid

N = 63
F_GRID = (2, 3, 4, 5, 6)
TARGET = float(os.environ.get("VARIANCE_BENCH_TARGET", "0.0002"))
SEED = 424242
FIRST_BATCH = 1_000
BUDGET = 50_000_000


def _adaptive(method):
    return simulate_grid(
        N,
        F_GRID,
        FIRST_BATCH,
        seed=SEED,
        method=method,
        target_half_width=TARGET,
        max_iterations=BUDGET,
    )


def _spent(cells) -> int:
    """Trials the sweep consumed: the last-frozen cell's count."""
    return max(cell.trials for cell in cells.values())


def test_crude_crn_at_target(benchmark):
    cells = benchmark.pedantic(lambda: _adaptive("crn"), rounds=1, iterations=1, warmup_rounds=0)
    assert all(cell.met_target for cell in cells.values())
    benchmark.extra_info["trials"] = _spent(cells)


def test_stratified_cv_at_target(benchmark):
    cells = benchmark.pedantic(
        lambda: _adaptive("stratified-cv"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert all(cell.met_target for cell in cells.values())
    assert all(cell.method == "stratified-cv" for cell in cells.values())
    benchmark.extra_info["trials"] = _spent(cells)


def test_speedup_cv_vs_crude_at_equal_width(benchmark):
    """CI perf gate: >= 3x fewer trials than crude CRN at equal CI width."""
    started = perf_counter()
    crude = _adaptive("crn")
    crude_s = perf_counter() - started

    started = perf_counter()
    reduced = benchmark.pedantic(
        lambda: _adaptive("stratified-cv"), rounds=1, iterations=1, warmup_rounds=0
    )
    reduced_s = perf_counter() - started

    crude_trials, reduced_trials = _spent(crude), _spent(reduced)
    trials_ratio = crude_trials / reduced_trials
    benchmark.extra_info["target_half_width"] = TARGET
    benchmark.extra_info["crude_trials"] = crude_trials
    benchmark.extra_info["reduced_trials"] = reduced_trials
    benchmark.extra_info["trials_ratio"] = round(trials_ratio, 2)
    benchmark.extra_info["crude_seconds"] = round(crude_s, 4)
    benchmark.extra_info["wall_clock_ratio"] = round(crude_s / reduced_s, 2)
    assert trials_ratio >= 3.0, (
        f"stratified-cv needed {reduced_trials:,} trials vs crude {crude_trials:,} "
        f"({trials_ratio:.1f}x) to reach half-width {TARGET:g} — below the 3x gate"
    )

"""Causal spans layered on the structured trace.

A :class:`SpanLog` turns a flat :class:`~repro.simkit.trace.TraceRecorder`
into a causal record of each failure's lifecycle: the fault injector opens
an *incident* root span when a component goes down, every observing daemon
hangs its detection/failover/discovery/restore spans off that incident, and
closing a span emits one ``span``-category trace entry carrying the full
(start, end, parent, incident) tuple.  Because spans ride the existing
trace, they flow into ``<name>.trace.jsonl`` artifacts for free and can be
reconstructed offline with :func:`spans_from_entries`.

Exports:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON (the ``traceEvents`` array format) loadable in Perfetto or
  ``chrome://tracing``; one pid per node, one tid per phase.
* :func:`flight_to_chrome_trace` / :func:`write_flight_chrome_trace` — the
  same format from engine flight-recorder events
  (:mod:`repro.obs.flightrecorder`): one process track per worker PID plus
  a scheduler track with queue-depth/utilization counters.
* :mod:`repro.obs.postmortem` consumes the same spans to reconstruct the
  detection→repair critical path per incident.

Cost discipline: every instrumentation site gates on :meth:`SpanLog.wants`
(one attribute access + the recorder's ``wants`` set lookup), so a disabled
trace — the benchmark configuration — pays no span overhead.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.simkit.trace import TraceEntry, TraceRecorder

#: trace category all closed spans are emitted under
SPAN_CATEGORY = "span"


@dataclass
class Span:
    """One causal interval in simulated time.

    ``incident_id`` groups every span of one failure lifecycle; for the
    root (the fault itself) it equals ``span_id``.  ``end`` is ``None``
    while the span is open.
    """

    span_id: int
    name: str
    phase: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    incident_id: int | None = None
    node: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Span length in simulated seconds, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    @property
    def closed(self) -> bool:
        """True once :meth:`SpanLog.end` has sealed the span."""
        return self.end is not None

    def to_fields(self) -> dict[str, Any]:
        """Flat dict form, the payload of the emitted trace entry."""
        fields: dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
        }
        if self.parent_id is not None:
            fields["parent_id"] = self.parent_id
        if self.incident_id is not None:
            fields["incident_id"] = self.incident_id
        if self.node is not None:
            fields["node"] = self.node
        if self.attrs:
            fields["attrs"] = dict(self.attrs)
        return fields

    @classmethod
    def from_fields(cls, fields: Mapping[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_fields` output (or its JSON form)."""
        return cls(
            span_id=int(fields["span_id"]),
            name=str(fields["name"]),
            phase=str(fields["phase"]),
            start=float(fields["start"]),
            end=None if fields.get("end") is None else float(fields["end"]),
            parent_id=None if fields.get("parent_id") is None else int(fields["parent_id"]),
            incident_id=None if fields.get("incident_id") is None else int(fields["incident_id"]),
            node=None if fields.get("node") is None else int(fields["node"]),
            attrs=dict(fields.get("attrs") or {}),
        )


class SpanLog:
    """Span factory and open-incident registry for one trace recorder.

    One log per recorder, shared by every instrumented component; obtain it
    with :func:`span_log` rather than constructing directly so the fault
    injector and the daemons correlate through the same registry.
    """

    def __init__(self, trace: TraceRecorder) -> None:
        self.trace = trace
        self._ids = itertools.count(1)
        #: every span ever begun, in begin order (open and closed)
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        #: component name -> open incident root span
        self._open_incidents: dict[str, Span] = {}

    # -------------------------------------------------------------- hot gate
    def wants(self) -> bool:
        """True iff span emission is currently enabled on the trace."""
        return self.trace.wants(SPAN_CATEGORY)

    # ------------------------------------------------------------- lifecycle
    def begin(
        self,
        name: str,
        phase: str,
        *,
        node: int | None = None,
        parent: Span | None = None,
        start: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at ``start`` (default: now), causally under ``parent``."""
        span = Span(
            span_id=next(self._ids),
            name=name,
            phase=phase,
            start=self.trace.sim.now if start is None else start,
            parent_id=parent.span_id if parent is not None else None,
            incident_id=(parent.incident_id or parent.span_id) if parent is not None else None,
            node=node,
            attrs=attrs,
        )
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def end(self, span: Span, *, end: float | None = None, **attrs: Any) -> Span:
        """Seal a span and emit it as one ``span`` trace entry.

        Idempotent: ending an already-closed span is a no-op, so a flush at
        scenario teardown cannot double-emit a daemon's lifetime span.
        """
        if span.end is not None:
            return span
        span.end = self.trace.sim.now if end is None else end
        span.attrs.update(attrs)
        self._open.pop(span.span_id, None)
        self.trace.record(SPAN_CATEGORY, **span.to_fields())
        return span

    def closed(
        self,
        name: str,
        phase: str,
        *,
        start: float,
        end: float | None = None,
        node: int | None = None,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-finished interval (e.g. a timed-out probe)."""
        span = self.begin(name, phase, node=node, parent=parent, start=start, **attrs)
        return self.end(span, end=end)

    def flush(self, end: float | None = None) -> list[Span]:
        """Seal every still-open span (marked ``unfinished``) and emit it.

        Called at run teardown so long-lived spans (daemon lifetimes,
        unrepaired incidents) still reach the trace artifact.
        """
        flushed = []
        for span in list(self._open.values()):
            flushed.append(self.end(span, end=end, unfinished=True))
        self._open_incidents.clear()
        return flushed

    # -------------------------------------------------------------- incidents
    def incident_begin(self, component: str, kind: str = "") -> Span:
        """Open the root span of a new failure incident."""
        span = self.begin(f"incident:{component}", "fault", component=component, kind=kind)
        span.incident_id = span.span_id
        self._open_incidents[component] = span
        return span

    def incident_end(self, component: str) -> Span | None:
        """Close the open incident for ``component`` (the repair), if any."""
        span = self._open_incidents.pop(component, None)
        if span is not None:
            self.end(span)
        return span

    def find_incident(
        self,
        node: int | None = None,
        peer: int | None = None,
        network: int | None = None,
    ) -> Span | None:
        """The open incident a (node, peer, network) observation belongs to.

        Prefers the component that physically explains the loss — the
        peer's NIC on that network, our own NIC, then the shared hub —
        falling back to the most recent open incident (a gray failure the
        injector attributed differently).
        """
        names = []
        if peer is not None and network is not None:
            names.append(f"nic{peer}.{network}")
        if node is not None and network is not None:
            names.append(f"nic{node}.{network}")
        if network is not None:
            names.append(f"hub{network}")
        for name in names:
            span = self._open_incidents.get(name)
            if span is not None:
                return span
        if self._open_incidents:
            return next(reversed(self._open_incidents.values()))  # most recent
        return None


def span_log(trace: TraceRecorder) -> SpanLog:
    """The shared :class:`SpanLog` of a recorder, created on first use."""
    log = getattr(trace, "_span_log", None)
    if log is None:
        log = SpanLog(trace)
        trace._span_log = log
    return log


# ------------------------------------------------------------- reconstruction
def spans_from_entries(entries: Iterable[TraceEntry | Mapping[str, Any]]) -> list[Span]:
    """Rebuild spans from trace entries or JSONL rows.

    Accepts live :class:`TraceEntry` objects and the flat dict rows written
    by :func:`repro.obs.artifacts.write_trace_jsonl` interchangeably.
    """
    spans: list[Span] = []
    for entry in entries:
        if isinstance(entry, TraceEntry):
            if entry.category != SPAN_CATEGORY:
                continue
            spans.append(Span.from_fields(entry.fields))
        else:
            if entry.get("category") != SPAN_CATEGORY:
                continue
            spans.append(Span.from_fields(entry))
    spans.sort(key=lambda s: (s.start, s.span_id))
    return spans


def load_trace_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read a ``*.trace.jsonl`` artifact back into flat dict rows."""
    rows = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows


# --------------------------------------------------------- Chrome trace export
#: trace categories exported as instant markers alongside the span bars
INSTANT_CATEGORIES = {
    "fault",
    "drs-detect",
    "drs-repair",
    "drs-restore",
    "drs-unreachable",
    "reactive-detect",
    "reactive-repair",
}

_CLUSTER_PID = 0  # spans with no node (incidents) land in a "cluster" process


def _tid_for(phase: str, tids: dict[str, int]) -> int:
    return tids.setdefault(phase, len(tids) + 1)


def to_chrome_trace(
    spans: Iterable[Span],
    instants: Iterable[TraceEntry | Mapping[str, Any]] = (),
) -> dict[str, Any]:
    """Convert spans (plus optional point events) to Chrome trace-event JSON.

    Output follows the Trace Event Format's JSON-object flavour: complete
    (``ph: "X"``) events with microsecond ``ts``/``dur`` in *simulated*
    time, one pid per node (pid 0 is the cluster-wide lane for incidents),
    one tid per phase, and ``M`` metadata records naming both.  The result
    loads directly in Perfetto / ``chrome://tracing``.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    pids: dict[int, str] = {}
    horizon = 0.0
    spans = list(spans)
    for span in spans:
        horizon = max(horizon, span.start, span.end or 0.0)

    for span in spans:
        pid = _CLUSTER_PID if span.node is None else span.node + 1
        pids.setdefault(pid, "cluster" if span.node is None else f"node{span.node}")
        end = span.end if span.end is not None else horizon
        args: dict[str, Any] = {"span_id": span.span_id, **span.attrs}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.incident_id is not None:
            args["incident_id"] = span.incident_id
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, end - span.start) * 1e6,
                "pid": pid,
                "tid": _tid_for(span.phase, tids),
                "args": args,
            }
        )

    for entry in instants:
        if isinstance(entry, TraceEntry):
            category, time, fields = entry.category, entry.time, entry.fields
        else:
            fields = dict(entry)
            category = fields.pop("category", "?")
            time = float(fields.pop("time", 0.0))
        if category not in INSTANT_CATEGORIES:
            continue
        node = fields.get("node")
        pid = _CLUSTER_PID if node is None else int(node) + 1
        pids.setdefault(pid, "cluster" if node is None else f"node{node}")
        events.append(
            {
                "name": category,
                "cat": category,
                "ph": "i",
                "s": "g",
                "ts": time * 1e6,
                "pid": pid,
                "tid": _tid_for("events", tids),
                "args": {k: v for k, v in fields.items() if k != "node"},
            }
        )

    meta: list[dict[str, Any]] = []
    for pid, name in sorted(pids.items()):
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "args": {"name": name}})
        for phase, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid, "args": {"name": phase}}
            )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    instants: Iterable[TraceEntry | Mapping[str, Any]] = (),
) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(spans, instants)) + "\n")
    return path


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    An empty list means the document satisfies the subset of the Trace
    Event Format that Perfetto requires: a ``traceEvents`` array whose
    entries carry ``ph``/``pid``/``ts`` with the right types, complete
    events additionally a non-negative ``dur``, and counter events
    (``ph: "C"``, the scheduler-track gauges) numeric ``args``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' array"]
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in {"X", "i", "M", "B", "E", "s", "f", "t", "C"}:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur, got {dur!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: C event needs a dict of numeric args, got {args!r}")
    return problems


# ------------------------------------------------- flight-recorder trace export
#: flight-event kinds rendered as instant markers on their worker's track
FLIGHT_INSTANT_KINDS = {
    "worker.spawn",
    "worker.exit",
    "job.retry",
    "job.timeout",
}

#: flight-event kinds rendered as instant markers on the scheduler track
FLIGHT_SCHEDULER_INSTANTS = {
    "plan.begin",
    "plan.end",
    "job.submitted",
    "job.resumed",
    "pool.respawn",
    "checkpoint.write",
    "heartbeat",
}

_SCHEDULER_PID = 0
_JOBS_TID = 1
_EVENTS_TID = 2


def flight_to_chrome_trace(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Convert flight-recorder events to Chrome trace-event JSON.

    One Perfetto process per worker OS pid (named ``worker <pid>``; the
    coordinating process is named ``scheduler``), with:

    * complete (``ph: "X"``) job bars on each worker's ``jobs`` thread,
      reconstructed from ``job.completed`` / ``job.quarantined`` events and
      their recorded wall time (a job's bar ends at the event and extends
      ``wall_s`` back, covering every attempt and backoff);
    * instant markers for submissions, retries, timeouts, checkpoint
      writes, pool respawns, and worker spawn/exit;
    * counter (``ph: "C"``) tracks on the scheduler process fed by
      ``scheduler.gauge`` samples — queue depth and pool utilization over
      wall time — plus a ``ci half-width`` counter fed by ``stats.cell``
      precision snapshots: the worst current Wilson half-width over the
      latest state of every Monte Carlo cell, so convergence to the
      adaptive-stopping target is visible as a decaying staircase.

    Timestamps are microseconds since the first event (Perfetto needs
    non-negative ``ts``); wall-clock ordering across workers is preserved
    because every event carries the emitting process's own clock.
    """
    events = [dict(e) for e in events]
    if not events:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(float(e.get("t", 0.0)) for e in events)
    scheduler_os_pid: int | None = None
    for event in events:
        if event.get("kind") in ("plan.begin", "plan.end", "run.end"):
            scheduler_os_pid = int(event.get("pid", 0))
            break

    pids: dict[int, str] = {}

    def track(os_pid: int) -> int:
        if scheduler_os_pid is not None and os_pid == scheduler_os_pid:
            pids.setdefault(_SCHEDULER_PID, "scheduler")
            return _SCHEDULER_PID
        pids.setdefault(os_pid, f"worker {os_pid}")
        return os_pid

    out: list[dict[str, Any]] = []
    #: latest Wilson half-width per (n, f) cell, for the running-worst counter
    cell_widths: dict[tuple[int, int], float] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        ts = max(0.0, (float(event.get("t", t0)) - t0) * 1e6)
        os_pid = int(event.get("pid", 0))
        pid = track(os_pid)
        if kind in ("job.completed", "job.quarantined"):
            wall_us = max(0.0, float(event.get("wall_s", 0.0)) * 1e6)
            args = {
                k: v
                for k, v in event.items()
                if k in ("attempts", "ok", "seed_fingerprint", "cpu_s", "error", "timed_out")
            }
            out.append(
                {
                    "name": str(event.get("job", "?")),
                    "cat": kind,
                    "ph": "X",
                    "ts": max(0.0, ts - wall_us),
                    "dur": wall_us,
                    "pid": pid,
                    "tid": _JOBS_TID,
                    "args": args,
                }
            )
        elif kind == "scheduler.gauge":
            pids.setdefault(_SCHEDULER_PID, "scheduler")
            out.append(
                {
                    "name": "queue depth",
                    "ph": "C",
                    "ts": ts,
                    "pid": _SCHEDULER_PID,
                    "tid": _EVENTS_TID,
                    "args": {"jobs": float(event.get("queue_depth", 0))},
                }
            )
            out.append(
                {
                    "name": "pool utilization",
                    "ph": "C",
                    "ts": ts,
                    "pid": _SCHEDULER_PID,
                    "tid": _EVENTS_TID,
                    "args": {"busy_fraction": float(event.get("utilization", 0.0))},
                }
            )
        elif kind == "stats.cell":
            key = (int(event.get("n", -1)), int(event.get("f", -1)))
            cell_widths[key] = float(event.get("half_width", 0.0))
            pids.setdefault(_SCHEDULER_PID, "scheduler")
            out.append(
                {
                    "name": "ci half-width",
                    "ph": "C",
                    "ts": ts,
                    "pid": _SCHEDULER_PID,
                    "tid": _EVENTS_TID,
                    "args": {"worst": max(cell_widths.values())},
                }
            )
        elif kind in FLIGHT_INSTANT_KINDS or kind in FLIGHT_SCHEDULER_INSTANTS:
            if kind in FLIGHT_SCHEDULER_INSTANTS:
                pids.setdefault(_SCHEDULER_PID, "scheduler")
                pid = _SCHEDULER_PID
            name = kind if "job" not in event else f"{kind}: {event['job']}"
            args = {
                k: v
                for k, v in event.items()
                if k not in ("t", "kind", "pid", "seq", "experiment") and v is not None
            }
            out.append(
                {
                    "name": name,
                    "cat": kind,
                    "ph": "i",
                    "s": "g",
                    "ts": ts,
                    "pid": pid,
                    "tid": _EVENTS_TID,
                    "args": args,
                }
            )

    meta: list[dict[str, Any]] = []
    for pid, name in sorted(pids.items()):
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "args": {"name": name}})
        meta.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": _JOBS_TID, "args": {"name": "jobs"}}
        )
        meta.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": _EVENTS_TID,
             "args": {"name": "events"}}
        )
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_flight_chrome_trace(path: str | Path, events: Iterable[Mapping[str, Any]]) -> Path:
    """Write :func:`flight_to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(flight_to_chrome_trace(events)) + "\n")
    return path

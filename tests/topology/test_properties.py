"""Property tests: monotonicity and CRN invariants over the whole catalog.

Two families of invariants back the sweep kernel's correctness argument:

* every shipped builder's default predicate is *monotone* — adding a
  failure can never resurrect connectivity.  This is the assumption that
  lets the sweep reduce each sampled row to one breakdown threshold.
* the topology-aware rank kernel preserves the common-random-numbers
  nesting — a row's level-``f`` failure set is contained in its
  level-``f+1`` set, and the reported threshold is exactly the boundary
  between surviving and failing prefixes.
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import topology_connected_vec, topology_connectivity_levels, topology_keys
from repro.topology import (
    dual_hub_cluster,
    fat_tree_three_level,
    fat_tree_two_level,
    k_hub_cluster,
    multi_cluster_wan,
)

# one small instance per shipped family — widths kept low so exhaustive
# bitmask draws and per-example kernels stay fast under hypothesis
CATALOG = {
    "dual-hub": dual_hub_cluster(3),
    "khub": k_hub_cluster(2, hubs=3),
    "fattree2": fat_tree_two_level(4, leaves=2, spines=2),
    "fattree3": fat_tree_three_level(4, pods=2, leaves_per_pod=1, aggs_per_pod=2, cores=2),
    "multicluster": multi_cluster_wan(1, clusters=3),
}
FAMILIES = sorted(CATALOG)
MAX_WIDTH = max(t.width for t in CATALOG.values())


def generic(topology):
    return replace(topology, connected_fn=None, levels_fn=None, exact_fn=None)


@given(
    family=st.sampled_from(FAMILIES),
    mask=st.integers(min_value=0, max_value=2**MAX_WIDTH - 1),
    extra=st.integers(min_value=0, max_value=MAX_WIDTH - 1),
)
def test_connectivity_is_monotone_in_the_failure_set(family, mask, extra):
    """Failing one more component never reconnects a broken topology."""
    topology = CATALOG[family]
    failed = [i for i in range(topology.width) if mask >> i & 1]
    extra %= topology.width
    smaller = topology.connected(failed)
    larger = topology.connected(set(failed) | {extra})
    assert larger <= smaller  # monotone: superset can only be worse


@given(
    family=st.sampled_from(FAMILIES),
    mask=st.integers(min_value=0, max_value=2**MAX_WIDTH - 1),
)
def test_vectorized_predicate_matches_reference(family, mask):
    topology = CATALOG[family]
    failed = np.array([[bool(mask >> i & 1) for i in range(topology.width)]])
    assert topology_connected_vec(generic(topology), failed)[0] == topology.connected(
        np.flatnonzero(failed[0])
    )


@settings(max_examples=25)
@given(family=st.sampled_from(FAMILIES), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_rank_kernel_levels_are_exact_breakdown_thresholds(family, seed):
    """level >= f  iff  the row's f lowest-key components leave it alive."""
    topology = generic(CATALOG[family])
    keys = topology_keys(topology, 32, np.random.default_rng(seed))
    levels = topology_connectivity_levels(topology, keys)
    assert ((0 <= levels) & (levels <= topology.width)).all()
    ranks = np.argsort(np.argsort(keys, axis=1), axis=1)
    for f in range(topology.width + 1):
        np.testing.assert_array_equal(
            levels >= f,
            topology_connected_vec(topology, ranks < f),
            err_msg=f"{family} at f={f}",
        )


@settings(max_examples=25)
@given(family=st.sampled_from(FAMILIES), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_crn_failure_sets_are_nested_across_f(family, seed):
    """The level-f set grows one component at a time — CRN's whole point."""
    topology = CATALOG[family]
    keys = topology_keys(topology, 16, np.random.default_rng(seed))
    order = np.argsort(keys, axis=1)
    for row in order:
        prefix: set[int] = set()
        for f in range(topology.width):
            bigger = prefix | {int(row[f])}
            assert prefix < bigger and len(bigger) == f + 1
            prefix = bigger


@settings(max_examples=15)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_weighted_keys_preserve_the_threshold_invariant(seed):
    """The Gumbel-key transform changes the measure, not the semantics."""
    base = k_hub_cluster(2, hubs=2)
    weighted = replace(base, weights=tuple(float(2 + i % 3) for i in range(base.width)))
    keys = topology_keys(weighted, 24, np.random.default_rng(seed))
    levels = topology_connectivity_levels(weighted, keys)
    ranks = np.argsort(np.argsort(keys, axis=1), axis=1)
    for f in range(weighted.width + 1):
        np.testing.assert_array_equal(
            levels >= f, topology_connected_vec(weighted, ranks < f)
        )


@settings(max_examples=20)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dual_hub_fast_path_and_generic_search_agree(family, seed):
    """Whatever levels_fn a builder attaches must match the binary search."""
    topology = CATALOG[family]
    if topology.levels_fn is None:
        keys = topology_keys(topology, 16, np.random.default_rng(seed))
        np.testing.assert_array_equal(
            topology_connectivity_levels(topology, keys),
            topology_connectivity_levels(generic(topology), keys),
        )
    else:
        keys = topology_keys(topology, 64, np.random.default_rng(seed))
        np.testing.assert_array_equal(
            np.asarray(topology.levels_fn(keys)),
            topology_connectivity_levels(generic(topology), keys),
        )

"""Statistical accounting for the Monte Carlo estimators.

The paper reports raw simulation means; a production harness should also
say how sure it is.  This module provides

* the Wilson score interval for Bernoulli proportions (well-behaved near 0
  and 1, where survivability estimates live), and
* :func:`estimate_to_precision` — run the Monte Carlo in growing batches
  until the interval half-width reaches a target, so callers ask for a
  precision instead of guessing an iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ProportionEstimate:
    """A Bernoulli-proportion estimate with its Wilson interval."""

    successes: int
    trials: int
    confidence: float
    point: float
    low: float
    high: float

    @property
    def half_width(self) -> float:
        """Half the interval width — the precision actually achieved."""
        return (self.high - self.low) / 2.0


#: two-sided z for the legacy confidence levels: exact published values, so
#: results at these levels are bit-identical to every run recorded before the
#: inverse-normal fallback existed (no scipy needed at runtime)
_Z_TABLE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}

# Coefficients of Acklam's rational approximation to the standard normal
# inverse CDF (relative error < 1.15e-9 over the whole open interval).
_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
             1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
             6.680131188771972e+01, -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
             -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
             3.754408661907416e+00)
_ACKLAM_LOW, _ACKLAM_HIGH = 0.02425, 1 - 0.02425


def normal_ppf(p: float) -> float:
    """Standard normal inverse CDF via Acklam's rational approximation.

    Dependency-free ``scipy.stats.norm.ppf`` stand-in, accurate to ~1e-9
    relative error — far below Monte Carlo resolution at any feasible
    trial count.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p < _ACKLAM_LOW:
        q = np.sqrt(-2.0 * np.log(p))
        a, b, c, d, e, f = _ACKLAM_C
        g, h, i, j = _ACKLAM_D
        return float((((((a * q + b) * q + c) * q + d) * q + e) * q + f)
                     / ((((g * q + h) * q + i) * q + j) * q + 1.0))
    if p > _ACKLAM_HIGH:
        return -normal_ppf(1.0 - p)
    q = p - 0.5
    r = q * q
    a, b, c, d, e, f = _ACKLAM_A
    g, h, i, j, k = _ACKLAM_B
    return float((((((a * r + b) * r + c) * r + d) * r + e) * r + f) * q
                 / (((((g * r + h) * r + i) * r + j) * r + k) * r + 1.0))


def _z_for(confidence: float) -> float:
    """Two-sided z for a confidence level in (0, 1).

    The historical table answers the four legacy levels with their exact
    published constants; every other level falls back to the inverse
    normal (:func:`normal_ppf`), so arbitrary confidences — 0.975, 0.9973,
    whatever a caller asks for — are first-class instead of a
    ``ValueError``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    key = round(confidence, 3)
    if key in _Z_TABLE and abs(confidence - key) < 1e-12:
        return _Z_TABLE[key]
    return normal_ppf((1.0 + confidence) / 2.0)


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> ProportionEstimate:
    """Wilson score interval for ``successes`` out of ``trials``."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, trials], got {successes}/{trials}")
    z = _z_for(confidence)
    p = successes / trials
    z2 = z * z
    denominator = 1 + z2 / trials
    center = (p + z2 / (2 * trials)) / denominator
    margin = z * np.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials)) / denominator
    return ProportionEstimate(
        successes=successes,
        trials=trials,
        confidence=confidence,
        point=p,
        low=max(0.0, float(center - margin)),
        high=min(1.0, float(center + margin)),
    )


def estimate_to_precision(
    trial_batch: Callable[[int], int],
    target_half_width: float,
    confidence: float = 0.95,
    batch: int = 10_000,
    max_trials: int = 5_000_000,
) -> ProportionEstimate:
    """Run ``trial_batch(k) -> successes`` until the Wilson CI is tight enough.

    Parameters
    ----------
    trial_batch:
        Callable running ``k`` Bernoulli trials and returning the success
        count (e.g. a closure over the vectorized survivability predicate).
    target_half_width:
        Stop once the interval half-width is at or below this.
    batch, max_trials:
        Batch size per round and the hard trial budget; hitting the budget
        returns the best estimate achieved rather than raising.

    ``target_half_width <= 0`` and ``confidence`` outside (0, 1) raise
    ``ValueError`` (the estimator-API convention: invalid numeric domains
    are ``ValueError``, wrong argument shapes are ``TypeError``).  A
    degenerate all-success or all-failure stream still terminates: the
    Wilson half-width at p ∈ {0, 1} shrinks like z²/(2·trials), so the
    loop always reaches any positive target within a finite trial count.
    """
    if target_half_width <= 0:
        raise ValueError(f"target_half_width must be positive, got {target_half_width}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if batch <= 0 or max_trials <= 0:
        raise ValueError("batch and max_trials must be positive")
    successes = 0
    trials = 0
    estimate = None
    while trials < max_trials:
        size = min(batch, max_trials - trials)
        got = int(trial_batch(size))
        if not 0 <= got <= size:
            raise ValueError(f"trial_batch returned {got} successes for {size} trials")
        successes += got
        trials += size
        estimate = wilson_interval(successes, trials, confidence)
        if estimate.half_width <= target_half_width:
            return estimate
    return estimate


def mc_success_estimate(
    n: int,
    f: int,
    rng: np.random.Generator,
    target_half_width: float = 0.001,
    confidence: float = 0.95,
    **kwargs,
) -> ProportionEstimate:
    """Pair survivability with a confidence interval at requested precision."""
    from repro.analysis.montecarlo import pair_connected_vec, sample_failure_matrix

    def batch(k: int) -> int:
        return int(pair_connected_vec(sample_failure_matrix(n, f, k, rng)).sum())

    return estimate_to_precision(batch, target_half_width, confidence, **kwargs)

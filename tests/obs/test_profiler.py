"""Unit tests for simulator and Monte Carlo profiling publication."""

import numpy as np
import pytest

from repro.analysis import simulate_success_probability
from repro.obs import (
    MetricsRegistry,
    ensure_core_metrics,
    install_profiling,
    publish_mc_throughput,
    publish_profile,
    uninstall_profiling,
    use_registry,
)
from repro.obs.profiler import profiling_installed
from repro.simkit import Simulator


@pytest.fixture
def profiled():
    install_profiling()
    try:
        yield
    finally:
        uninstall_profiling()


def test_install_profiling_publishes_into_current_registry(profiled):
    assert profiling_installed()
    reg = MetricsRegistry()
    with use_registry(reg):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
    assert reg.counter("sim_events_total").value == 2
    assert reg.counter("sim_run_seconds_total").value > 0
    assert reg.gauge("sim_events_per_second").value > 0
    # lambdas defined in this module land in a category named after it
    assert reg.counter("sim_events_total", labels={"category": "test_profiler"}).value == 2


def test_repeated_runs_publish_only_deltas(profiled):
    reg = MetricsRegistry()
    with use_registry(reg):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
    assert reg.counter("sim_events_total").value == 2


def test_uninstalled_simulators_do_not_profile():
    uninstall_profiling()
    sim = Simulator()
    assert sim.profile is None


def test_manual_publish_profile():
    sim = Simulator()
    prof = sim.enable_profiling()
    sim.schedule(1.0, lambda: None)
    sim.run()
    reg = MetricsRegistry()
    with use_registry(reg):
        publish_profile(prof)
        # second publication with no new work is a no-op
        publish_profile(prof)
    assert reg.counter("sim_events_total").value == 1


def test_publish_mc_throughput():
    reg = MetricsRegistry()
    with use_registry(reg):
        publish_mc_throughput(1000, 0.5)
        publish_mc_throughput(1000, 0.5)
    assert reg.counter("mc_iterations_total").value == 2000
    assert reg.counter("mc_wall_seconds_total").value == pytest.approx(1.0)
    assert reg.gauge("mc_iterations_per_second").value == pytest.approx(2000.0)


def test_montecarlo_publishes_throughput():
    reg = ensure_core_metrics(MetricsRegistry())
    rng = np.random.default_rng(7)
    with use_registry(reg):
        p = simulate_success_probability(8, 2, 500, rng)
    assert 0.0 <= p <= 1.0
    assert reg.counter("mc_iterations_total").value == 500
    assert reg.gauge("mc_iterations_per_second").value > 0

"""TAB-CROSS bench — the paper's 0.99 crossover sizes (18 / 32 / 45)."""

from repro.analysis import crossover_n
from repro.experiments import crossovers


def test_crossover_search(benchmark):
    values = benchmark(lambda: {f: crossover_n(f) for f in range(2, 11)})
    assert values[2] == 18
    assert values[3] == 32
    assert values[4] == 45
    # crossovers grow with the failure count
    ns = list(values.values())
    assert ns == sorted(ns)


def test_crossover_report(benchmark, capsys):
    result = benchmark(crossovers.run)
    with capsys.disabled():
        print()
        print(result.render())
    assert any("reproduced exactly: True" in note for note in result.notes)

"""Aligned plain-text tables."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows under headers with column alignment.

    Numbers are right-aligned, text left-aligned; floats use %.6g.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    numeric = [
        bool(rows) and all(isinstance(row[i], (int, float)) for row in rows)
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _label_suffix(row: Mapping[str, Any]) -> str:
    labels = row.get("labels") or {}
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def metrics_summary_table(snapshot: Sequence[Mapping[str, Any]], title: str = "metrics") -> str:
    """Render a metrics-registry snapshot as aligned text tables.

    ``snapshot`` is the list of plain dicts produced by
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or read back from a
    ``*.metrics.jsonl`` artifact).  Counters and gauges share one table;
    histograms get a second with count/mean/p50/p99/min/max columns.
    """
    scalars: list[list[Any]] = []
    hists: list[list[Any]] = []
    for row in snapshot:
        name = str(row.get("name", "?")) + _label_suffix(row)
        kind = row.get("kind", "?")
        if kind == "histogram":
            hists.append(
                [
                    name,
                    row.get("count", 0),
                    row.get("mean", 0.0),
                    row.get("p50", 0.0),
                    row.get("p99", 0.0),
                    row.get("min") if row.get("min") is not None else "-",
                    row.get("max") if row.get("max") is not None else "-",
                ]
            )
        else:
            scalars.append([name, kind, row.get("value", 0.0)])
    parts = []
    if scalars:
        parts.append(render_table(["metric", "kind", "value"], scalars, title=title))
    if hists:
        parts.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p99", "min", "max"],
                hists,
                title=f"{title}: histograms",
            )
        )
    if not parts:
        return f"{title}: (empty)"
    return "\n\n".join(parts)

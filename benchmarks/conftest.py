"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (figure, table, or prose
checkpoint), asserts the reproduction invariants, and reports timing via
pytest-benchmark.  Heavy DES-backed benchmarks use ``benchmark.pedantic``
with a single round so the whole harness stays in the minutes range;
analytic benchmarks let pytest-benchmark calibrate normally.

Run:  pytest benchmarks/ --benchmark-only

Every run also persists a ``BENCH_<module>.json`` telemetry snapshot per
benchmark module (see :mod:`repro.obs.bench`), giving perf PRs a committed
baseline to diff against.  ``BENCH_TELEMETRY_DIR`` redirects the snapshots;
set it to an empty string to disable.
"""

import os
from pathlib import Path

import pytest


def pytest_sessionfinish(session, exitstatus):
    """Write bench telemetry snapshots next to the benchmark modules."""
    out_dir = os.environ.get("BENCH_TELEMETRY_DIR", str(Path(__file__).parent))
    if not out_dir:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    from repro.obs.bench import write_bench_snapshots

    for path in write_bench_snapshots(bench_session.benchmarks, out_dir):
        print(f"bench telemetry -> {path}")


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one measured round (for DES workloads)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run

"""Tests for the OSPF-like link-state baseline."""

import pytest

from repro.baselines import LinkStateConfig, install_linkstate
from repro.baselines.linkstate import Hello, Lsa
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import RouteSource, install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import routed_ping_ok

FAST = LinkStateConfig(hello_interval_s=0.25, dead_interval_s=1.0, lsa_refresh_s=10.0)


def _rig(n=4, config=FAST):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_linkstate(cluster, stacks, config)
    sim.run(until=2.0)  # hellos + floods + SPF settle
    return sim, cluster, stacks, deployment


def test_config_validation():
    with pytest.raises(ValueError):
        LinkStateConfig(hello_interval_s=0)
    with pytest.raises(ValueError):
        LinkStateConfig(hello_interval_s=1.0, dead_interval_s=1.5)
    with pytest.raises(ValueError):
        LinkStateConfig(lsa_refresh_s=0)


def test_lsa_size_accounting():
    lsa = Lsa(origin=0, seq=1, networks=(0, 1))
    assert lsa.wire_data_bytes == 16 + 2 * 4


def test_converges_to_direct_routes():
    sim, cluster, stacks, deployment = _rig()
    for src in range(4):
        for dst in range(4):
            if src == dst:
                continue
            route = stacks[src].table.lookup(dst)
            assert route.source is RouteSource.LINKSTATE, (src, dst, str(route))
            assert route.direct and route.metric == 2


def test_lsdb_synchronized_cluster_wide():
    sim, cluster, stacks, deployment = _rig()
    for router in deployment.routers.values():
        assert set(router._lsdb) == {0, 1, 2, 3}
        for origin, entry in router._lsdb.items():
            assert set(entry.lsa.networks) == {0, 1}


def test_reachability_after_convergence():
    sim, cluster, stacks, deployment = _rig()
    assert routed_ping_ok(sim, stacks, 0, 3)


def test_nic_failure_reroutes_after_dead_interval():
    sim, cluster, stacks, deployment = _rig()
    t_fail = sim.now
    cluster.faults.fail("nic1.0")
    sim.run(until=t_fail + FAST.dead_interval_s + 3 * FAST.hello_interval_s)
    route = stacks[0].table.lookup(1)
    assert route.network == 1, str(route)
    assert routed_ping_ok(sim, stacks, 0, 1)
    # detection respects the dead interval (reactive semantics)
    changes = [
        e
        for e in cluster.trace.entries("ls-route-change")
        if e.time > t_fail and e.fields["node"] == 0 and e.fields["dst"] == 1 and e.fields["network"] == 1
    ]
    assert changes and changes[0].time - t_fail >= FAST.dead_interval_s - FAST.hello_interval_s


def test_hub_failure_moves_everyone():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("hub0")
    sim.run(until=sim.now + FAST.dead_interval_s + 4 * FAST.hello_interval_s)
    for src in range(4):
        for dst in range(4):
            if src != dst:
                assert stacks[src].table.lookup(dst).network == 1, (src, dst)
    assert routed_ping_ok(sim, stacks, 1, 3)


def test_crossed_failure_two_hop_spf_route():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + FAST.dead_interval_s + 5 * FAST.hello_interval_s)
    route = stacks[0].table.lookup(1)
    assert route is not None and not route.direct
    assert route.metric == 4  # router-net-router-net-router
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_heal_restores_direct_spf_route():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.5)
    cluster.faults.repair("nic1.0")
    sim.run(until=sim.now + 2.0)
    route = stacks[0].table.lookup(1)
    assert route.direct


def test_stop_halts_hellos():
    sim, cluster, stacks, deployment = _rig()
    deployment.stop()
    sent = sum(r.hellos_sent.value for r in deployment.routers.values())
    sim.run(until=sim.now + 2.0)
    assert sum(r.hellos_sent.value for r in deployment.routers.values()) == sent


def test_spf_runs_counted_and_bounded():
    sim, cluster, stacks, deployment = _rig()
    runs = sum(r.spf_runs.value for r in deployment.routers.values())
    assert runs > 0
    # quiescent network: no further SPF churn (refresh excepted)
    sim.run(until=sim.now + 3.0)
    runs_after = sum(r.spf_runs.value for r in deployment.routers.values())
    assert runs_after - runs <= 4 * 4  # at most refresh-driven reinstalls

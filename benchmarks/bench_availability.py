"""EXP-AVAIL bench — downtime budgets and weighted-failure correction."""

import numpy as np

from repro.analysis import hub_nic_weight_ratio, pair_availability, simulate_weighted_success, success_probability


def test_downtime_hierarchy(benchmark, capsys):
    def budgets():
        drs = pair_availability(12, 8_760, 24, repair_latency_s=1.1)
        reactive = pair_availability(12, 8_760, 24, repair_latency_s=9.0)
        return drs, reactive

    drs, reactive = benchmark(budgets)
    with capsys.disabled():
        print(
            f"\nN=12: DRS {drs.downtime_minutes_per_year:.1f} min/yr "
            f"({drs.nines:.2f} nines) vs reactive {reactive.downtime_minutes_per_year:.1f} min/yr"
        )
    assert drs.downtime_minutes_per_year < reactive.downtime_minutes_per_year
    assert drs.nines > 4


def test_weighted_failures_lower_survivability(benchmark):
    rng = np.random.default_rng(3)

    def weighted():
        ratio = hub_nic_weight_ratio(16)
        return simulate_weighted_success(16, 3, 150_000, rng, hub_weight=ratio)

    weighted_p = benchmark.pedantic(weighted, rounds=1, iterations=1, warmup_rounds=0)
    assert weighted_p < success_probability(16, 3)

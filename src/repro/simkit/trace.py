"""Measurement primitives: counters, time-weighted values, event traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.simkit.simulator import Simulator


class Counter:
    """A monotonically accumulating scalar (packets sent, bits on wire, ...)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` and record one contributing event."""
        self.value += amount
        self.events += 1

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0.0
        self.events = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value}, events={self.events})"


class TimeWeightedValue:
    """Tracks a piecewise-constant signal and integrates it over time.

    Used for e.g. instantaneous link utilization and queue depth; the
    time-weighted mean is the integral divided by observed duration.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value = initial
        self._last_change = sim.now
        self._integral = 0.0
        self._t0 = sim.now

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def set(self, value: float) -> None:
        """Step the signal to a new level at the current simulation time."""
        now = self.sim.now
        self._integral += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        """Step the signal by ``delta``."""
        self.set(self._value + delta)

    def mean(self, until: float | None = None) -> float:
        """Time-weighted mean over the observation window.

        The window runs from construction (or the last :meth:`reset`) to
        ``until``, defaulting to the current simulation time.  ``until``
        must not precede the last recorded change — the signal's history
        before that point has already been folded into the integral.
        """
        if until is None:
            until = self.sim.now
        if until < self._last_change:
            raise ValueError(
                f"until={until} precedes the last change at {self._last_change}; "
                "windowed means can only extend forward"
            )
        duration = until - self._t0
        if duration <= 0:
            return self._value
        integral = self._integral + self._value * (until - self._last_change)
        return integral / duration

    def reset(self, value: float | None = None) -> None:
        """Restart the observation window at the current simulation time.

        The signal level carries over unless ``value`` is given, so windowed
        utilization measurements no longer require rebuilding the object
        mid-run.
        """
        now = self.sim.now
        if value is not None:
            self._value = float(value)
        self._integral = 0.0
        self._last_change = now
        self._t0 = now


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event: time, category, and free-form fields."""

    time: float
    category: str
    fields: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only structured trace with category filtering.

    A shared recorder is threaded through the network model; tests and
    experiments query it instead of scraping stdout.

    Hooks are for *exporting* entries (streaming JSONL writers, span
    mirrors); an export failure must never corrupt the trace or abort the
    simulation.  A hook that raises is therefore detached after its first
    failure and the exception kept in :attr:`hook_errors` — the trace entry
    itself is always appended before any hook runs.
    """

    def __init__(self, sim: Simulator, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self._entries: list[TraceEntry] = []
        self._by_category: dict[str, list[TraceEntry]] = {}
        self._hooks: list[Callable[[TraceEntry], None]] = []
        self._disabled: set[str] = set()
        #: exceptions raised by detached hooks, in detachment order
        self.hook_errors: list[Exception] = []

    def record(self, category: str, **fields: Any) -> None:
        """Record one event at the current simulation time."""
        if not self.enabled or category in self._disabled:
            return
        entry = TraceEntry(time=self.sim.now, category=category, fields=fields)
        self._entries.append(entry)
        bucket = self._by_category.get(category)
        if bucket is None:
            self._by_category[category] = [entry]
        else:
            bucket.append(entry)
        if self._hooks:
            self._dispatch(entry)

    def _dispatch(self, entry: TraceEntry) -> None:
        failed: list[Callable[[TraceEntry], None]] = []
        for hook in self._hooks:
            try:
                hook(entry)
            except Exception as exc:  # noqa: BLE001 - export must not kill the sim
                self.hook_errors.append(exc)
                failed.append(hook)
        for hook in failed:
            self._hooks.remove(hook)

    # ----------------------------------------------------------- hot-path gate
    def wants(self, category: str) -> bool:
        """True iff a :meth:`record` for this category would be kept.

        Hot paths check this before assembling expensive field values, so a
        disabled category costs one set lookup instead of a dict build.
        """
        return self.enabled and category not in self._disabled

    def disable_category(self, *categories: str) -> None:
        """Silently drop future entries in these categories."""
        self._disabled.update(categories)

    def enable_category(self, *categories: str) -> None:
        """Re-admit previously disabled categories."""
        self._disabled.difference_update(categories)

    def set_category_filter(self, disabled: "set[str] | list[str] | tuple[str, ...]") -> None:
        """Replace the disabled-category set wholesale."""
        self._disabled = set(disabled)

    def add_hook(self, hook: Callable[[TraceEntry], None]) -> None:
        """Invoke ``hook`` synchronously for every future entry."""
        self._hooks.append(hook)

    def entries(self, category: str | None = None) -> list[TraceEntry]:
        """All entries, optionally restricted to one category."""
        if category is None:
            return list(self._entries)
        return list(self._by_category.get(category, ()))

    def iter_entries(self, category: str | None = None) -> Iterator[TraceEntry]:
        """Lazily iterate entries, optionally restricted to one category."""
        source = self._entries if category is None else self._by_category.get(category, ())
        yield from source

    def count(self, category: str) -> int:
        """Number of entries in a category (O(1) via the per-category index)."""
        bucket = self._by_category.get(category)
        return len(bucket) if bucket is not None else 0

    def last(self, category: str) -> TraceEntry | None:
        """Most recent entry in a category, or ``None`` (O(1))."""
        bucket = self._by_category.get(category)
        return bucket[-1] if bucket else None

    def clear(self) -> None:
        """Drop all recorded entries (hooks stay registered)."""
        self._entries.clear()
        self._by_category.clear()

    def __len__(self) -> int:
        return len(self._entries)

"""End-to-end tests: artifact emission from both CLIs and ``repro obs``."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.runner import main as experiments_main
from repro.obs import load_manifest, uninstall_profiling
from repro.obs.cli import main as obs_main
from repro.scenario.cli import main as sim_main


@pytest.fixture(autouse=True)
def _no_profiling_leak():
    # both CLIs install the global profiling hook; undo it after each test
    yield
    uninstall_profiling()


@pytest.fixture(scope="module")
def scenario_file(tmp_path_factory):
    spec = {
        "name": "obs-smoke",
        "nodes": 4,
        "duration_s": 4.0,
        "protocol": {"kind": "drs", "sweep_period_s": 0.2, "probe_timeout_s": 0.01},
        "faults": [{"at": 1.0, "fail": "nic1.0"}, {"at": 3.0, "repair": "nic1.0"}],
    }
    path = tmp_path_factory.mktemp("spec") / "obs_smoke.json"
    path.write_text(json.dumps(spec))
    return path


def test_experiments_runner_writes_manifest_and_metrics(tmp_path, capsys):
    assert experiments_main(["figure3", "--quick", "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "figure3.manifest.json")
    assert manifest.kind == "experiment"
    assert manifest.seed == 2000
    assert manifest.config_hash and manifest.wall_seconds > 0
    snapshot_names = {
        json.loads(line)["name"]
        for line in (tmp_path / "figure3.metrics.jsonl").read_text().splitlines()
    }
    # the stable core schema is present even though figure3 is pure Monte Carlo
    assert {"drs_probe_rtt_seconds", "drs_failover_latency_seconds", "sim_events_per_second"} <= snapshot_names
    mc_rows = [
        json.loads(line)
        for line in (tmp_path / "figure3.metrics.jsonl").read_text().splitlines()
        if json.loads(line)["name"] == "mc_iterations_total"
    ]
    assert mc_rows[0]["value"] > 0
    assert "# TYPE drs_probe_rtt_seconds histogram" in (tmp_path / "figure3.metrics.prom").read_text()


def test_experiments_runner_no_metrics_flag(tmp_path):
    assert experiments_main(["figure3", "--quick", "--no-metrics", "--out", str(tmp_path)]) == 0
    assert not (tmp_path / "figure3.manifest.json").exists()
    assert not list(tmp_path.glob("*.metrics.*"))


def test_drs_sim_metrics_out(tmp_path, scenario_file, capsys):
    obs_dir = tmp_path / "obs"
    assert sim_main([str(scenario_file), "--metrics-out", str(obs_dir)]) == 0
    manifest = load_manifest(obs_dir / "obs-smoke.manifest.json")
    assert manifest.kind == "scenario"
    assert manifest.event_count > 0
    assert manifest.extra["source"] == str(scenario_file)
    parsed = [
        json.loads(line)
        for line in (obs_dir / "obs-smoke.metrics.jsonl").read_text().splitlines()
    ]
    rows = {row["name"]: row for row in parsed if "labels" not in row}
    # a live DRS scenario exercises the probe path and the simulator profile
    assert rows["drs_probe_rtt_seconds"]["count"] > 0
    assert rows["drs_probes_sent_total"]["value"] > 0
    assert rows["sim_events_total"]["value"] == manifest.event_count
    assert rows["sim_events_per_second"]["value"] > 0
    trace_lines = (obs_dir / "obs-smoke.trace.jsonl").read_text().splitlines()
    assert trace_lines and all("category" in json.loads(line) for line in trace_lines)


def test_obs_cli_renders_directory(tmp_path, scenario_file, capsys):
    obs_dir = tmp_path / "obs"
    assert sim_main([str(scenario_file), "--metrics-out", str(obs_dir)]) == 0
    capsys.readouterr()
    assert obs_main([str(obs_dir)]) == 0
    out = capsys.readouterr().out
    assert "manifest: obs-smoke.manifest.json" in out
    assert "metrics: obs-smoke.metrics.jsonl" in out
    assert "prometheus snapshot: obs-smoke.metrics.prom" in out
    assert "trace: obs-smoke.trace.jsonl" in out
    assert "drs_probe_rtt_seconds" in out


def test_obs_cli_errors(tmp_path, capsys):
    assert obs_main([str(tmp_path / "missing.manifest.json")]) == 1
    assert obs_main([str(tmp_path)]) == 1  # empty dir: nothing to show
    stray = tmp_path / "notes.txt"
    stray.write_text("hello")
    assert obs_main([str(stray)]) == 1
    assert "unrecognized artifact" in capsys.readouterr().err


def test_python_m_repro_obs_verb(tmp_path, scenario_file, capsys):
    obs_dir = tmp_path / "obs"
    assert sim_main([str(scenario_file), "--metrics-out", str(obs_dir)]) == 0
    capsys.readouterr()
    assert repro_main(["obs", str(obs_dir / "obs-smoke.manifest.json")]) == 0
    assert "manifest: obs-smoke.manifest.json" in capsys.readouterr().out
    assert repro_main(["bogus"]) == 2
    assert repro_main([]) == 0

"""Common experiment-result container and report rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.viz import line_chart, render_table, write_csv
from repro.viz.svg import svg_line_chart


@dataclass
class Table:
    """One named table of results."""

    headers: list[str]
    rows: list[list[Any]]
    caption: str = ""


@dataclass
class Series:
    """One named family of (x, y) curves for a figure."""

    curves: dict[str, tuple[Sequence[float], Sequence[float]]]
    x_label: str = ""
    y_label: str = ""
    x_log: bool = False
    y_log: bool = False
    caption: str = ""


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: provenance for the run manifest: seed, iteration counts, parameters —
    #: whatever is needed to rerun this exact result
    meta: dict[str, Any] = field(default_factory=dict)

    def add_table(self, key: str, headers: list[str], rows: list[list[Any]], caption: str = "") -> None:
        """Attach a table under ``key``."""
        self.tables[key] = Table(headers=headers, rows=rows, caption=caption)

    def add_series(self, key: str, curves: dict, caption: str = "", **axis: Any) -> None:
        """Attach a curve family under ``key``."""
        self.series[key] = Series(curves=curves, caption=caption, **axis)

    def note(self, text: str) -> None:
        """Attach a free-form observation to the report."""
        self.notes.append(text)

    # -------------------------------------------------------------- rendering
    def render(self, chart_width: int = 72, chart_height: int = 18) -> str:
        """Full text report: tables, ASCII charts, notes."""
        parts = [f"=== {self.name} ==="]
        for key, table in self.tables.items():
            parts.append(render_table(table.headers, table.rows, title=table.caption or key))
        for key, s in self.series.items():
            parts.append(
                line_chart(
                    s.curves,
                    width=chart_width,
                    height=chart_height,
                    title=s.caption or key,
                    x_label=s.x_label,
                    y_label=s.y_label,
                    x_log=s.x_log,
                    y_log=s.y_log,
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def render_html(self) -> str:
        """HTML fragment: tables, inline-SVG figures, notes."""
        from xml.sax.saxutils import escape

        parts = [f"<section><h2>{escape(self.name)}</h2>"]
        for key, table in self.tables.items():
            parts.append(f"<h3>{escape(table.caption or key)}</h3><table border='1' cellspacing='0' cellpadding='4'>")
            parts.append("<tr>" + "".join(f"<th>{escape(str(h))}</th>" for h in table.headers) + "</tr>")
            for row in table.rows:
                cells = "".join(
                    f"<td>{escape(f'{v:.6g}' if isinstance(v, float) else str(v))}</td>" for v in row
                )
                parts.append(f"<tr>{cells}</tr>")
            parts.append("</table>")
        for key, s in self.series.items():
            parts.append(
                svg_line_chart(
                    s.curves,
                    title=s.caption or key,
                    x_label=s.x_label,
                    y_label=s.y_label,
                    x_log=s.x_log,
                    y_log=s.y_log,
                )
            )
        for note in self.notes:
            parts.append(f"<p><em>{escape(note)}</em></p>")
        parts.append("</section>")
        return "\n".join(parts)

    def write(self, out_dir: str | Path) -> list[Path]:
        """Write the text report plus one CSV per table and per series."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        written = []
        report = out_dir / f"{self.name}.txt"
        report.write_text(self.render() + "\n")
        written.append(report)
        for key, table in self.tables.items():
            written.append(write_csv(out_dir / f"{self.name}_{key}.csv", table.headers, table.rows))
        for key, s in self.series.items():
            headers = ["x"] + list(s.curves)
            xs = None
            aligned = True
            for curve_x, _ in s.curves.values():
                if xs is None:
                    xs = list(curve_x)
                elif list(curve_x) != xs:
                    aligned = False
            if aligned and xs is not None:
                rows = [[x, *(list(ys)[i] for _, ys in s.curves.values())] for i, x in enumerate(xs)]
                written.append(write_csv(out_dir / f"{self.name}_{key}.csv", headers, rows))
            else:
                # unaligned x grids: long format
                rows = [
                    [name, x, y]
                    for name, (curve_x, curve_y) in s.curves.items()
                    for x, y in zip(curve_x, curve_y)
                ]
                written.append(write_csv(out_dir / f"{self.name}_{key}.csv", ["series", "x", "y"], rows))
        return written


def collect_precision_cells(values: dict[str, Any], prefix: str = "mc/n=") -> list[dict[str, Any]]:
    """Flatten curve-level precision rows into per-cell dicts.

    Reads every ``{prefix}{n}`` job row whose entries are
    :meth:`~repro.obs.precision.CellPrecision.to_row` dicts (plain-float
    rows and quarantined jobs contribute nothing), returning the row shape
    :func:`~repro.obs.precision.precision_report` consumes.
    """
    cells: list[dict[str, Any]] = []
    for job_name, row in values.items():
        if not job_name.startswith(prefix) or not isinstance(row, dict):
            continue
        n = int(job_name[len(prefix):])
        for key, entry in row.items():
            if not isinstance(entry, dict) or "p" not in entry:
                continue
            cell = {
                "n": n,
                "f": int(key),
                "point": float(entry["p"]),
                "low": float(entry["low"]),
                "high": float(entry["high"]),
                "successes": int(entry.get("successes", 0)),
                "trials": int(entry["trials"]),
                "half_width": (float(entry["high"]) - float(entry["low"])) / 2.0,
                "target": entry.get("target"),
                "met": bool(entry.get("met", False)),
            }
            if entry.get("topology") is not None:
                cell["topology"] = entry["topology"]
            cell["method"] = str(entry.get("method", "wilson"))
            if entry.get("std_error") is not None:
                cell["std_error"] = float(entry["std_error"])
            cells.append(cell)
    return cells


def add_precision_artifacts(
    result: ExperimentResult,
    cells: list[dict[str, Any]],
    target: float | None,
    confidence: float,
) -> None:
    """Attach per-cell CI quality to a sweep result (table + manifest block).

    ``cells`` are precision rows (``n``, ``f``, ``point``, ``low``,
    ``high``, ``trials``, ``half_width``, optional ``target``/``met``), one
    per (N, f) grid cell.  Adds the ``mc_precision`` table — which
    :meth:`ExperimentResult.write` turns into a CSV with ci_low/ci_high/
    trials columns — and folds the cells plus the
    :func:`~repro.obs.precision.precision_report` summary into
    ``result.meta["precision"]``, which the runner copies into the run
    manifest (``repro obs precision`` reads it back from there).
    """
    from repro.obs.precision import precision_report

    if not cells:
        return
    report = precision_report(cells, target=target)
    result.add_table(
        "mc_precision",
        ["n", "f", "p", "ci_low", "ci_high", "trials", "half_width", "met_target", "method"],
        [
            [
                c["n"],
                c["f"],
                float(c["point"]),
                float(c["low"]),
                float(c["high"]),
                int(c["trials"]),
                float(c["half_width"]),
                bool(c.get("met", False)) if target is not None else "-",
                str(c.get("method", "wilson")),
            ]
            for c in sorted(cells, key=lambda c: (c["n"], c["f"]))
        ],
        caption=f"Per-cell confidence intervals at {confidence:.3g} confidence",
    )
    block = {k: v for k, v in report.items() if k != "worst_cells"}
    block["confidence"] = confidence
    block["cells"] = cells
    result.meta["precision"] = block
    if target is not None:
        result.note(
            f"adaptive stopping: {report['met_target']}/{report['cells']} cells at "
            f"target half-width {target:g}; {report['total_trials']:,} trials vs "
            f"{report['fixed_equivalent_trials']:,} fixed-count equivalent "
            f"({report['trials_saved_fraction']:.0%} saved)"
        )


def write_html_index(results: list["ExperimentResult"], out_dir: str | Path) -> Path:
    """Write one self-contained HTML page covering all results."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    body = "\n".join(result.render_html() for result in results)
    page = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>DRS reproduction results</title>"
        "<style>body{font-family:sans-serif;max-width:960px;margin:2em auto;}"
        "table{border-collapse:collapse;margin:1em 0;}th{background:#f0f0f0;}"
        "td,th{text-align:right;}td:first-child,th:first-child{text-align:left;}</style>"
        "</head><body><h1>DRS network-survivability reproduction</h1>"
        f"{body}</body></html>"
    )
    path = out_dir / "index.html"
    path.write_text(page)
    return path

"""EXP-DES — proactive DRS versus reactive baselines, end to end.

The paper's qualitative claim — "the DRS's proactive routing policy performs
better than traditional routing systems by fixing network problems before
they effect application communication" — measured: a TCP-lite application
stream runs across the cluster while a failure is injected, under five
routing regimes (DRS, reactive rerouting, RIP-like distance vector,
OSPF-like link state, static routes).  Reported per regime and scenario:

* application-visible outage (worst delivered-message latency),
* delivered fraction and whether the stream recovered at all,
* routing-layer repair latency (from the trace),
* steady-state probe/advertisement overhead on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.baselines import (
    DistVectorConfig,
    LinkStateConfig,
    ReactiveConfig,
    install_distvector,
    install_linkstate,
    install_reactive,
    install_static_only,
)
from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Process, Simulator

#: Comparable timing configurations: DRS probes each link once a second;
#: the reactive/DV baselines use a classic 3 s / 9 s query/timeout scaling.
DRS_CONFIG = DrsConfig(sweep_period_s=1.0, probe_timeout_s=0.02, probe_retries=2, discovery_timeout_s=0.05)
REACTIVE_CONFIG = ReactiveConfig(query_interval_s=3.0, timeout_s=9.0)
DV_CONFIG = DistVectorConfig(advertise_interval_s=3.0, timeout_s=9.0)
LS_CONFIG = LinkStateConfig(hello_interval_s=3.0, dead_interval_s=9.0)

SCENARIOS: dict[str, list[str]] = {
    "peer-nic": ["nic1.0"],
    "own-nic": ["nic0.0"],
    "hub": ["hub0"],
    "crossed": ["nic0.1", "nic1.0"],
}

PROTOCOLS = ("drs", "reactive", "distvector", "linkstate", "static")


@dataclass
class FailoverOutcome:
    """Measured outcome of one (protocol, scenario) run."""

    protocol: str
    scenario: str
    sent: int
    delivered: int
    worst_latency_s: float
    recovered: bool
    repair_latency_s: float | None
    overhead_bps: float

    @property
    def delivered_fraction(self) -> float:
        """Share of application messages that were delivered."""
        return self.delivered / self.sent if self.sent else 0.0


def _install(protocol: str, cluster, stacks):
    if protocol == "drs":
        return install_drs(cluster, stacks, DRS_CONFIG)
    if protocol == "reactive":
        return install_reactive(cluster, stacks, REACTIVE_CONFIG)
    if protocol == "distvector":
        return install_distvector(cluster, stacks, DV_CONFIG)
    if protocol == "linkstate":
        return install_linkstate(cluster, stacks, LS_CONFIG)
    if protocol == "static":
        return install_static_only(cluster, stacks)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_one(
    protocol: str,
    scenario: str,
    n: int = 6,
    warmup_s: float = 20.0,
    post_failure_s: float = 60.0,
    message_interval_s: float = 0.1,
    message_bytes: int = 256,
) -> FailoverOutcome:
    """Run one protocol/scenario combination and measure the app stream."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    _install(protocol, cluster, stacks)

    delivered: list[float] = []
    stacks[1].tcp.listen(9000, on_message=lambda conn, data, size: delivered.append(sim.now))
    conn = stacks[0].tcp.connect(1, 9000, initial_rto_s=1.0, max_retries=12, window_segments=16)
    sent_count = 0

    def app_stream():
        nonlocal sent_count
        while True:
            conn.send_message(data=sim.now, data_bytes=message_bytes)
            sent_count += 1
            yield message_interval_s

    Process(sim, app_stream(), name="app")
    sim.run(until=warmup_s)

    # measure steady-state control overhead over the last part of the warmup
    overhead_window = warmup_s / 2
    bits_mid = sum(bp.bits_carried.value for bp in cluster.backplanes)
    sim.run(until=warmup_s + overhead_window)
    bits_end = sum(bp.bits_carried.value for bp in cluster.backplanes)
    app_bits = overhead_window / message_interval_s * (message_bytes + 58 + 20) * 8 * 2  # rough data+ack
    overhead_bps = max(0.0, (bits_end - bits_mid - app_bits) / overhead_window)

    t_fail = sim.now
    for component in SCENARIOS[scenario]:
        cluster.faults.fail(component)
    sim.run(until=t_fail + post_failure_s)

    latencies = conn.message_latencies
    worst = max(latencies.values()) if latencies else float("inf")
    # recovered: a message sent well after the failure got delivered
    recovered = bool(delivered) and delivered[-1] > t_fail + post_failure_s * 0.8

    repair_events = [
        e
        for category in ("drs-repair", "reactive-repair", "dv-route-change", "ls-route-change")
        for e in cluster.trace.entries(category)
        if e.time > t_fail and e.fields.get("node") == 0
    ]
    repair_latency = min((e.time - t_fail) for e in repair_events) if repair_events else None

    return FailoverOutcome(
        protocol=protocol,
        scenario=scenario,
        sent=sent_count,
        delivered=len(latencies),
        worst_latency_s=worst,
        recovered=recovered,
        repair_latency_s=repair_latency,
        overhead_bps=overhead_bps,
    )


def run(
    protocols: tuple[str, ...] = PROTOCOLS,
    scenarios: tuple[str, ...] = tuple(SCENARIOS),
    n: int = 6,
    post_failure_s: float = 60.0,
) -> ExperimentResult:
    """Full protocol x scenario comparison matrix."""
    result = ExperimentResult("failover")
    rows = []
    for scenario in scenarios:
        for protocol in protocols:
            outcome = run_one(protocol, scenario, n=n, post_failure_s=post_failure_s)
            rows.append(
                [
                    scenario,
                    protocol,
                    outcome.delivered_fraction,
                    outcome.worst_latency_s,
                    outcome.repair_latency_s if outcome.repair_latency_s is not None else float("nan"),
                    outcome.recovered,
                    outcome.overhead_bps / 1e3,
                ]
            )
    result.add_table(
        "matrix",
        ["scenario", "protocol", "delivered", "worst latency (s)", "repair latency (s)", "recovered", "overhead (kb/s)"],
        rows,
        caption="Application stream across an injected failure, per routing regime",
    )
    result.note(
        "expected shape: DRS repairs within ~1 sweep (worst app latency around the "
        "TCP RTO), reactive/DV repair only after their multi-second timeout, and "
        "static routing never recovers on the failed network."
    )
    return result


register(
    ExperimentSpec(
        name="failover",
        run=run,
        profiles={"quick": {"post_failure_s": 30.0}, "full": {}},
        order=60,
        description="proactive vs reactive outage (DES)",
    )
)

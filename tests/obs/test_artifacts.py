"""Unit tests for run manifests and artifact writers."""

import json

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    load_manifest,
    spec_hash,
    write_metrics_files,
    write_trace_jsonl,
)
from repro.simkit import Simulator, TraceRecorder


def test_spec_hash_is_order_insensitive_and_stable():
    a = spec_hash({"x": 1, "y": [1, 2]})
    b = spec_hash({"y": [1, 2], "x": 1})
    assert a == b and len(a) == 16
    assert spec_hash({"x": 2, "y": [1, 2]}) != a


def test_manifest_build_write_load_roundtrip(tmp_path):
    manifest = RunManifest.build(
        name="figure2",
        kind="experiment",
        seed=2000,
        config={"mc_iterations": 100},
        wall_seconds=1.25,
        event_count=42,
        quick=True,
    )
    assert manifest.config_hash == spec_hash({"mc_iterations": 100})
    assert manifest.package_version
    assert manifest.extra == {"quick": True}

    path = manifest.write(tmp_path / "figure2.manifest.json")
    loaded = load_manifest(path)
    assert loaded.name == "figure2"
    assert loaded.seed == 2000
    assert loaded.event_count == 42
    assert loaded.extra == {"quick": True}
    assert loaded.config == {"mc_iterations": 100}


def test_load_manifest_preserves_unknown_keys(tmp_path):
    path = tmp_path / "m.json"
    raw = {
        "name": "x",
        "kind": "scenario",
        "seed": None,
        "config": {},
        "config_hash": "abc",
        "wall_seconds": 0.1,
        "event_count": 0,
        "package_version": "1.0.0",
        "future_field": "kept",
    }
    path.write_text(json.dumps(raw))
    loaded = load_manifest(path)
    assert loaded.extra["future_field"] == "kept"


def test_write_metrics_files_pair(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c").add(3)
    paths = write_metrics_files(reg, tmp_path, "run1")
    jsonl, prom = paths
    assert jsonl.name == "run1.metrics.jsonl" and prom.name == "run1.metrics.prom"
    row = json.loads(jsonl.read_text().splitlines()[0])
    assert row == {"name": "c", "kind": "counter", "value": 3.0, "events": 1}
    assert "# TYPE c counter" in prom.read_text()


def test_write_trace_jsonl(tmp_path):
    sim = Simulator()
    trace = TraceRecorder(sim)
    sim.schedule(1.0, lambda: trace.record("fault", component="nic0", detail=object()))
    sim.run()
    path = write_trace_jsonl(trace, tmp_path / "run1.trace.jsonl")
    (line,) = path.read_text().splitlines()
    row = json.loads(line)
    assert row["time"] == 1.0 and row["category"] == "fault"
    assert row["component"] == "nic0"
    # non-serializable fields fall back to repr instead of crashing the dump
    assert "object" in row["detail"]

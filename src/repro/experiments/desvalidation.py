"""EXP-DESVAL — the protocol implementation matches the probability model.

Equation 1 and the Monte Carlo of Figure 3 evaluate an *abstract* predicate
("some DRS route exists").  This experiment closes the loop against the
*implemented* protocol: inject exactly-f uniform component failures into a
live DES cluster running real DRS daemons, let them repair, then test pair
reachability with a routed ping.  The empirical success rate over many
replicates should match Equation 1 within binomial noise — demonstrating
that the deployed-protocol behaviour and the paper's model agree.

Replicates are independent simulations, so both drivers decompose into one
engine job per replicate, each with a spawned seed keyed by
``(n, f, replicate index)`` — deterministic for a given root seed on any
executor backend and worker count.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import success_probability
from repro.drs import DrsConfig, install_drs
from repro.engine import ExperimentSpec, Job, JobPlan, register, run_plan
from repro.experiments.base import ExperimentResult
from repro.netsim import build_dual_backplane_cluster
from repro.obs.progress import heartbeat
from repro.protocols import PingStatus, install_stacks
from repro.simkit import Simulator

#: Fast timings so each replicate settles in ~2 simulated seconds.
VALIDATION_CONFIG = DrsConfig(
    sweep_period_s=0.1,
    probe_timeout_s=0.01,
    probe_retries=2,
    discovery_timeout_s=0.02,
    path_check_period_s=0.25,
)


def one_replicate(n: int, f: int, rng: np.random.Generator, settle_s: float = 2.0) -> bool:
    """One trial: build, warm up, fail f components, settle, ping 0 -> 1."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    cluster.trace.enabled = False  # keep replicates cheap
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, VALIDATION_CONFIG)
    sim.run(until=1.0)
    cluster.faults.apply_exact_failures(f, rng)
    sim.run(until=1.0 + settle_s)
    results = []
    stacks[0].icmp.ping(1, timeout_s=0.05, callback=results.append)
    sim.run(until=sim.now + 0.2)
    return bool(results) and results[0].status is PingStatus.REPLY


def _seeded_replicate(args: tuple[int, int, int]) -> bool:
    """Worker entry point: one replicate from an explicit seed (picklable)."""
    n, f, seed = args
    return one_replicate(n, f, np.random.default_rng(seed))


def _replicate_job(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> bool:
    """Engine job: one live-DES replicate at (n, f)."""
    outcome = one_replicate(params["n"], params["f"], np.random.default_rng(seed_seq))
    hb = heartbeat()
    if hb is not None:
        hb.add(1, **({} if outcome else {"pair_down": 1}))
    return outcome


def empirical_success(
    n: int,
    f: int,
    replicates: int,
    rng: np.random.Generator,
    workers: int | None = None,
) -> float:
    """Empirical pair-survivability of the implemented protocol.

    Standalone helper (the experiment drivers below go through the engine):
    replicates are independent simulations, so they parallelize perfectly;
    ``workers`` > 1 fans them out over a process pool with per-replicate
    seeds drawn up front (the result is deterministic for a given ``rng``
    state regardless of worker count or scheduling).
    """
    if workers is None or workers <= 1:
        return sum(one_replicate(n, f, rng) for _ in range(replicates)) / replicates
    from concurrent.futures import ProcessPoolExecutor

    seeds = rng.integers(0, 2**63 - 1, size=replicates)
    jobs = [(n, f, int(seed)) for seed in seeds]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_seeded_replicate, jobs, chunksize=max(1, replicates // (4 * workers))))
    return sum(outcomes) / replicates


def _replicate_jobs(pairs: list[tuple[int, int]], replicates: int) -> list[Job]:
    """One job per (n, f, replicate index)."""
    return [
        Job(name=f"rep/n={n}/f={f}/i={i}", fn=_replicate_job, params={"n": n, "f": f})
        for n, f in pairs
        for i in range(replicates)
    ]


def _success_rate(values: dict[str, Any], n: int, f: int, replicates: int) -> float:
    # quarantined replicates are absent; the rate uses whichever completed
    present = [values[k] for i in range(replicates) if (k := f"rep/n={n}/f={f}/i={i}") in values]
    if not present:
        return float("nan")
    return sum(bool(v) for v in present) / len(present)


def build_curve_plan(
    f: int = 2,
    n_values: tuple[int, ...] = (4, 6, 8, 10, 12),
    replicates: int = 100,
    seed: int = 2024,
) -> JobPlan:
    """Replicate jobs for the live-protocol survivability curve at fixed f."""
    jobs = _replicate_jobs([(n, f) for n in n_values], replicates)

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("desvalidation_curve")
        result.meta = {"seed": seed, "f": f, "n_values": list(n_values), "replicates": replicates}
        ns = list(n_values)
        measured = [_success_rate(values, n, f, replicates) for n in ns]
        analytic = [success_probability(n, f) for n in ns]
        result.add_series(
            "curve",
            {"Equation 1": (ns, analytic), "DES (live DRS)": (ns, measured)},
            caption=f"Live-protocol Figure 2 slice: P[Success] vs N at f={f}",
            x_label="nodes",
            y_label="P[Success]",
        )
        rows = [
            [n, m, a, m - a, 2 * float(np.sqrt(max(a * (1 - a), 1e-9) / replicates))]
            for n, m, a in zip(ns, measured, analytic)
        ]
        result.add_table(
            "curve_points",
            ["N", "DES measured", "Equation 1", "difference", "2-sigma binomial"],
            rows,
            caption=f"{replicates} replicates per point",
        )
        worst = max(abs(r[3]) for r in rows)
        result.note(f"worst |DES - Equation 1| along the curve: {worst:.4f}")
        return result

    return JobPlan(experiment="desvalidation_curve", seed=seed, jobs=jobs, reduce=reduce)


def run_curve(
    f: int = 2,
    n_values: tuple[int, ...] = (4, 6, 8, 10, 12),
    replicates: int = 100,
    seed: int = 2024,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """A live-protocol Figure 2: DES survivability vs N at fixed f.

    The paper's Figure 2 plots Equation 1; this sweeps the *implemented*
    protocol over cluster sizes and overlays both — the strongest form of
    the model-vs-system agreement claim.
    """
    plan = build_curve_plan(f=f, n_values=n_values, replicates=replicates, seed=seed)
    return run_plan(plan, executor, checkpoint=checkpoint)


def build_plan(
    n: int = 8,
    f_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    replicates: int = 120,
    seed: int = 2000,
) -> JobPlan:
    """Replicate jobs for the empirical-vs-analytic table at one cluster size."""
    jobs = _replicate_jobs([(n, f) for f in f_values], replicates)

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("desvalidation")
        result.meta = {"seed": seed, "n": n, "f_values": list(f_values), "replicates": replicates}
        rows = []
        for f in f_values:
            measured = _success_rate(values, n, f, replicates)
            expected = success_probability(n, f)
            stderr = float(np.sqrt(max(expected * (1 - expected), 1e-9) / replicates))
            rows.append([n, f, replicates, measured, expected, measured - expected, 2 * stderr])
        result.add_table(
            "validation",
            ["N", "f", "replicates", "DES measured", "Equation 1", "difference", "2-sigma binomial"],
            rows,
            caption="Live-protocol survivability vs the analytic model",
        )
        worst = max(abs(r[5]) for r in rows)
        result.note(f"worst |DES - Equation 1| = {worst:.4f} over {len(rows)} (N,f) points")
        return result

    return JobPlan(experiment="desvalidation", seed=seed, jobs=jobs, reduce=reduce)


def run(
    n: int = 8,
    f_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    replicates: int = 120,
    seed: int = 2000,
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Empirical-vs-analytic comparison table for one cluster size."""
    plan = build_plan(n=n, f_values=f_values, replicates=replicates, seed=seed)
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="desval",
        run=run,
        profiles={"quick": {"replicates": 30, "f_values": (2, 3, 4)}, "full": {}},
        parallel=True,
        order=70,
        description="DES survivability vs Equation 1",
    )
)

register(
    ExperimentSpec(
        name="desval-curve",
        run=run_curve,
        profiles={"quick": {"replicates": 25, "n_values": (4, 6, 8)}, "full": {}},
        parallel=True,
        order=130,
        description="live-protocol Figure 2 slice at fixed f",
    )
)

"""Network substrate: the physical model of a dual-backplane server cluster.

This package models the exact topology the DRS paper evaluates: N servers,
each with two NICs, attached to two separate, non-meshed backplanes (hubs).
It provides

* :class:`~repro.netsim.backplane.Backplane` — a shared-medium hub with a
  finite bit rate, propagation delay, FIFO serialization, and utilization
  accounting (the 100 Mb/s network of Figure 1),
* :class:`~repro.netsim.nic.Nic` — a failable network interface,
* :class:`~repro.netsim.node.Node` — a server chassis holding NICs and
  dispatching received frames to registered handlers (the protocol stack
  from :mod:`repro.protocols` registers itself here),
* :class:`~repro.netsim.faults.FaultInjector` — scripted and random failure
  scenarios over the component universe the paper's probability model
  counts (2N NICs + 2 hubs),
* :func:`~repro.netsim.topology.build_dual_backplane_cluster` — the
  canonical topology builder.

Frame sizes follow minimal-Ethernet framing so that an ICMP echo occupies 84
bytes on the wire per direction — the calibration that reproduces Figure 1's
"90 hosts in under a second at 10% bandwidth" checkpoint (see DESIGN.md §2).
"""

from repro.netsim.addresses import BROADCAST_NODE, InterfaceAddr, NetworkId, NodeId
from repro.netsim.frames import (
    ETHER_OVERHEAD_BYTES,
    MIN_FRAME_BYTES,
    PREAMBLE_IFG_BYTES,
    Frame,
    wire_bytes,
)
from repro.netsim.component import Component, ComponentKind
from repro.netsim.backplane import Backplane
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.netsim.faults import FaultInjector, FaultScenario, component_universe
from repro.netsim.capture import CapturedFrame, FrameCapture
from repro.netsim.switch import Switch, build_dual_switched_cluster
from repro.netsim.topology import Cluster, build_dual_backplane_cluster

__all__ = [
    "NodeId",
    "NetworkId",
    "InterfaceAddr",
    "BROADCAST_NODE",
    "Frame",
    "wire_bytes",
    "ETHER_OVERHEAD_BYTES",
    "MIN_FRAME_BYTES",
    "PREAMBLE_IFG_BYTES",
    "Component",
    "ComponentKind",
    "Backplane",
    "Nic",
    "Node",
    "FaultInjector",
    "FaultScenario",
    "component_universe",
    "FrameCapture",
    "CapturedFrame",
    "Cluster",
    "build_dual_backplane_cluster",
    "Switch",
    "build_dual_switched_cluster",
]

"""Phase one of the DRS daemon loop: proactive link monitoring.

The monitor walks the (peer, network) link list in a fixed round-robin,
sending one direct ICMP echo per slot, with slots spaced so a full sweep
takes ``config.sweep_period_s``.  That spreading is what keeps the probe
load at the budgeted fraction of segment bandwidth instead of bursting —
and it is the knob Figure 1 trades against detection latency.
"""

from __future__ import annotations

from typing import Callable

from repro.drs.config import DrsConfig
from repro.drs.state import PeerTable
from repro.obs.metrics import MetricsRegistry, resolve_registry
from repro.obs.spans import span_log
from repro.protocols.icmp import IcmpService, PingResult, PingStatus
from repro.simkit import Counter, Process, Simulator, TraceRecorder


class LinkMonitor:
    """Round-robin prober for one daemon."""

    def __init__(
        self,
        sim: Simulator,
        icmp: IcmpService,
        table: PeerTable,
        config: DrsConfig,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.icmp = icmp
        self.table = table
        self.config = config
        self._spans = span_log(trace) if trace is not None else None
        self.probes_sent = Counter(f"drs{table.owner}.probes")
        self.probe_bytes = Counter(f"drs{table.owner}.probe_bytes")
        registry = resolve_registry(metrics)
        self._m_probes = registry.counter("drs_probes_sent_total")
        self._m_probe_bytes = registry.counter("drs_probe_bytes_total")
        self._m_rtt = registry.histogram("drs_probe_rtt_seconds")
        self._proc: Process | None = None
        self._outstanding = 0

    # ------------------------------------------------------------------ run
    def start(self) -> Process:
        """Start the monitoring process; returns it for lifecycle control."""
        if self._proc is not None and not self._proc.finished:
            raise RuntimeError("monitor already running")
        self._proc = Process(self.sim, self._run(), name=f"drs{self.table.owner}.monitor")
        return self._proc

    def stop(self) -> None:
        """Stop probing (outstanding probe timers still resolve)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    @property
    def running(self) -> bool:
        """True while the monitor loop is active."""
        return self._proc is not None and not self._proc.finished

    def _run(self):
        # Stagger daemons so the cluster's probes interleave instead of
        # synchronizing into bursts every sweep.
        links = self.table.links()
        if not links:
            return
        gap = self.config.sweep_period_s / len(links)
        yield (self.table.owner * gap) % self.config.sweep_period_s
        while True:
            for link in self.table.links():
                self._probe(link.peer, link.network)
                yield gap

    # ---------------------------------------------------------------- probe
    def _probe(self, peer: int, network: int) -> None:
        from repro.drs.config import PROBE_WIRE_BYTES

        self.probes_sent.add()
        self.probe_bytes.add(PROBE_WIRE_BYTES)
        self._m_probes.add()
        self._m_probe_bytes.add(PROBE_WIRE_BYTES)
        link = self.table.link(peer, network)
        link.last_probe_at = self.sim.now
        self._outstanding += 1
        self.icmp.ping_direct(
            network,
            peer,
            timeout_s=self.config.probe_timeout_s,
            callback=self._on_result,
        )

    def _on_result(self, result: PingResult) -> None:
        self._outstanding -= 1
        peer, network = result.dst_node, result.network
        if result.rtt_s is not None:
            self._m_rtt.observe(result.rtt_s)
        if result.status is PingStatus.REPLY:
            # (Reply wire bytes are accounted by the responder's backplane;
            # probe_bytes here tracks this daemon's request-side load.)
            self.table.record_success(peer, network, self.sim.now)
        else:
            self._span_probe_loss(peer, network, result.status.value)
            self.table.record_failure(peer, network, self.sim.now, self.config.probe_retries)

    def _span_probe_loss(self, peer: int, network: int, status: str) -> None:
        # Each lost probe becomes a child span of the open incident it is
        # (most likely) evidence of, spanning send time to timeout.
        spans = self._spans
        if spans is None or not spans.wants():
            return
        link = self.table.link(peer, network)
        spans.closed(
            f"probe-loss node{self.table.owner}->peer{peer}.{network}",
            "probe-loss",
            start=link.last_probe_at if link.last_probe_at is not None else self.sim.now,
            node=self.table.owner,
            parent=spans.find_incident(node=self.table.owner, peer=peer, network=network),
            peer=peer,
            network=network,
            status=status,
        )

    # ------------------------------------------------------------ diagnostics
    def immediate_recheck(self, peer: int, network: int, callback: Callable[[bool], None]) -> None:
        """Out-of-band single probe (used by failover to confirm an alternate).

        Invokes ``callback(is_up)`` and updates the peer table either way.
        """

        def on_result(result: PingResult) -> None:
            up = result.status is PingStatus.REPLY
            if result.rtt_s is not None:
                self._m_rtt.observe(result.rtt_s)
            if up:
                self.table.record_success(peer, network, self.sim.now)
            else:
                self._span_probe_loss(peer, network, result.status.value)
                self.table.record_failure(peer, network, self.sim.now, threshold=1)
            callback(up)

        from repro.drs.config import PROBE_WIRE_BYTES

        self.probes_sent.add()
        self.probe_bytes.add(PROBE_WIRE_BYTES)
        self._m_probes.add()
        self._m_probe_bytes.add(PROBE_WIRE_BYTES)
        self.icmp.ping_direct(network, peer, timeout_s=self.config.probe_timeout_s, callback=on_result)

"""Parallel execution engine for the experiment suite.

Three layers turn "regenerate every paper artifact" into work that scales
with cores while staying bit-for-bit reproducible from one integer seed:

* :mod:`repro.engine.spec` — the declarative registry:
  :class:`ExperimentSpec` (name, run callable, ``quick``/``full`` profiles),
  registered by each :mod:`repro.experiments.*` module at import time.
* :mod:`repro.engine.jobs` — :class:`Job` / :class:`JobPlan`: a sweep
  decomposed into independent units, each with a deterministic child seed
  spawned from ``(root seed, experiment, job name)``.
* :mod:`repro.engine.executors` — :class:`SerialExecutor` (default), the
  process-pool :class:`ParallelExecutor` (``drs-experiments --jobs N``),
  and the multi-host :class:`~repro.engine.distributed.DistributedExecutor`
  (``--backend distributed`` plus any number of ``drs-worker`` processes);
  both parallel backends merge per-worker metrics registries and heartbeat
  counts back into the parent run.

Fault tolerance rides on top (``drs-experiments --retries/--resume``):
:mod:`repro.engine.retry` gives both executors per-job retry budgets,
deterministic backoff, timeouts, and quarantine;
:mod:`repro.engine.checkpoint` streams completed jobs to a crash-safe
JSONL so an interrupted sweep resumes without repeating finished work.

See ``docs/engine.md`` for the seed-spawning contract and worked examples.
"""

from typing import Any

from repro.engine.checkpoint import Checkpoint, CheckpointRecord
from repro.engine.distributed import DistributedExecutor
from repro.engine.executors import (
    ParallelExecutor,
    PlanExecution,
    PlanInterrupted,
    SerialExecutor,
    make_executor,
)
from repro.engine.jobs import Job, JobFn, JobPlan, cell_point, curve_value
from repro.engine.retry import (
    FAIL_FAST,
    JobError,
    JobOutcome,
    JobTimeoutError,
    RetryPolicy,
)
from repro.engine.spec import (
    ExperimentSpec,
    experiment_specs,
    get_spec,
    register,
    spec_names,
)


def run_plan(
    plan: JobPlan, executor: Any | None = None, checkpoint: Checkpoint | None = None
) -> Any:
    """Execute a plan on an executor (default serial) and reduce the values.

    With a ``checkpoint``, jobs it already holds are skipped and every newly
    completed job is streamed into it (crash-safe), which is what backs
    ``drs-experiments --resume``.

    The reduced result's ``meta`` — when it has one, as every
    :class:`~repro.experiments.base.ExperimentResult` does — gains an
    ``engine`` section recording backend, worker count, job count, root
    seed, the per-job seed fingerprints, and the fault-tolerance tallies
    (attempts per executed job, total retries, quarantined/timed-out job
    names, jobs resumed from checkpoint, pool respawns), which the runner
    folds into the run manifest.
    """
    executor = executor if executor is not None else SerialExecutor()
    execution = executor.run(plan, checkpoint=checkpoint)
    result = plan.reduce(execution.values)
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        meta["engine"] = {
            "backend": execution.backend,
            "workers": execution.workers,
            "jobs": len(plan.jobs),
            "root_seed": plan.seed,
            "job_seeds": execution.job_seeds,
            "attempts": execution.attempts,
            "retries": execution.retries,
            "quarantined": sorted(execution.quarantined),
            "timed_out": sorted(execution.timed_out),
            "resumed": sorted(execution.resumed),
            "pool_respawns": execution.pool_respawns,
        }
        if execution.hosts:
            meta["engine"]["hosts"] = execution.hosts
    return result


__all__ = [
    "ExperimentSpec",
    "register",
    "get_spec",
    "experiment_specs",
    "spec_names",
    "Job",
    "JobFn",
    "JobPlan",
    "curve_value",
    "cell_point",
    "JobError",
    "JobTimeoutError",
    "JobOutcome",
    "RetryPolicy",
    "FAIL_FAST",
    "Checkpoint",
    "CheckpointRecord",
    "SerialExecutor",
    "ParallelExecutor",
    "DistributedExecutor",
    "PlanExecution",
    "PlanInterrupted",
    "make_executor",
    "run_plan",
]

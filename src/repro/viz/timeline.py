"""Outage/repair timelines rendered from the simulation trace.

Turns the structured trace (fault, drs-detect, drs-repair, drs-restore,
reactive-* events) into a per-lane ASCII Gantt so a scenario's failure
story is readable at a glance::

    hub0        ........XXXXXXXXXX..............................
    node0->1    ---------DDr------------------------------------
    time        0.0s                                       40.0s

Lane glyphs: ``X`` component down, ``D`` failure detected but not yet
repaired, ``r`` repair installed, ``R`` direct route restored.

Input can be flat :class:`~repro.simkit.trace.TraceEntry` records, span
objects from :mod:`repro.obs.spans` (anything with ``phase``/``start``
attributes — detected structurally so this module needs no obs import),
or a mix of both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simkit.trace import TraceEntry


@dataclass(frozen=True)
class _Interval:
    start: float
    end: float | None


def _component_lanes(entries: list[TraceEntry], t_end: float) -> dict[str, list[_Interval]]:
    lanes: dict[str, list[_Interval]] = {}
    open_at: dict[str, float] = {}
    for entry in entries:
        if entry.category != "fault":
            continue
        component = entry.fields["component"]
        if entry.fields["action"] == "fail":
            open_at.setdefault(component, entry.time)
        else:
            start = open_at.pop(component, None)
            if start is not None and start <= t_end:
                lanes.setdefault(component, []).append(_Interval(start, min(entry.time, t_end)))
    # Never-repaired components: clamp the open window to the render horizon
    # so a lane cannot extend past the axis.
    for component, start in open_at.items():
        if start <= t_end:
            lanes.setdefault(component, []).append(_Interval(start, t_end))
    return lanes


def _entries_from_span(span) -> list[TraceEntry]:
    """Translate one causal span into the equivalent point events.

    Structural on purpose: accepts any object with ``phase``/``start``
    (``repro.obs.spans.Span`` in practice) without importing obs.
    """
    attrs = dict(getattr(span, "attrs", None) or {})
    end = getattr(span, "end", None)
    sealed = end is not None and not attrs.get("unfinished")
    out: list[TraceEntry] = []
    if span.phase == "fault":
        component = attrs.get("component", getattr(span, "name", "?"))
        out.append(TraceEntry(span.start, "fault", {"component": component, "action": "fail"}))
        if sealed:
            out.append(TraceEntry(end, "fault", {"component": component, "action": "repair"}))
    elif span.phase == "failover":
        fields = {"node": getattr(span, "node", None), "peer": attrs.get("peer")}
        out.append(TraceEntry(span.start, "drs-detect", dict(fields)))
        if sealed and attrs.get("outcome") in ("direct-swap", "two-hop"):
            out.append(TraceEntry(end, "drs-repair", dict(fields)))
    elif span.phase == "restore":
        fields = {"node": getattr(span, "node", None), "peer": attrs.get("peer")}
        out.append(TraceEntry(end if end is not None else span.start, "drs-restore", fields))
    return out


def _normalize(entries: list) -> list[TraceEntry]:
    flat: list[TraceEntry] = []
    for item in entries:
        if isinstance(item, TraceEntry):
            flat.append(item)
        elif hasattr(item, "phase") and hasattr(item, "start"):
            flat.extend(_entries_from_span(item))
        else:
            raise TypeError(f"cannot render {type(item).__name__}: need TraceEntry or span")
    flat.sort(key=lambda e: e.time)
    return flat


def render_timeline(
    entries: list,
    t_start: float = 0.0,
    t_end: float | None = None,
    width: int = 72,
    node: int | None = None,
) -> str:
    """Render fault windows and repair events between ``t_start`` and ``t_end``.

    ``entries`` may be trace entries, spans, or a mix (see module doc).
    ``node`` restricts the protocol-event lanes to one observer daemon
    (component lanes always show the whole cluster).
    """
    if width < 24:
        raise ValueError("width too small to render")
    entries = _normalize(entries)
    if t_end is None:
        t_end = max((e.time for e in entries), default=t_start) + 1e-9
    span = t_end - t_start
    if span <= 0:
        raise ValueError("empty time window")

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t_start) / span * (width - 1))))

    lines: list[str] = []
    # component down-windows
    for component, intervals in sorted(_component_lanes(entries, t_end).items()):
        lane = ["."] * width
        for interval in intervals:
            end = interval.end if interval.end is not None else t_end
            for c in range(col(interval.start), col(end) + 1):
                lane[c] = "X"
        lines.append(f"{component:<12}{''.join(lane)}")

    # per-pair protocol lanes
    pair_events: dict[tuple[int, int], list[tuple[float, str]]] = {}
    glyph_map = {
        "drs-detect": "D",
        "reactive-detect": "D",
        "drs-repair": "r",
        "reactive-repair": "r",
        "drs-restore": "R",
    }
    for entry in entries:
        glyph = glyph_map.get(entry.category)
        if glyph is None:
            continue
        observer = entry.fields.get("node")
        peer = entry.fields.get("peer")
        if observer is None or peer is None:
            continue
        if node is not None and observer != node:
            continue
        pair_events.setdefault((observer, peer), []).append((entry.time, glyph))
    for (observer, peer), events in sorted(pair_events.items()):
        lane = ["-"] * width
        for t, glyph in sorted(events):
            c = col(t)
            # later, "stronger" events overwrite: detect < repair < restore
            order = {"-": 0, "D": 1, "r": 2, "R": 3}
            if order[glyph] >= order.get(lane[c], 0):
                lane[c] = glyph
        lines.append(f"{f'node{observer}->{peer}':<12}{''.join(lane)}")

    axis = f"{'time':<12}{t_start:<.6g}s" + " " * max(1, width - 16) + f"{t_end:.6g}s"
    lines.append(axis)
    lines.append("legend: X component down, D detected, r repaired, R restored")
    return "\n".join(lines)

"""FIG3 bench — Monte Carlo convergence to Equation 1.

Regenerates Figure 3 (mean absolute deviation vs iterations, log10 axis,
f = 2..10 over f < N < 64) and asserts the paper's 1,000-iteration bound.
"""

import numpy as np

from repro.analysis import mean_absolute_deviation
from repro.experiments import figure3


def test_figure3_mad_at_1000_iterations(benchmark):
    rng = np.random.default_rng(2000)

    def mad_all():
        return {f: mean_absolute_deviation(f, 1_000, rng) for f in range(2, 11)}

    mads = benchmark.pedantic(mad_all, rounds=1, iterations=1, warmup_rounds=0)
    # paper: "With 1,000 iterations, the mean absolute difference is less
    # than [~0.01] for each of the fixed f values"
    for f, mad in mads.items():
        assert mad < 0.012, (f, mad)


def test_figure3_report(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure3.run(iteration_grid=(10, 100, 1_000, 10_000)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    with capsys.disabled():
        print()
        print(result.render())
    for name, (iters, mad) in result.series["mad"].curves.items():
        # converging toward zero across the grid
        assert mad[-1] < mad[0], name


def test_figure3_sqrt_scaling(benchmark):
    rng = np.random.default_rng(0)

    def ratio():
        coarse = mean_absolute_deviation(3, 100, rng, n_max=40)
        fine = mean_absolute_deviation(3, 10_000, rng, n_max=40)
        return coarse / fine

    r = benchmark.pedantic(ratio, rounds=1, iterations=1, warmup_rounds=0)
    # 100x the samples -> ~10x less error; allow generous slack
    assert 3 < r < 40

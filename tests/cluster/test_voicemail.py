"""Tests for the voice-mail workload."""

import numpy as np
import pytest

from repro.cluster import VoicemailCluster, VoicemailConfig, install_messaging
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator


def _rig(n=4, **cfg):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    comm = install_messaging(sim, stacks)
    config = VoicemailConfig(**{"call_rate_per_s": 20.0, "message_bytes": 2_000, **cfg})
    vm = VoicemailCluster(sim, comm, config, rng=np.random.default_rng(0))
    return sim, cluster, stacks, vm


def test_config_validation():
    with pytest.raises(ValueError):
        VoicemailConfig(subscribers=0)
    with pytest.raises(ValueError):
        VoicemailConfig(call_rate_per_s=0)
    with pytest.raises(ValueError):
        VoicemailConfig(deposit_fraction=1.5)
    with pytest.raises(ValueError):
        VoicemailConfig(message_bytes=-1)


def test_home_sharding_is_stable_and_balanced():
    sim, cluster, stacks, vm = _rig()
    homes = [vm.home_of(s) for s in range(1000)]
    assert set(homes) == {0, 1, 2, 3}
    assert vm.home_of(42) == vm.home_of(42)


def test_workload_generates_and_completes_transfers():
    sim, cluster, stacks, vm = _rig()
    vm.start()
    sim.run(until=10.0)
    vm.stop()
    sim.run(until=20.0)
    vm.collect_completions()
    assert vm.stats.operations > 50
    assert vm.stats.transfers > 0
    assert vm.stats.completion_rate() > 0.95
    assert vm.stats.mean_latency() > 0
    assert vm.stats.p99_latency() >= vm.stats.mean_latency()


def test_local_operations_bypass_network():
    sim, cluster, stacks, vm = _rig()
    vm.start()
    sim.run(until=5.0)
    vm.stop()
    # with 4 nodes ~25% of calls land on the home server
    assert vm.stats.local_operations > 0
    assert vm.stats.local_operations + vm.stats.transfers == vm.stats.operations


def test_deposits_fill_mailboxes():
    sim, cluster, stacks, vm = _rig(deposit_fraction=1.0)
    vm.start()
    sim.run(until=10.0)
    vm.stop()
    sim.run(until=15.0)
    total_messages = sum(sum(box.values()) for box in vm.mailboxes.values())
    assert total_messages > 0


def test_healthy_cluster_has_no_stalls():
    sim, cluster, stacks, vm = _rig(stall_threshold_s=1.0)
    vm.start()
    sim.run(until=10.0)
    vm.stop()
    sim.run(until=15.0)
    vm.collect_completions()
    assert vm.stats.stalled == 0


def test_outage_without_drs_stalls_operations():
    sim, cluster, stacks, vm = _rig(stall_threshold_s=0.5)
    vm.start()
    sim.run(until=5.0)
    cluster.faults.fail("hub0")          # static routes all ride hub0
    sim.run(until=8.0)
    cluster.faults.repair("hub0")
    sim.run(until=25.0)
    vm.stop()
    vm.collect_completions()
    assert vm.stats.stalled > 0

"""Pluggable executors: run a :class:`~repro.engine.jobs.JobPlan`'s jobs.

Two backends live here (a third, the multi-host
:class:`~repro.engine.distributed.DistributedExecutor`, builds on this
module's worker chunk path and plan-announcement helpers):

* :class:`SerialExecutor` — runs every job in-process, in plan order.  The
  default, and the reference behavior: jobs publish metrics and heartbeats
  directly into the caller's current registry/reporter.
* :class:`ParallelExecutor` — fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker chunk runs
  under a private :class:`~repro.obs.metrics.MetricsRegistry` and a silent
  heartbeat collector; the parent merges registries back via
  :meth:`MetricsRegistry.merge` and absorbs heartbeat summaries, so the
  run's artifacts aggregate the whole fleet.

Because every job's random stream is spawned from ``(root seed, experiment,
job name)`` (see :mod:`repro.engine.jobs`), the two backends produce
identical values for identical plans — worker count and scheduling order
can only change wall time, never results.

Fault tolerance
---------------

Both backends take an optional :class:`~repro.engine.retry.RetryPolicy`
(``policy=``) and run each job through
:func:`repro.engine.retry.execute_job`: bounded retries with deterministic
backoff jitter, per-attempt wall-clock timeouts, and quarantine of jobs
that exhaust the budget (the run completes with partial values instead of
dying).  Without a policy the legacy fail-fast semantics apply — the first
failure raises :class:`~repro.engine.retry.JobError`.

``run(plan, checkpoint=...)`` additionally streams completed values into a
:class:`~repro.engine.checkpoint.Checkpoint` (and skips jobs it already
holds), which is what makes ``drs-experiments --resume`` crash-safe.  The
parallel backend also survives ``BrokenProcessPool``: it respawns the pool
up to ``max_pool_respawns`` times and requeues only the jobs that have not
settled yet.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.engine.checkpoint import Checkpoint
from repro.engine.jobs import Job, JobPlan
from repro.engine.retry import FAIL_FAST, JobError, JobOutcome, RetryPolicy, execute_job
from repro.obs.flightrecorder import FlightRecorder, flight_recorder, set_flight_recorder
from repro.obs.metrics import MetricsRegistry, current_registry, ensure_core_metrics, use_registry
from repro.obs.progress import ProgressReporter, heartbeat, set_heartbeat

__all__ = [
    "JobError",
    "PlanExecution",
    "PlanInterrupted",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
]


@dataclass
class PlanExecution:
    """What an executor hands back: values by job name plus provenance."""

    values: dict[str, Any]
    backend: str
    workers: int
    job_seeds: dict[str, int] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    timed_out: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    pool_respawns: int = 0
    #: distributed backend only: per-worker attribution keyed by worker id
    #: (``{"host", "pid", "jobs", "wall_s", "cpu_s"}`` each)
    hosts: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: the run was cut short by SIGINT/Ctrl-C (partial ``values``)
    interrupted: bool = False

    @property
    def retries(self) -> int:
        """Total attempts beyond the first across all jobs run this time."""
        return sum(a - 1 for a in self.attempts.values())


class PlanInterrupted(RuntimeError):
    """Ctrl-C/SIGINT stopped a plan; ``execution`` holds the partial state.

    Executors catch :class:`KeyboardInterrupt`, settle every outcome that
    had already arrived (checkpoint records included — nothing finished is
    lost), cancel the rest, and raise this instead.  The runner turns it
    into a manifest marked ``status="interrupted"`` and a clean exit, so
    ``--resume`` picks up exactly where the interrupt landed.
    """

    def __init__(self, execution: PlanExecution) -> None:
        done = len(execution.values)
        super().__init__(
            f"plan interrupted after {done} settled job{'s' if done != 1 else ''}; "
            f"partial results checkpointed"
        )
        self.execution = execution


def _resume_from_checkpoint(
    plan: JobPlan, checkpoint: Checkpoint | None
) -> tuple[dict[str, Any], list[str]]:
    """Values and names of jobs a checkpoint already holds for this plan."""
    if checkpoint is None:
        return {}, []
    records = checkpoint.load(plan)
    return {r.job: r.value for r in records}, [r.job for r in records]


def _install_progress_totals(plan: JobPlan) -> None:
    """Give the active heartbeat the plan's totals so ETA can be computed.

    Curve-level plans record their full trial budget in
    ``plan.meta["total_trials"]`` (the sum over every job's iteration
    count); without it the reporter knows only a trial *rate*, so figure2/
    figure3 runs under-reported progress and never printed an ETA.
    """
    hb = heartbeat()
    if hb is None:
        return
    total = plan.meta.get("total_trials")
    if hb.total is None and total:
        hb.total = int(total)
    hb.jobs_total = len(plan.jobs)


def _announce_plan(
    recorder: FlightRecorder | None, plan: JobPlan, backend: str, workers: int, resumed: list[str]
) -> None:
    if recorder is None:
        return
    fields: dict[str, Any] = dict(
        backend=backend,
        workers=workers,
        jobs=len(plan.jobs),
        resumed=len(resumed),
        total_trials=plan.meta.get("total_trials"),
    )
    # topology-parameterized plans label their whole flight stream; legacy
    # plans omit the field so old consumers see an unchanged event shape
    if plan.meta.get("topology") is not None:
        fields["topology"] = plan.meta["topology"]
    recorder.emit("plan.begin", **fields)
    for name in resumed:
        recorder.emit("job.resumed", job=name)


class SerialExecutor:
    """Run jobs one after another in the calling process (the default)."""

    name = "serial"
    workers = 1

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy

    def run(self, plan: JobPlan, checkpoint: Checkpoint | None = None) -> PlanExecution:
        """Execute every job in plan order; deterministic for a given plan."""
        policy = self.policy if self.policy is not None else FAIL_FAST
        values, resumed = _resume_from_checkpoint(plan, checkpoint)
        _install_progress_totals(plan)
        recorder = flight_recorder()
        _announce_plan(recorder, plan, self.name, 1, resumed)
        attempts: dict[str, int] = {}
        quarantined: list[str] = []
        timed_out: list[str] = []

        def execution(interrupted: bool = False) -> PlanExecution:
            return PlanExecution(
                values=values,
                backend=self.name,
                workers=1,
                job_seeds=plan.job_seeds(),
                attempts=attempts,
                quarantined=quarantined,
                timed_out=timed_out,
                resumed=resumed,
                interrupted=interrupted,
            )

        try:
            for job in plan.jobs:
                if job.name in values:
                    continue
                if recorder is not None:
                    recorder.emit("job.submitted", job=job.name)
                outcome = execute_job(
                    plan.experiment, plan.seed, job, plan.job_seedseq(job), policy
                )
                attempts[job.name] = outcome.attempts
                if outcome.ok:
                    values[job.name] = outcome.value
                    if checkpoint is not None:
                        checkpoint.record(plan, outcome)
                else:
                    quarantined.append(job.name)
                    if outcome.timed_out:
                        timed_out.append(job.name)
                hb = heartbeat()
                if hb is not None:
                    hb.add(0, jobs=1)
        except KeyboardInterrupt:
            # Every settled job is already in `values` and the checkpoint;
            # only the job that was mid-flight is lost, and --resume reruns
            # exactly that remainder.
            if recorder is not None:
                recorder.emit(
                    "plan.interrupted",
                    jobs=len(plan.jobs),
                    completed=len(values),
                    backend=self.name,
                )
            raise PlanInterrupted(execution(interrupted=True)) from None
        if recorder is not None:
            recorder.emit(
                "plan.end",
                jobs=len(plan.jobs),
                completed=len(values),
                quarantined=len(quarantined),
            )
        return execution()


#: process-local: has this pool worker announced itself on the flight channel?
_worker_announced = False


def _run_chunk(
    experiment: str, seed: int, jobs: list[Job], policy: RetryPolicy
) -> tuple[list[JobOutcome], MetricsRegistry, dict, list[dict]]:
    """Worker entry point: run a chunk of jobs under private observability.

    Returns the chunk's per-job outcomes, its metrics registry (merged by
    the parent), the silent heartbeat collector's summary, and the chunk's
    buffered flight-recorder events (ingested into the parent's sink, so
    the run's JSONL carries every worker's job lifecycle with its real
    PID and timestamps).  Module-level so process pools can pickle it
    regardless of start method.  Retries and timeouts happen here, inside
    the worker — only quarantined outcomes (or, under a fail-fast policy,
    a :class:`JobError`) reach the parent.
    """
    global _worker_announced
    from repro.engine.jobs import JobPlan  # re-import friendly under spawn
    from repro.obs.profiler import install_profiling

    plan = JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)
    install_profiling()
    registry = ensure_core_metrics(MetricsRegistry())
    # Never emits (interval is effectively infinite): pure collector whose
    # summary the parent absorbs into the run's real reporter.
    collector = ProgressReporter(experiment, interval_s=1e12)
    set_heartbeat(collector)
    buffer = FlightRecorder(None, experiment=experiment)
    if not _worker_announced:
        _worker_announced = True
        buffer.emit("worker.spawn", chunk_jobs=len(jobs))
    set_flight_recorder(buffer)
    try:
        with use_registry(registry):
            outcomes = [
                execute_job(experiment, seed, job, plan.job_seedseq(job), policy) for job in jobs
            ]
    finally:
        set_flight_recorder(None)
        set_heartbeat(None)
    return outcomes, registry, collector.summary(), buffer.drain()


class ParallelExecutor:
    """Fan jobs out over a process pool; results identical to serial.

    ``workers`` defaults to the machine's CPU count.  Jobs are grouped into
    chunks (several jobs per round trip) to amortize pickling and registry
    transfer; chunking affects only scheduling, never values.

    If the pool breaks (a worker segfaults, is OOM-killed, …) the executor
    replaces it — up to ``max_pool_respawns`` times per plan — and requeues
    exactly the jobs whose outcomes had not been received.  A job that
    *keeps* breaking its worker therefore exhausts the respawn budget and
    surfaces as a :class:`JobError` attributed to ``"<pool>"`` (the broken
    pipe cannot say which job killed it).
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int | None = None,
        chunks_per_worker: int = 4,
        policy: RetryPolicy | None = None,
        max_pool_respawns: int = 3,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        if max_pool_respawns < 0:
            raise ValueError(f"max_pool_respawns must be >= 0, got {max_pool_respawns}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunks_per_worker = chunks_per_worker
        self.policy = policy
        self.max_pool_respawns = max_pool_respawns

    def _chunk(self, jobs: list[Job]) -> list[list[Job]]:
        if not jobs:
            return []
        target = self.workers * self.chunks_per_worker
        size = max(1, -(-len(jobs) // target))  # ceil division
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def run(self, plan: JobPlan, checkpoint: Checkpoint | None = None) -> PlanExecution:
        """Execute the plan on the pool, merging worker observability back."""
        policy = self.policy if self.policy is not None else FAIL_FAST
        registry = current_registry()
        reporter = heartbeat()
        recorder = flight_recorder()
        values, resumed = _resume_from_checkpoint(plan, checkpoint)
        _install_progress_totals(plan)
        _announce_plan(recorder, plan, self.name, self.workers, resumed)
        attempts: dict[str, int] = {}
        quarantined: list[str] = []
        timed_out: list[str] = []
        settled: set[str] = set(values)
        pool_pids: set[int] = set()  # workers seen in the current pool generation
        outstanding_chunks = 0

        def sample_scheduler() -> None:
            """One queue-depth/utilization gauge sample on the flight channel."""
            if recorder is None:
                return
            recorder.emit(
                "scheduler.gauge",
                queue_depth=len(plan.jobs) - len(settled),
                outstanding_chunks=outstanding_chunks,
                utilization=round(min(1.0, outstanding_chunks / self.workers), 4),
                workers=self.workers,
            )

        def absorb(chunk: list[Job], result: tuple) -> None:
            chunk_outcomes, worker_registry, hb_summary, worker_events = result
            for outcome in chunk_outcomes:
                settled.add(outcome.name)
                attempts[outcome.name] = outcome.attempts
                if outcome.ok:
                    values[outcome.name] = outcome.value
                    if checkpoint is not None:
                        checkpoint.record(plan, outcome)
                else:
                    quarantined.append(outcome.name)
                    if outcome.timed_out:
                        timed_out.append(outcome.name)
            registry.merge(worker_registry)
            if recorder is not None:
                recorder.ingest(worker_events)
            pool_pids.update(int(ev.get("pid", 0)) for ev in worker_events)
            if reporter is not None:
                reporter.absorb(hb_summary)
                reporter.add(0, jobs=len(chunk))

        def retire_pool_workers() -> None:
            """Record the end of every worker of the just-closed pool."""
            if recorder is not None:
                for pid in sorted(pool_pids):
                    recorder.emit("worker.exit", pid=pid)
            pool_pids.clear()

        chunks = self._chunk([job for job in plan.jobs if job.name not in settled])
        respawns = 0
        while chunks:
            # The pool is managed by hand (no `with`): its __exit__ is a
            # shutdown(wait=True), which would block a Ctrl-C behind every
            # chunk still running.  Interrupt and break paths below shut it
            # down without waiting and cancel whatever never started.
            pool = ProcessPoolExecutor(max_workers=self.workers)
            pending: dict[Any, list[Job]] = {}
            try:
                for chunk in chunks:
                    future = pool.submit(_run_chunk, plan.experiment, plan.seed, chunk, policy)
                    pending[future] = chunk
                    if recorder is not None:
                        for job in chunk:
                            recorder.emit("job.submitted", job=job.name)
                outstanding_chunks = len(pending)
                sample_scheduler()
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = pending.pop(future)
                        absorb(chunk, future.result())
                        outstanding_chunks = len(pending)
                        sample_scheduler()
                chunks = []
                pool.shutdown(wait=True)
                retire_pool_workers()
            except BrokenProcessPool as exc:
                pool.shutdown(wait=False, cancel_futures=True)
                retire_pool_workers()
                if respawns >= self.max_pool_respawns:
                    raise JobError(
                        plan.experiment,
                        "<pool>",
                        f"process pool broke {respawns + 1} times; giving up: {exc!r}",
                    ) from exc
                respawns += 1
                registry.counter("engine_pool_respawns_total").add(1)
                # Requeue (and rebalance) everything whose outcome never
                # arrived; settled jobs are safe — their results, metrics,
                # and checkpoint records were absorbed before the break.
                chunks = self._chunk([job for job in plan.jobs if job.name not in settled])
                if recorder is not None:
                    recorder.emit(
                        "pool.respawn",
                        respawns=respawns,
                        requeued=sum(len(c) for c in chunks),
                    )
            except KeyboardInterrupt:
                # Settle every chunk that already finished — those results
                # (and their checkpoint records) are real — then cancel the
                # rest and leave without waiting on running workers.
                for future in [f for f in pending if f.done()]:
                    chunk = pending.pop(future)
                    try:
                        absorb(chunk, future.result())
                    except BaseException:
                        pass  # a broken/failed chunk has nothing to settle
                pool.shutdown(wait=False, cancel_futures=True)
                retire_pool_workers()
                if recorder is not None:
                    recorder.emit(
                        "plan.interrupted",
                        jobs=len(plan.jobs),
                        completed=len(values),
                        backend=self.name,
                    )
                _recompute_rate_gauges(registry)
                raise PlanInterrupted(
                    PlanExecution(
                        values=values,
                        backend=self.name,
                        workers=self.workers,
                        job_seeds=plan.job_seeds(),
                        attempts=attempts,
                        quarantined=quarantined,
                        timed_out=timed_out,
                        resumed=resumed,
                        pool_respawns=respawns,
                        interrupted=True,
                    )
                ) from None
        if recorder is not None:
            recorder.emit(
                "plan.end",
                jobs=len(plan.jobs),
                completed=len(values),
                quarantined=len(quarantined),
                pool_respawns=respawns,
            )
        _recompute_rate_gauges(registry)
        return PlanExecution(
            values=values,
            backend=self.name,
            workers=self.workers,
            job_seeds=plan.job_seeds(),
            attempts=attempts,
            quarantined=quarantined,
            timed_out=timed_out,
            resumed=resumed,
            pool_respawns=respawns,
        )


def _recompute_rate_gauges(registry: MetricsRegistry) -> None:
    """Derive throughput gauges from merged totals.

    Summing per-worker rate gauges over-counts (each measures a different
    wall interval); the ratio of the merged counters is the right aggregate.
    """
    for gauge_name, total_name, wall_name in (
        ("sim_events_per_second", "sim_events_total", "sim_run_seconds_total"),
        ("mc_iterations_per_second", "mc_iterations_total", "mc_wall_seconds_total"),
    ):
        total, wall = registry.get(total_name), registry.get(wall_name)
        if total is not None and wall is not None and wall.value > 0:
            registry.gauge(gauge_name).set(total.value / wall.value)


def make_executor(
    jobs: int | None,
    policy: RetryPolicy | None = None,
    backend: str = "local",
    coordinator: str | None = None,
):
    """CLI helper: ``--jobs N`` (and ``--backend``) to an executor.

    ``backend="local"`` (the default) keeps the historical mapping:
    ``--jobs 1`` (and single-core machines asking for "all cores") stays
    serial — a one-worker pool costs process round trips and buys nothing —
    while ``--jobs N`` builds an N-worker pool and ``0``/``None`` uses all
    cores.  ``backend="distributed"`` runs the TCP coordinator of
    :class:`~repro.engine.distributed.DistributedExecutor` instead:
    ``--jobs N`` spawns N local ``drs-worker`` processes against it, and
    ``--jobs 0``/``None`` spawns none — the run waits for external workers
    to join at the ``coordinator`` address (``HOST:PORT``, default
    ``127.0.0.1:0`` = loopback, ephemeral port).  ``policy`` (if any) is
    threaded through to the chosen backend.
    """
    if backend == "distributed":
        from repro.engine.distributed import DistributedExecutor

        if jobs is not None and jobs < 0:
            raise ValueError(f"--jobs must be >= 0, got {jobs}")
        return DistributedExecutor(
            coordinator=coordinator,
            spawn_workers=jobs or 0,
            policy=policy,
        )
    if backend != "local":
        raise ValueError(f"unknown backend {backend!r} (expected 'local' or 'distributed')")
    if coordinator is not None:
        raise ValueError("--coordinator only applies to --backend distributed")
    if jobs is None or jobs == 1:
        return SerialExecutor(policy=policy)
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    workers = jobs if jobs > 0 else (os.cpu_count() or 1)
    if workers == 1:
        return SerialExecutor(policy=policy)
    return ParallelExecutor(workers=workers, policy=policy)

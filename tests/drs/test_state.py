"""Unit tests for the peer/link state table."""

from repro.drs import LinkState, PeerTable


def _table():
    return PeerTable(owner=0, peers=[0, 1, 2], networks=[0, 1])


def test_table_excludes_owner_and_covers_both_networks():
    t = _table()
    assert t.peers() == [1, 2]
    assert len(t.links()) == 4
    assert [l.key for l in t.links()] == [(1, 0), (1, 1), (2, 0), (2, 1)]


def test_initial_state_unknown():
    t = _table()
    assert all(l.state is LinkState.UNKNOWN for l in t.links())
    assert not t.peer_reachable_direct(1)


def test_success_marks_up():
    t = _table()
    t.record_success(1, 0, now=1.0)
    assert t.is_up(1, 0)
    assert t.link(1, 0).last_ok_at == 1.0
    assert t.up_networks_to(1) == [0]
    assert t.peer_reachable_direct(1)


def test_failure_below_threshold_is_suspect():
    t = _table()
    t.record_success(1, 0, now=1.0)
    t.record_failure(1, 0, now=2.0, threshold=2)
    assert t.link(1, 0).state is LinkState.SUSPECT
    assert not t.is_up(1, 0)


def test_failure_at_threshold_is_down_with_timestamp():
    t = _table()
    t.record_failure(1, 0, now=1.0, threshold=2)
    t.record_failure(1, 0, now=2.0, threshold=2)
    link = t.link(1, 0)
    assert link.state is LinkState.DOWN
    assert link.down_since == 2.0
    assert t.down_links() == [link]


def test_success_resets_failure_count_and_down_since():
    t = _table()
    t.record_failure(1, 0, now=1.0, threshold=3)
    t.record_success(1, 0, now=2.0)
    link = t.link(1, 0)
    assert link.consecutive_failures == 0
    assert link.down_since is None
    assert link.state is LinkState.UP


def test_transition_listener_fires_once_per_change():
    t = _table()
    events = []
    t.on_transition(lambda link, old, new: events.append((link.key, old, new)))
    t.record_success(1, 0, now=1.0)
    t.record_success(1, 0, now=2.0)  # no transition: already UP
    t.record_failure(1, 0, now=3.0, threshold=1)
    assert events == [
        ((1, 0), LinkState.UNKNOWN, LinkState.UP),
        ((1, 0), LinkState.UP, LinkState.DOWN),
    ]


def test_repeated_failures_do_not_renotify_down():
    t = _table()
    events = []
    t.on_transition(lambda link, old, new: events.append(new))
    t.record_failure(1, 0, now=1.0, threshold=1)
    t.record_failure(1, 0, now=2.0, threshold=1)
    assert events == [LinkState.DOWN]
    # but down_since keeps the first declaration time
    assert t.link(1, 0).down_since == 1.0


def test_links_to_returns_both_networks():
    t = _table()
    assert [l.network for l in t.links_to(2)] == [0, 1]

"""Parallel execution engine for the experiment suite.

Three layers turn "regenerate every paper artifact" into work that scales
with cores while staying bit-for-bit reproducible from one integer seed:

* :mod:`repro.engine.spec` — the declarative registry:
  :class:`ExperimentSpec` (name, run callable, ``quick``/``full`` profiles),
  registered by each :mod:`repro.experiments.*` module at import time.
* :mod:`repro.engine.jobs` — :class:`Job` / :class:`JobPlan`: a sweep
  decomposed into independent units, each with a deterministic child seed
  spawned from ``(root seed, experiment, job name)``.
* :mod:`repro.engine.executors` — :class:`SerialExecutor` (default) and the
  process-pool :class:`ParallelExecutor` (``drs-experiments --jobs N``),
  which merges per-worker metrics registries and heartbeat counts back into
  the parent run.

See ``docs/engine.md`` for the seed-spawning contract and worked examples.
"""

from typing import Any

from repro.engine.executors import (
    JobError,
    ParallelExecutor,
    PlanExecution,
    SerialExecutor,
    make_executor,
)
from repro.engine.jobs import Job, JobFn, JobPlan
from repro.engine.spec import (
    ExperimentSpec,
    experiment_specs,
    get_spec,
    register,
    spec_names,
)


def run_plan(plan: JobPlan, executor: Any | None = None) -> Any:
    """Execute a plan on an executor (default serial) and reduce the values.

    The reduced result's ``meta`` — when it has one, as every
    :class:`~repro.experiments.base.ExperimentResult` does — gains an
    ``engine`` section recording backend, worker count, job count, root
    seed, and the per-job seed fingerprints, which the runner folds into the
    run manifest.
    """
    executor = executor if executor is not None else SerialExecutor()
    execution = executor.run(plan)
    result = plan.reduce(execution.values)
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        meta["engine"] = {
            "backend": execution.backend,
            "workers": execution.workers,
            "jobs": len(plan.jobs),
            "root_seed": plan.seed,
            "job_seeds": execution.job_seeds,
        }
    return result


__all__ = [
    "ExperimentSpec",
    "register",
    "get_spec",
    "experiment_specs",
    "spec_names",
    "Job",
    "JobFn",
    "JobPlan",
    "JobError",
    "SerialExecutor",
    "ParallelExecutor",
    "PlanExecution",
    "make_executor",
    "run_plan",
]

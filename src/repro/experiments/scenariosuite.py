"""EXP-SCENARIOS — run every shipped scenario and tabulate the outcomes.

A regression sweep over ``examples/scenarios/*.json``: the declarative
specs exercise the whole stack (topology, protocols, workloads, fault
scripts) end to end, and their headline numbers land in one table.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine import ExperimentSpec, register
from repro.experiments.base import ExperimentResult
from repro.scenario import load_scenario, run_scenario

def _find_scenario_dir() -> Path:
    # editable installs: src/repro/experiments -> repo root/examples/scenarios
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "examples" / "scenarios"
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError("examples/scenarios not found relative to the package")


def run(scenario_dir: str | Path | None = None) -> ExperimentResult:
    """Run every ``*.json`` scenario in the directory."""
    directory = Path(scenario_dir) if scenario_dir is not None else _find_scenario_dir()
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise FileNotFoundError(f"no scenario files in {directory}")
    result = ExperimentResult("scenariosuite")
    rows = []
    for path in paths:
        spec = load_scenario(path)
        report = run_scenario(spec)
        workload_ok = _workload_verdict(report)
        rows.append(
            [
                spec.name,
                spec.protocol_kind,
                spec.workload_kind,
                report.faults_injected,
                report.routing_repairs,
                f"{report.wire_utilization:.2%}",
                workload_ok,
            ]
        )
    result.add_table(
        "suite",
        ["scenario", "protocol", "workload", "faults", "repairs", "utilization", "workload verdict"],
        rows,
        caption=f"All shipped scenarios ({directory})",
    )
    return result


def _workload_verdict(report) -> str:
    metrics = report.workload_metrics
    if "stream messages sent" in metrics:
        sent, got = metrics["stream messages sent"], metrics["stream messages delivered"]
        return f"{got}/{sent} delivered"
    if "voicemail completion rate" in metrics:
        return f"{metrics['voicemail completion rate']:.1%} transfers complete"
    if "mpi job completed" in metrics:
        return "job completed" if metrics["mpi job completed"] else "JOB HUNG"
    return "-"


register(
    ExperimentSpec(
        name="scenarios",
        run=run,
        profiles={"quick": {}, "full": {}},
        order=120,
        description="every shipped drs-sim scenario, end to end",
    )
)

"""Scenario execution: build the stack from a spec, drive it, report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines import (
    DistVectorConfig,
    LinkStateConfig,
    ReactiveConfig,
    install_distvector,
    install_linkstate,
    install_reactive,
    install_static_only,
)
from repro.cluster import (
    MpiJobConfig,
    MpiRingJob,
    VoicemailCluster,
    VoicemailConfig,
    install_messaging,
)
from repro.drs import DrsConfig, install_drs
from repro.netsim import FaultScenario, build_dual_backplane_cluster
from repro.obs import MetricsRegistry, resolve_registry, use_registry
from repro.obs.spans import span_log
from repro.protocols import install_stacks
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.simkit import Process, Simulator, TraceRecorder
from repro.viz import render_table


@dataclass
class ScenarioReport:
    """Everything a scenario run measured."""

    spec: ScenarioSpec
    duration_s: float
    routing_repairs: int
    route_changes: int
    faults_injected: int
    wire_bits: float
    wire_utilization: float
    workload_metrics: dict[str, Any] = field(default_factory=dict)
    repair_latencies: list[float] = field(default_factory=list)
    #: the cluster's TraceRecorder, kept so callers can dump a JSONL trace
    trace: TraceRecorder | None = None

    def render(self) -> str:
        """Human-readable report."""
        rows = [
            ["simulated duration (s)", self.duration_s],
            ["faults injected", self.faults_injected],
            ["routing repairs", self.routing_repairs],
            ["route changes", self.route_changes],
            ["wire bits carried", self.wire_bits],
            ["mean segment utilization", self.wire_utilization],
        ]
        if self.repair_latencies:
            rows.append(["mean repair latency (s)", float(np.mean(self.repair_latencies))])
            rows.append(["max repair latency (s)", float(max(self.repair_latencies))])
        for key, value in self.workload_metrics.items():
            rows.append([key, value])
        return render_table(["metric", "value"], rows, title=f"scenario: {self.spec.name}")


def _install_protocol(spec: ScenarioSpec, cluster, stacks):
    options = dict(spec.protocol_options)
    try:
        if spec.protocol_kind == "drs":
            return install_drs(cluster, stacks, DrsConfig(**options))
        if spec.protocol_kind == "reactive":
            return install_reactive(cluster, stacks, ReactiveConfig(**options))
        if spec.protocol_kind == "distvector":
            return install_distvector(cluster, stacks, DistVectorConfig(**options))
        if spec.protocol_kind == "linkstate":
            return install_linkstate(cluster, stacks, LinkStateConfig(**options))
        if spec.protocol_kind == "static":
            if options:
                raise ScenarioError(f"static protocol takes no options, got {sorted(options)}")
            return install_static_only(cluster, stacks)
    except TypeError as exc:
        raise ScenarioError(f"bad protocol options for {spec.protocol_kind!r}: {exc}") from exc
    raise ScenarioError(f"unknown protocol {spec.protocol_kind!r}")


def _start_workload(spec: ScenarioSpec, sim, cluster, stacks, rng):
    kind = spec.workload_kind
    options = dict(spec.workload_options)
    if kind == "none":
        return None, lambda: {}
    if kind == "stream":
        src = int(options.pop("src", 0))
        dst = int(options.pop("dst", 1))
        interval = float(options.pop("interval_s", 0.1))
        size = int(options.pop("message_bytes", 256))
        if options:
            raise ScenarioError(f"unknown stream options: {sorted(options)}")
        if not (0 <= src < spec.nodes and 0 <= dst < spec.nodes and src != dst):
            raise ScenarioError(f"stream src/dst out of range: {src}->{dst}")
        delivered: list[float] = []
        stacks[dst].tcp.listen(9000, on_message=lambda c, d, s: delivered.append(sim.now))
        conn = stacks[src].tcp.connect(dst, 9000, max_retries=20)

        def stream():
            while True:
                conn.send_message(data=sim.now, data_bytes=size)
                yield interval

        Process(sim, stream(), name="scenario.stream")

        def metrics():
            latencies = list(conn.message_latencies.values())
            return {
                "stream messages sent": conn.messages_sent,
                "stream messages delivered": len(latencies),
                "stream worst latency (s)": max(latencies) if latencies else float("nan"),
                "stream retransmissions": int(conn.retransmissions.value),
            }

        return None, metrics
    if kind == "voicemail":
        comm = install_messaging(sim, stacks)
        try:
            config = VoicemailConfig(**options)
        except TypeError as exc:
            raise ScenarioError(f"bad voicemail options: {exc}") from exc
        workload = VoicemailCluster(sim, comm, config, rng=rng)
        workload.start()

        def metrics():
            workload.collect_completions()
            stats = workload.stats
            return {
                "voicemail operations": stats.operations,
                "voicemail transfers": stats.transfers,
                "voicemail completion rate": stats.completion_rate(),
                "voicemail mean latency (s)": stats.mean_latency(),
                "voicemail stalled ops": stats.stalled,
            }

        return workload, metrics
    if kind == "mpi":
        comm = install_messaging(sim, stacks)
        try:
            config = MpiJobConfig(**options)
        except TypeError as exc:
            raise ScenarioError(f"bad mpi options: {exc}") from exc
        job = MpiRingJob(sim, comm, config)
        job.start()

        def metrics():
            return {
                "mpi job completed": job.done,
                "mpi iterations finished": job.stats.completed_iterations,
                "mpi median iteration (s)": job.stats.median_iteration_s(),
                "mpi slowest iteration (s)": job.stats.max_iteration_s(),
            }

        return job, metrics
    raise ScenarioError(f"unknown workload {kind!r}")


def run_scenario(spec: ScenarioSpec, metrics: MetricsRegistry | None = None) -> ScenarioReport:
    """Build, run, and measure one scenario.

    ``metrics`` scopes every component's observability counters/histograms to
    that registry for the duration of the run; by default they land in the
    process-wide registry.
    """
    with use_registry(resolve_registry(metrics)):
        return _run_scenario(spec)


def _run_scenario(spec: ScenarioSpec) -> ScenarioReport:
    sim = Simulator()
    rng = np.random.default_rng(spec.seed)
    if spec.fabric == "switch":
        from repro.netsim import build_dual_switched_cluster

        if spec.loss_rate > 0:
            raise ScenarioError("loss_rate is only modelled on the hub fabric")
        cluster = build_dual_switched_cluster(sim, spec.nodes, bandwidth_bps=spec.bandwidth_bps)
    else:
        cluster = build_dual_backplane_cluster(
            sim,
            spec.nodes,
            bandwidth_bps=spec.bandwidth_bps,
            loss_rate=spec.loss_rate,
            rng=rng if spec.loss_rate > 0 else None,
        )
    stacks = install_stacks(cluster)
    _install_protocol(spec, cluster, stacks)

    script = FaultScenario()
    for step in spec.faults:
        if step.component not in {c.name for c in cluster.faults.components}:
            raise ScenarioError(f"unknown component {step.component!r} in fault script")
        if step.action == "fail":
            script.fail(step.at, step.component)
        else:
            script.repair(step.at, step.component)
    cluster.faults.schedule(script)

    _, workload_metrics = _start_workload(spec, sim, cluster, stacks, rng)
    sim.run(until=spec.duration_s)
    # Seal still-open spans (daemon lifetimes, unrepaired incidents) so the
    # trace artifact carries the complete causal record of the run.
    span_log(cluster.trace).flush()

    repairs = cluster.trace.entries("drs-repair") + cluster.trace.entries("reactive-repair")
    latencies = [e.fields["repair_latency"] for e in repairs if "repair_latency" in e.fields]
    route_changes = sum(stack.table.change_count for stack in stacks.values())
    wire_bits = sum(bp.bits_carried.value for bp in cluster.backplanes)
    utilization = float(np.mean([bp.utilization() for bp in cluster.backplanes]))
    return ScenarioReport(
        spec=spec,
        duration_s=sim.now,
        routing_repairs=len(repairs),
        route_changes=route_changes,
        faults_injected=len(spec.faults),
        wire_bits=wire_bits,
        wire_utilization=utilization,
        workload_metrics=workload_metrics(),
        repair_latencies=latencies,
        trace=cluster.trace,
    )

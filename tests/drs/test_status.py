"""Tests for the DRS deployment status report."""

from repro.drs import deployment_health, status_report


def test_healthy_deployment(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    health = deployment_health(deployment)
    assert health.healthy
    assert health.nodes == 5
    assert health.links_total == 5 * 4 * 2
    assert health.links_up == health.links_total
    assert health.verdict().startswith("HEALTHY")
    report = status_report(deployment)
    assert "HEALTHY" in report and "deployment summary" in report
    assert "exceptions" not in report  # nothing to show


def test_degraded_after_failure(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    health = deployment_health(deployment)
    assert not health.healthy
    # each of the other 4 daemons sees (1, net0) down; node 1 sees 4 links down
    assert health.links_down == 8
    assert health.total_repairs >= 4
    assert health.verdict().startswith("DEGRADED")
    report = status_report(deployment)
    assert "exceptions" in report and "down" in report


def test_two_hop_routes_reported(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    health = deployment_health(deployment)
    assert health.active_two_hop_routes >= 1
    assert "two-hop via" in status_report(deployment)


def test_verbose_report_shows_all_links(drs_rig):
    sim, cluster, stacks, deployment = drs_rig
    report = status_report(deployment, verbose=True)
    assert "link table" in report
    # every (daemon, peer, network) row is present
    assert report.count("up") >= 5 * 4 * 2

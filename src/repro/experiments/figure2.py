"""FIG2 — "Convergence of P[Success] to 1".

Regenerates the paper's Figure 2: Equation-1 P[Success] versus cluster size
for f = 2..10 simultaneous failures over the paper's domain f < N < 64,
optionally overlaid with Monte Carlo estimates from the validation
simulator.

The Monte Carlo overlay decomposes into one *curve-level* engine job per N:
the common-random-numbers sweep kernel
(:func:`repro.analysis.montecarlo.simulate_grid`) evaluates the entire
f-family at that N from a single sampling pass, so the f-dimension costs
one draw instead of ``len(f_values)`` draws and the overlay curves are
monotone in f by construction (nested failure sets — no jittery crossings).
Each job's seed is spawned from ``(seed, "figure2", job name)`` and keyed by
N alone, never by the f-list, so any subset of curves or points reproduces
the full run and serial/parallel backends agree bit for bit.  (A historical
seed-reuse bug threaded one generator sequentially through all f-curves, so
the ``f=3`` overlay depended on whether ``f=2`` ran first.)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis import simulate_grid, success_curve
from repro.engine import ExperimentSpec, Job, JobPlan, cell_point, register, run_plan
from repro.experiments.base import (
    ExperimentResult,
    add_precision_artifacts,
    collect_precision_cells,
)

F_VALUES = tuple(range(2, 11))


def _mc_curve(params: dict[str, Any], seed_seq: np.random.SeedSequence) -> dict[str, Any]:
    """Engine job: Monte Carlo P[Success] at one N for every requested f.

    Returns a string-keyed row so the value round-trips exactly through the
    checkpoint codec: ``{"f": estimate}`` floats for fixed-count runs, or
    full per-cell precision dicts (point, Wilson bounds, trials) when the
    plan carries a ``target_ci`` — the adaptive-stopping kernel then runs
    each cell only until its interval is tight enough.
    """
    rng = np.random.default_rng(seed_seq)
    target = params.get("target_ci")
    method = params.get("method", "crn")
    if target is not None:
        cells = simulate_grid(
            params["n"],
            tuple(params["fs"]),
            params["iterations"],
            rng,
            target_half_width=target,
            confidence=params.get("ci_confidence", 0.95),
            method=method,
        )
        return {str(f): cell.to_row() for f, cell in cells.items()}
    estimates = simulate_grid(
        params["n"], tuple(params["fs"]), params["iterations"], rng, method=method
    )
    return {str(f): p for f, p in estimates.items()}


def build_plan(
    f_values: tuple[int, ...] = F_VALUES,
    n_max: int = 63,
    mc_iterations: int = 0,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
) -> JobPlan:
    """Decompose Figure 2 into one curve-level Monte Carlo job per N.

    The Equation-1 curves are closed-form and cheap; they are computed in
    the reduction rather than shipped as jobs.  With ``target_ci``, each
    job samples adaptively: ``mc_iterations`` becomes the first-batch
    floor and every (N, f) cell stops at that interval half-width.
    ``mc_method`` selects the overlay estimator (``"crn"``,
    ``"stratified"``, or ``"stratified-cv"`` — see
    :func:`repro.analysis.montecarlo.simulate_grid`).
    """
    jobs = []
    if mc_iterations > 0:
        for n in range(max(2, min(f_values) + 1), n_max + 1):
            fs = [f for f in f_values if n >= max(2, f + 1)]
            params: dict[str, Any] = {"n": n, "fs": fs, "iterations": mc_iterations}
            if target_ci is not None:
                params["target_ci"] = target_ci
                params["ci_confidence"] = ci_confidence
            if mc_method != "crn":
                params["method"] = mc_method
            jobs.append(Job(name=f"mc/n={n}", fn=_mc_curve, params=params))

    def reduce(values: dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult("figure2")
        result.meta = {
            "seed": seed,
            "f_values": list(f_values),
            "n_max": n_max,
            "mc_iterations": mc_iterations,
            "mc_method": mc_method,
        }
        if target_ci is not None:
            result.meta["target_ci"] = target_ci
            result.meta["ci_confidence"] = ci_confidence
        curves: dict[str, tuple] = {}
        for f in f_values:
            ns, ps = success_curve(f, n_max=n_max)
            curves[f"f={f}"] = (ns, ps)
        result.add_series(
            "equation1",
            curves,
            caption="Figure 2: P[Success] vs nodes (Equation 1)",
            x_label="nodes",
            y_label="P[Success]",
        )
        if mc_iterations > 0:
            mc_curves: dict[str, tuple] = {}
            for f in f_values:
                ns = np.arange(max(2, f + 1), n_max + 1)
                # quarantined jobs are absent: their points plot as NaN gaps
                ps = np.array([cell_point(values, f"mc/n={n}", str(f)) for n in ns])
                mc_curves[f"sim f={f}"] = (ns, ps)
            result.add_series(
                "montecarlo",
                mc_curves,
                caption=f"Figure 2 overlay: Monte Carlo, {mc_iterations} iterations"
                if target_ci is None
                else f"Figure 2 overlay: Monte Carlo, adaptive to ±{target_ci:g}",
                x_label="nodes",
                y_label="P[Success]",
            )
            add_precision_artifacts(
                result, collect_precision_cells(values), target_ci, ci_confidence
            )
        # summary rows the paper quotes in prose
        rows = []
        for f in f_values:
            ns, ps = curves[f"f={f}"]
            rows.append([f, float(ps[0]), float(ps[-1])])
        result.add_table(
            "endpoints",
            ["f", f"P[S] at N=f+1", f"P[S] at N={n_max}"],
            rows,
            caption="Curve endpoints: every f-series climbs toward 1",
        )
        return result

    return JobPlan(
        experiment="figure2",
        seed=seed,
        jobs=jobs,
        reduce=reduce,
        # each MC job runs exactly its `iterations` heartbeat-counted trials;
        # the engine installs this total on the ProgressReporter for ETA lines
        meta={"total_trials": sum(j.params.get("iterations", 0) for j in jobs)},
    )


def run(
    f_values: tuple[int, ...] = F_VALUES,
    n_max: int = 63,
    mc_iterations: int = 0,
    seed: int = 2000,
    target_ci: float | None = None,
    ci_confidence: float = 0.95,
    mc_method: str = "crn",
    executor: Any | None = None,
    checkpoint: Any | None = None,
) -> ExperimentResult:
    """Regenerate Figure 2.

    ``mc_iterations > 0`` adds a Monte Carlo overlay series per f (the
    paper's simulation points).  ``target_ci`` switches the overlay to
    adaptive stopping — every cell samples until its interval half-width
    at ``ci_confidence`` reaches the target — and adds the
    ``mc_precision`` table plus a manifest precision block.  ``mc_method``
    selects the overlay estimator (``"stratified"``/``"stratified-cv"``
    for the variance-reduced kernels).  ``executor`` selects the engine
    backend (default serial); results are executor-independent.
    ``checkpoint`` streams completed jobs for crash-safe ``--resume``.
    """
    plan = build_plan(
        f_values=f_values,
        n_max=n_max,
        mc_iterations=mc_iterations,
        seed=seed,
        target_ci=target_ci,
        ci_confidence=ci_confidence,
        mc_method=mc_method,
    )
    return run_plan(plan, executor, checkpoint=checkpoint)


register(
    ExperimentSpec(
        name="figure2",
        run=run,
        profiles={"quick": {"mc_iterations": 2_000}, "full": {"mc_iterations": 20_000}},
        parallel=True,
        order=20,
        description="Fig. 2 P[Success] vs N, f=2..10, with MC overlay",
    )
)

"""EXP-GRAY bench — probe-retry threshold vs lossy-segment false positives."""

from repro.experiments.grayfailure import detection_latency_under_loss, false_positive_rate


def test_retry_threshold_suppresses_false_positives(once, capsys):
    def grid():
        return {
            retries: false_positive_rate(0.05, retries, sim_seconds=60.0)
            for retries in (1, 2, 3)
        }

    rates = once(grid)
    with capsys.disabled():
        print()
        for retries, (fp, flaps) in rates.items():
            print(f"  retries={retries}: {fp:.1f} spurious DOWNs/link-hour, {flaps:.0f} flaps/hour")
    assert rates[2][0] < rates[1][0]
    assert rates[3][0] <= rates[2][0]


def test_clean_network_has_zero_false_positives(once):
    fp, flaps = once(false_positive_rate, 0.0, 2, 6, 60.0)
    assert fp == 0 and flaps == 0


def test_detection_still_works_under_loss(once):
    latency = once(detection_latency_under_loss, 0.05, 2)
    # a real failure is still found within a few sweeps despite 5% loss
    assert latency < 4 * 0.5 + 1.0

"""``python -m repro``: package banner, version, tool index, and ``obs`` verb."""

import sys

from repro import __version__, crossover_n, success_probability


def _banner() -> int:
    """Print what this package is and how to drive it."""
    print(f"repro {__version__} — DRS network-survivability reproduction")
    print("(Chowdhury, Frieder, Luse, Wan — IPDPS 2000 Workshops)")
    print()
    print(f"sanity: Equation 1 P[S](18, 2) = {success_probability(18, 2):.6f} "
          f"(paper: first exceeds 0.99 at N=18; crossover_n(2) = {crossover_n(2)})")
    print()
    print("tools:")
    print("  drs-experiments [--quick] [--html]   regenerate every figure/table")
    print("  drs-sim SPEC.json [--compare]        run declarative scenarios")
    print("  drs-analyze report N                 survivability calculator")
    print("  python -m repro obs PATH...          inspect run manifests/metrics/traces")
    print("  python -m repro obs export-trace SRC Chrome/Perfetto trace from a run or spec")
    print("  python -m repro obs postmortem SRC   per-incident failover critical paths")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md, docs/")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch: bare invocation prints the banner; ``obs`` inspects artifacts."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv:
        print(f"error: unknown verb {argv[0]!r} (try: obs)", file=sys.stderr)
        return 2
    return _banner()


if __name__ == "__main__":
    sys.exit(main())

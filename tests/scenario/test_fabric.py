"""Tests for the scenario fabric option (hub vs switch)."""

import pytest

from repro.scenario import ScenarioError, ScenarioSpec, run_scenario


def _spec(**overrides):
    raw = {
        "name": "fabric-test",
        "nodes": 4,
        "duration_s": 5.0,
        "protocol": {"kind": "drs", "sweep_period_s": 0.2, "probe_timeout_s": 0.01},
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


def test_default_fabric_is_hub():
    assert _spec().fabric == "hub"


def test_switch_fabric_runs_with_drs():
    report = run_scenario(_spec(fabric="switch"))
    assert report.duration_s == 5.0
    assert report.wire_bits > 0


def test_switch_fabric_fault_script_uses_switch_names():
    report = run_scenario(
        _spec(fabric="switch", faults=[{"at": 2.0, "fail": "switch0"}, {"at": 4.0, "repair": "switch0"}])
    )
    assert report.faults_injected == 2
    assert report.routing_repairs >= 1


def test_hub_names_rejected_on_switch_fabric():
    with pytest.raises(ScenarioError, match="unknown component"):
        run_scenario(_spec(fabric="switch", faults=[{"at": 1.0, "fail": "hub0"}]))


def test_invalid_fabric_rejected():
    with pytest.raises(ScenarioError, match="fabric"):
        _spec(fabric="token-ring")


def test_loss_rate_unsupported_on_switch():
    with pytest.raises(ScenarioError, match="loss_rate"):
        run_scenario(_spec(fabric="switch", loss_rate=0.1))

"""``repro obs``: inspect observability artifacts.

Usage::

    python -m repro obs results/                 # everything in a directory
    python -m repro obs results/figure2.manifest.json
    python -m repro obs /tmp/r/nic.metrics.jsonl /tmp/r/nic.trace.jsonl
    python -m repro obs export-trace /tmp/r/nic-failure-drs.trace.jsonl
    python -m repro obs postmortem examples/scenarios/voicemail_hub_outage.json

The bare form dispatches on artifact suffix: ``*.manifest.json`` (run
provenance), ``*.metrics.jsonl`` / ``*.metrics.prom`` (registry snapshots),
and ``*.trace.jsonl`` (event traces, summarized by category).  Two verbs
consume the span layer:

* ``export-trace`` — convert a trace (or run a scenario spec) to Chrome
  trace-event JSON loadable in Perfetto / ``chrome://tracing``.
* ``postmortem`` — reconstruct each failure's detection→repair critical
  path and score it against the TCP-retransmit deadline budget.

Both accept either a ``*.trace.jsonl`` artifact or a scenario spec JSON
(the scenario is run in-process, seeded from the spec).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter as TallyCounter
from pathlib import Path

from repro.obs.artifacts import load_manifest
from repro.viz import metrics_summary_table, render_table

ARTIFACT_GLOBS = (
    "*.manifest.json",
    "*.metrics.jsonl",
    "*.metrics.prom",
    "*.trace.jsonl",
    "*.checkpoint.jsonl",
)


def _render_manifest(path: Path) -> str:
    manifest = load_manifest(path)
    rows = [
        ["name", manifest.name],
        ["kind", manifest.kind],
        ["seed", manifest.seed if manifest.seed is not None else "-"],
        ["config hash", manifest.config_hash],
        ["wall seconds", manifest.wall_seconds],
        ["event count", manifest.event_count],
        ["package version", manifest.package_version],
        ["python", manifest.python],
        ["schema version", manifest.schema_version],
    ]
    for key, value in sorted(manifest.extra.items()):
        rows.append([key, value])
    config = json.dumps(manifest.config, sort_keys=True, default=str)
    if len(config) > 100:
        config = config[:97] + "..."
    rows.append(["config", config])
    return render_table(["field", "value"], rows, title=f"manifest: {path.name}")


def _render_metrics_jsonl(path: Path) -> str:
    snapshot = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    return metrics_summary_table(snapshot, title=f"metrics: {path.name}")


def _render_trace_jsonl(path: Path) -> str:
    tally: TallyCounter = TallyCounter()
    first: dict[str, float] = {}
    last: dict[str, float] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        category = row.get("category", "?")
        tally[category] += 1
        t = float(row.get("time", 0.0))
        first.setdefault(category, t)
        last[category] = t
    rows = [
        [category, count, first[category], last[category]]
        for category, count in sorted(tally.items(), key=lambda kv: -kv[1])
    ]
    if not rows:
        return f"trace: {path.name}: (empty)"
    return render_table(
        ["category", "entries", "first (s)", "last (s)"], rows, title=f"trace: {path.name}"
    )


def _render_checkpoint_jsonl(path: Path) -> str:
    rows = []
    total_attempts = 0
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        attempts = int(row.get("attempts", 1))
        total_attempts += attempts
        rows.append(
            [
                row.get("experiment", "?"),
                row.get("job", "?"),
                attempts,
                f"{float(row.get('elapsed_s', 0.0)):.3f}",
            ]
        )
    if not rows:
        return f"checkpoint: {path.name}: (empty)"
    title = f"checkpoint: {path.name} ({len(rows)} job(s), {total_attempts} attempt(s))"
    return render_table(["experiment", "job", "attempts", "elapsed (s)"], rows, title=title)


def render_artifact(path: Path) -> str:
    """Pretty-print one artifact file by suffix."""
    name = path.name
    if name.endswith(".manifest.json"):
        return _render_manifest(path)
    if name.endswith(".metrics.jsonl"):
        return _render_metrics_jsonl(path)
    if name.endswith(".metrics.prom"):
        return f"prometheus snapshot: {path.name}\n{path.read_text().rstrip()}"
    if name.endswith(".trace.jsonl"):
        return _render_trace_jsonl(path)
    if name.endswith(".checkpoint.jsonl"):
        return _render_checkpoint_jsonl(path)
    raise ValueError(f"unrecognized artifact {path} (expected {', '.join(ARTIFACT_GLOBS)})")


def _expand(paths: list[str]) -> list[Path]:
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for pattern in ARTIFACT_GLOBS:
                expanded.extend(sorted(path.glob(pattern)))
        else:
            expanded.append(path)
    return expanded


def _load_spans(source: str):
    """Spans + instant rows from a trace artifact or a scenario spec.

    A ``*.trace.jsonl`` path is read back offline; any other path is taken
    as a scenario spec JSON, which is run in-process (seeded from the spec)
    and mined for its live span log.
    """
    from repro.obs.spans import load_trace_jsonl, span_log, spans_from_entries

    if source.endswith(".trace.jsonl"):
        rows = load_trace_jsonl(source)
        return spans_from_entries(rows), rows
    from repro.scenario.run import run_scenario
    from repro.scenario.spec import load_scenario

    report = run_scenario(load_scenario(source))
    if report.trace is None:
        raise ValueError(f"scenario {source} ran without a trace recorder")
    return list(span_log(report.trace).spans), report.trace.entries()


def _cmd_export_trace(argv: list[str]) -> int:
    from repro.obs.spans import write_chrome_trace

    parser = argparse.ArgumentParser(
        prog="repro obs export-trace",
        description="Export spans as Chrome trace-event JSON (Perfetto / chrome://tracing).",
    )
    parser.add_argument("source", help="a *.trace.jsonl artifact or a scenario spec JSON")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="output file (default: <source stem>.spans.json)")
    args = parser.parse_args(argv)

    spans, instants = _load_spans(args.source)
    if not spans:
        print(f"error: {args.source}: no spans recorded", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else Path(
        args.source.removesuffix(".trace.jsonl").removesuffix(".json") + ".spans.json"
    )
    write_chrome_trace(out, spans, instants)
    print(f"wrote {len(spans)} span(s) -> {out}")
    return 0


def _cmd_postmortem(argv: list[str]) -> int:
    from repro.obs.postmortem import build_postmortems, render_postmortems

    parser = argparse.ArgumentParser(
        prog="repro obs postmortem",
        description="Per-incident detection->repair critical paths vs the TCP-retransmit deadline.",
    )
    parser.add_argument("source", help="a *.trace.jsonl artifact or a scenario spec JSON")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="deadline budget in seconds (default: TCP initial RTO)")
    parser.add_argument("--node", type=int, default=None, metavar="N",
                        help="only report episodes observed by this node")
    args = parser.parse_args(argv)

    spans, _ = _load_spans(args.source)
    reports = build_postmortems(spans, deadline_s=args.deadline, node=args.node)
    print(render_postmortems(reports))
    return 0 if all(not r.deadline_violated for r in reports) else 3


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "export-trace":
        return _cmd_export_trace(argv[1:])
    if argv and argv[0] == "postmortem":
        return _cmd_postmortem(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Pretty-print run manifests, metrics snapshots, and trace dumps.",
    )
    parser.add_argument("paths", nargs="+", help="artifact files or results directories")
    parser.add_argument("--raw", action="store_true", help="dump file contents without rendering")
    args = parser.parse_args(argv)

    paths = _expand(args.paths)
    if not paths:
        print("no observability artifacts found", file=sys.stderr)
        return 1
    status = 0
    try:
        for path in paths:
            if not path.exists():
                print(f"error: {path}: no such file", file=sys.stderr)
                status = 1
                continue
            try:
                print(path.read_text().rstrip() if args.raw else render_artifact(path))
            except (ValueError, json.JSONDecodeError, TypeError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
            print()
    except BrokenPipeError:
        # reader (e.g. `| head`) closed the pipe: exit quietly, and point
        # stdout at devnull so the interpreter's final flush doesn't retrip
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Checkpoint stream: value round-trips, validation against the plan, atomicity."""

import json

import numpy as np
import pytest

from repro.engine import Checkpoint, Job, JobOutcome, JobPlan
from repro.engine.checkpoint import decode_value, encode_value


def _noop(params, seed_seq):
    return params.get("v", 0.0)


def _plan(names=("a", "b", "c"), seed=11, experiment="toy"):
    jobs = [Job(name=n, fn=_noop, params={"v": float(i)}) for i, n in enumerate(names)]
    return JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)


def _record(checkpoint, plan, name, value, attempts=1):
    assert checkpoint.record(plan, JobOutcome(name=name, ok=True, value=value, attempts=attempts))


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            -3,
            "text",
            0.1 + 0.2,  # float repr round-trips exactly through JSON
            1e-308,
            (1.5, 2.5),
            (1, ("nested", 2.0)),
            [1.0, 2.0],
            {"k": 1.0, "nested": {"t": (3, 4)}},
        ],
    )
    def test_json_round_trip_is_exact(self, value):
        encoded = json.loads(json.dumps(encode_value(value)))
        assert decode_value(encoded) == value

    def test_numpy_scalars_normalize(self):
        assert encode_value(np.float64(0.25)) == 0.25
        assert encode_value(np.int64(7)) == 7
        assert encode_value(np.bool_(True)) is True

    def test_ndarray_round_trips(self):
        arr = np.array([0.1, 0.2, 0.3])
        back = decode_value(json.loads(json.dumps(encode_value(arr))))
        assert isinstance(back, np.ndarray)
        assert back.dtype == arr.dtype
        np.testing.assert_array_equal(back, arr)

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value({1: "non-string key"})
        with pytest.raises(TypeError):
            encode_value({"__tuple__": [1]})  # collides with the type tag


class TestCheckpointRoundTrip:
    def test_record_then_load(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 0.125, attempts=2)
        _record(checkpoint, plan, "b", (1.5, 2.5))

        fresh = Checkpoint(path)
        records = {r.job: r for r in fresh.load(plan)}
        assert set(records) == {"a", "b"}
        assert records["a"].value == 0.125 and records["a"].attempts == 2
        assert records["b"].value == (1.5, 2.5)
        assert sorted(fresh.completed_jobs()) == ["a", "b"]

    def test_duplicate_records_last_wins(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 1.0)
        _record(checkpoint, plan, "a", 2.0)
        records = Checkpoint(path).load(plan)
        assert [r.value for r in records if r.job == "a"] == [2.0]

    def test_unencodable_value_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        assert not checkpoint.record(plan, JobOutcome(name="a", ok=True, value=object()))
        _record(checkpoint, plan, "b", 1.0)
        assert Checkpoint(path).load(plan)[0].job == "b"


class TestCheckpointValidation:
    def test_wrong_root_seed_discards_records(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan(seed=11)
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 1.0)
        assert Checkpoint(path).load(_plan(seed=12)) == []

    def test_wrong_experiment_discards_records(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan(experiment="toy")
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 1.0)
        assert Checkpoint(path).load(_plan(experiment="other")) == []

    def test_unknown_job_discarded(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan(names=("a", "b", "c"))
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "c", 1.0)
        shrunk = _plan(names=("a", "b"))
        assert Checkpoint(path).load(shrunk) == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 1.0)
        with path.open("a") as fh:
            fh.write('{"torn wri\n')
            fh.write("not json at all\n")
        records = Checkpoint(path).load(plan)
        assert [r.job for r in records] == ["a"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert Checkpoint(tmp_path / "absent.jsonl").load(_plan()) == []


class TestAtomicity:
    def test_every_flush_leaves_valid_jsonl_and_no_tmp(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        for i, name in enumerate(("a", "b", "c")):
            _record(checkpoint, plan, name, float(i))
            lines = path.read_text().splitlines()
            assert len(lines) == i + 1
            for line in lines:
                json.loads(line)  # every snapshot parses in full
            assert not list(tmp_path.glob("*.tmp"))


class TestAppendOnly:
    def test_each_record_only_appends_bytes(self, tmp_path):
        """O(1) writes: between compactions a record never rewrites the file."""
        names = tuple(f"job{i}" for i in range(40))
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan(names=names)
        checkpoint = Checkpoint(path)
        checkpoint.load(plan)
        previous = b""
        for i, name in enumerate(names):
            _record(checkpoint, plan, name, float(i))
            content = path.read_bytes()
            assert content.startswith(previous), "a persisted prefix was rewritten"
            assert len(content) > len(previous)
            previous = content
        assert checkpoint.compactions == 0  # no duplicates -> nothing stale

    def test_duplicates_trigger_compaction_at_the_threshold(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path, compact_threshold=3)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", 0.0)
        for i in range(1, 3):  # two supersessions: still below the threshold
            _record(checkpoint, plan, "a", float(i))
        assert checkpoint.compactions == 0
        assert len(path.read_text().splitlines()) == 3  # live + 2 stale
        _record(checkpoint, plan, "a", 99.0)  # third stale line: compacts
        assert checkpoint.compactions == 1
        assert path.read_text().splitlines() != []
        assert len(path.read_text().splitlines()) == 1  # one live record
        records = Checkpoint(path).load(plan)
        assert [(r.job, r.value) for r in records] == [("a", 99.0)]

    def test_stale_lines_counted_across_loads(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        first = Checkpoint(path)
        first.load(plan)
        for value in (1.0, 2.0, 3.0):
            _record(first, plan, "a", value)
        with path.open("a") as fh:
            fh.write('{"torn wri\n')  # a torn tail is stale too

        fresh = Checkpoint(path, compact_threshold=3)
        fresh.load(plan)  # 4 lines, 1 live -> 3 stale: at the threshold
        _record(fresh, plan, "b", 1.0)
        assert fresh.compactions == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # exactly the live records survive
        reloaded = {r.job: r.value for r in Checkpoint(path).load(plan)}
        assert reloaded == {"a": 3.0, "b": 1.0}

    def test_compaction_keeps_value_round_trip_exact(self, tmp_path):
        path = tmp_path / "toy.checkpoint.jsonl"
        plan = _plan()
        checkpoint = Checkpoint(path, compact_threshold=1)
        checkpoint.load(plan)
        _record(checkpoint, plan, "a", (0.1 + 0.2, np.float64(1e-308)))
        _record(checkpoint, plan, "a", (0.1 + 0.2, np.float64(1e-308)))  # compacts
        assert checkpoint.compactions == 1
        records = Checkpoint(path).load(plan)
        assert records[0].value == (0.1 + 0.2, 1e-308)

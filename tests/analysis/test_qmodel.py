"""Tests for the unconditional q^f mixing layer."""

import numpy as np
import pytest

from repro.analysis import failure_count_pmf, unconditional_success


def test_pmf_normalized_and_geometric():
    pmf = failure_count_pmf(q=0.1, f_max=10)
    assert pmf.sum() == pytest.approx(1.0)
    ratios = pmf[1:] / pmf[:-1]
    assert np.allclose(ratios, 0.1)


def test_pmf_q_zero_degenerate():
    pmf = failure_count_pmf(q=0.0, f_max=5)
    assert pmf[0] == 1.0 and pmf[1:].sum() == 0.0


def test_pmf_validation():
    with pytest.raises(ValueError):
        failure_count_pmf(q=1.0, f_max=5)
    with pytest.raises(ValueError):
        failure_count_pmf(q=-0.1, f_max=5)
    with pytest.raises(ValueError):
        failure_count_pmf(q=0.1, f_max=-1)


def test_unconditional_success_bounds_and_limits():
    p = unconditional_success(n=10, q=0.1)
    assert 0 < p < 1
    # q -> 0: only the f=0 term survives -> probability 1
    assert unconditional_success(n=10, q=0.0) == pytest.approx(1.0)


def test_unconditional_increases_with_n():
    # the paper's headline: resilience improves with cluster size
    p_small = unconditional_success(n=4, q=0.2)
    p_large = unconditional_success(n=40, q=0.2)
    assert p_large > p_small
    assert unconditional_success(n=200, q=0.2) > 0.99


def test_unconditional_decreases_with_q():
    assert unconditional_success(10, 0.05) > unconditional_success(10, 0.3)


def test_f_max_truncation_consistent():
    full = unconditional_success(6, 0.3)
    truncated = unconditional_success(6, 0.3, f_max=14)
    assert full == pytest.approx(truncated)
    # over-large f_max is clamped to the physical limit
    assert unconditional_success(6, 0.3, f_max=99) == pytest.approx(full)

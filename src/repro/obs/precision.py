"""Statistical observability: per-cell precision of Monte Carlo estimates.

A finished sweep used to report point values with no visibility into *how
good* each (N, f) cell's estimate is: CI widths, sampling efficiency, and
convergence behavior were invisible, and iteration counts were fixed
guesses.  This module makes estimator quality a first-class, recorded, and
steerable signal:

* :class:`CellPrecision` — one (N, f) cell's quality record: successes,
  trials, the Wilson interval at a configurable confidence, relative
  half-width, throughput, and sampling efficiency against the
  binomial-variance floor.
* ``stats.cell`` flight events — the Monte Carlo estimators
  (:func:`repro.analysis.montecarlo.simulate_grid` and the per-point
  estimator) publish one event per cell per sampling batch through the
  engine flight recorder (:func:`publish_cell_precision`), so ``repro obs
  watch`` gains a live precision panel and the Perfetto export gains a
  CI-width counter track.
* Sweep-quality reports — :func:`fold_cells` reduces a flight stream (or
  manifest summary) to the latest state per cell, and
  :func:`precision_report` / :func:`render_precision_report` turn that
  into the ``repro obs precision`` verb's output: worst cells, per-f
  target attainment, and trials saved versus a fixed-count run.

Trials accounting assumes the common-random-numbers sweep kernel: every
cell at one N shares a single sampling pass, so a row's sampling cost is
the *maximum* trial count over its cells, not the sum (see
docs/model.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: flight-event kind carrying one cell's precision snapshot
STATS_CELL_KIND = "stats.cell"


@dataclass(frozen=True)
class CellPrecision:
    """Precision record for one (N, f) Monte Carlo cell.

    ``target_half_width`` is the adaptive-stopping goal the cell ran
    under (``None`` for fixed-count runs); ``elapsed_s`` is the sampling
    wall time attributed to the cell's row so far.  ``topology`` names the
    topology the cell was estimated over (``None`` for the classic
    dual-hub estimators, which predate the field — every consumer treats
    the two identically).  ``method`` names the estimator the interval
    came from: ``"wilson"`` (a plain binomial proportion — the default,
    and what every record before the variance-reduced estimators carried
    implicitly) or a stratified method (``"stratified"``,
    ``"stratified-cv"``), where ``low``/``high`` are the combined
    stratified interval and ``successes``/``trials`` record the sampled
    stratum's raw counts; ``std_error`` then carries the implied
    normal-approximation standard error.
    """

    n: int
    f: int
    successes: int
    trials: int
    confidence: float
    point: float
    low: float
    high: float
    target_half_width: float | None = None
    elapsed_s: float = 0.0
    topology: str | None = None
    method: str = "wilson"
    std_error: float | None = None

    @classmethod
    def from_counts(
        cls,
        n: int,
        f: int,
        successes: int,
        trials: int,
        confidence: float = 0.95,
        target_half_width: float | None = None,
        elapsed_s: float = 0.0,
        topology: str | None = None,
    ) -> "CellPrecision":
        """Build the record (Wilson interval included) from raw counts."""
        from repro.analysis.stats import wilson_interval  # no cycle at module load

        est = wilson_interval(successes, trials, confidence)
        return cls(
            n=n,
            f=f,
            successes=successes,
            trials=trials,
            confidence=confidence,
            point=est.point,
            low=est.low,
            high=est.high,
            target_half_width=target_half_width,
            elapsed_s=elapsed_s,
            topology=topology,
        )

    @classmethod
    def from_stratified(
        cls,
        n: int,
        f: int,
        successes: int,
        trials: int,
        point: float,
        half_width: float,
        confidence: float = 0.95,
        target_half_width: float | None = None,
        elapsed_s: float = 0.0,
        topology: str | None = None,
        method: str = "stratified",
    ) -> "CellPrecision":
        """Build the record from a stratified / control-variate estimate.

        ``point`` and ``half_width`` come from the stratified combination
        (exact strata plus the scaled sampled-stratum interval — see
        docs/model.md §11), not from a Wilson interval over
        ``successes``/``trials``; those still record the sampled stratum's
        raw counts so trials accounting keeps working.  The interval is
        clipped to [0, 1] — a no-op for the dual-hub estimators, whose
        combined interval sits inside the unit interval by construction —
        and ``std_error`` back-solves the implied normal standard error so
        downstream variance accounting is method-agnostic.
        """
        from repro.analysis.stats import _z_for  # no cycle at module load

        return cls(
            n=n,
            f=f,
            successes=successes,
            trials=trials,
            confidence=confidence,
            point=point,
            low=max(0.0, point - half_width),
            high=min(1.0, point + half_width),
            target_half_width=target_half_width,
            elapsed_s=elapsed_s,
            topology=topology,
            method=method,
            std_error=half_width / _z_for(confidence),
        )

    # --------------------------------------------------------------- derived
    @property
    def half_width(self) -> float:
        """Half the Wilson interval width — the precision actually achieved."""
        return (self.high - self.low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the point estimate (inf at p = 0)."""
        return self.half_width / self.point if self.point > 0 else float("inf")

    @property
    def trials_per_second(self) -> float:
        """Sampling throughput attributed to this cell's row."""
        return self.trials / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Trial-budget efficiency against the binomial-variance floor.

        An ideal estimator at the binomial variance floor needs
        ``z² p̂(1-p̂) / half_width²`` trials for this cell's achieved
        half-width; efficiency is that floor divided by the trials
        actually spent, in [0, 1].  Degenerate cells (p̂ at 0 or 1, where
        the Wilson width is driven by the z²/trials continuity term, not
        the variance) read as 0 — by design: their width cannot be bought
        down by better sampling, only by more trials.

        Variance-reduced methods (``method != "wilson"``) are *not* capped
        at 1: beating the binomial floor is exactly what stratification
        and control variates buy, and the excess over 1 is the observed
        variance-reduction factor.
        """
        hw = self.half_width
        if hw <= 0 or self.trials <= 0:
            return 0.0
        from repro.analysis.stats import _z_for

        z = _z_for(self.confidence)
        floor = z * z * self.point * (1.0 - self.point) / (hw * hw)
        ratio = floor / self.trials
        return ratio if self.method != "wilson" else min(1.0, ratio)

    @property
    def met_target(self) -> bool:
        """Whether the achieved half-width is at or below the target."""
        return self.target_half_width is not None and self.half_width <= self.target_half_width

    # ------------------------------------------------------------- transport
    def to_row(self) -> dict[str, Any]:
        """JSON-round-trippable form (checkpoint codec / manifest payload)."""
        row: dict[str, Any] = {
            "p": self.point,
            "low": self.low,
            "high": self.high,
            "successes": self.successes,
            "trials": self.trials,
            "confidence": self.confidence,
        }
        if self.target_half_width is not None:
            row["target"] = self.target_half_width
            row["met"] = self.met_target
        if self.topology is not None:
            row["topology"] = self.topology
        if self.method != "wilson":
            row["method"] = self.method
        if self.std_error is not None:
            row["std_error"] = self.std_error
        return row

    def event_fields(self, done: bool = False) -> dict[str, Any]:
        """The ``stats.cell`` flight-event payload for this cell."""
        fields: dict[str, Any] = {
            "n": self.n,
            "f": self.f,
            "successes": self.successes,
            "trials": self.trials,
            "confidence": self.confidence,
            "point": round(self.point, 8),
            "half_width": round(self.half_width, 8),
            "done": done,
        }
        if self.target_half_width is not None:
            fields["target"] = self.target_half_width
            fields["met"] = self.met_target
        if self.topology is not None:
            fields["topology"] = self.topology
        if self.method != "wilson":
            fields["method"] = self.method
        if self.std_error is not None:
            fields["std_error"] = round(self.std_error, 10)
        return fields


def publish_cell_precision(cell: CellPrecision, done: bool = False) -> None:
    """Emit one ``stats.cell`` event on the current flight recorder.

    ``done=True`` marks the cell's final snapshot (it will receive no more
    trials — it met its target, or the run's budget is exhausted).  One
    global lookup plus a ``None`` check when recording is off, matching
    the metrics/heartbeat hot-path pattern.
    """
    from repro.obs.flightrecorder import flight_recorder

    recorder = flight_recorder()
    if recorder is None:
        return
    recorder.emit(STATS_CELL_KIND, **cell.event_fields(done=done))


# ----------------------------------------------------------------- reduction
def fold_cells(events: Iterable[Mapping[str, Any]]) -> dict[tuple, dict[str, Any]]:
    """Latest ``stats.cell`` state per cell from a flight stream.

    Batch-progress events for one cell supersede each other; the returned
    dict holds each cell's most recent snapshot (the ``done`` one, for a
    completed run).  Non-``stats.cell`` events are ignored, so the whole
    stream can be passed as-is.  Cells are keyed ``(n, f)`` for legacy
    (topology-less) events and ``(topology, n, f)`` when the event carries
    a topology label — one multi-topology sweep can share a stream without
    same-(n, f) cells clobbering each other.
    """
    cells: dict[tuple, dict[str, Any]] = {}
    for event in events:
        if event.get("kind") != STATS_CELL_KIND:
            continue
        n, f = int(event.get("n", -1)), int(event.get("f", -1))
        topology = event.get("topology")
        key = (n, f) if topology is None else (str(topology), n, f)
        cells[key] = {
            "n": n,
            "f": f,
            "topology": topology,
            "successes": int(event.get("successes", 0)),
            "trials": int(event.get("trials", 0)),
            "confidence": float(event.get("confidence", 0.95)),
            "point": float(event.get("point", 0.0)),
            "half_width": float(event.get("half_width", 0.0)),
            "target": event.get("target"),
            "met": bool(event.get("met", False)),
            "done": bool(event.get("done", False)),
            "method": str(event.get("method", "wilson")),
        }
    return cells


def cells_from_manifest(manifest: Mapping[str, Any]) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Per-cell rows plus the summary block recorded in a run manifest.

    Experiments running with a CI target fold a ``precision`` section into
    their result meta, which the runner copies into the manifest config;
    this digs it out of either a raw manifest dict or a
    :meth:`~repro.obs.artifacts.RunManifest.to_dict` payload.
    """
    config = manifest.get("config")
    section = None
    if isinstance(config, Mapping):
        section = config.get("precision")
    if section is None:
        section = manifest.get("precision")
    if not isinstance(section, Mapping):
        return [], {}
    cells = [dict(cell) for cell in section.get("cells", [])]
    summary = {k: v for k, v in section.items() if k != "cells"}
    return cells, summary


def precision_report(
    cells: Iterable[Mapping[str, Any]],
    target: float | None = None,
    top: int = 10,
) -> dict[str, Any]:
    """Sweep-quality report over per-cell precision rows.

    ``cells`` rows need ``n``, ``f``, ``trials``, and ``half_width`` (the
    shapes produced by :func:`fold_cells` and :func:`cells_from_manifest`
    both qualify); ``target`` overrides the per-cell recorded target when
    given.  The fixed-count baseline is the run every cell would need at a
    single shared iteration count to match the worst cell's precision:
    (number of N rows) × (largest per-row trial count).  Under the CRN
    kernel a row's sampling cost is the max over its cells, so
    ``total_trials`` sums per-row maxima — not per-cell trials, which
    would double-count shared draws.
    """
    rows = [dict(c) for c in cells]
    if target is None:
        targets = {c.get("target") for c in rows if c.get("target") is not None}
        target = max(targets) if targets else None
    for c in rows:
        if target is not None:
            c["met"] = c.get("half_width", float("inf")) <= target
    # a CRN "row" is one sampling pass: one N per topology (legacy rows
    # carry no topology and fold into the None group, as before)
    by_n: dict[tuple, int] = {}
    for c in rows:
        n = (c.get("topology"), int(c.get("n", -1)))
        by_n[n] = max(by_n.get(n, 0), int(c.get("trials", 0)))
    total_trials = sum(by_n.values())
    fixed_trials = len(by_n) * max(by_n.values(), default=0)
    saved = fixed_trials - total_trials
    worst = sorted(rows, key=lambda c: -float(c.get("half_width", 0.0)))
    per_f: dict[int, dict[str, Any]] = {}
    for c in sorted(rows, key=lambda c: (int(c.get("f", -1)), int(c.get("n", -1)))):
        f = int(c.get("f", -1))
        stats = per_f.setdefault(
            f, {"f": f, "cells": 0, "met": 0, "worst_half_width": 0.0, "trials": 0}
        )
        stats["cells"] += 1
        stats["met"] += bool(c.get("met", False))
        stats["worst_half_width"] = max(stats["worst_half_width"], float(c.get("half_width", 0.0)))
        stats["trials"] += int(c.get("trials", 0))
    return {
        "cells": len(rows),
        "met_target": sum(bool(c.get("met", False)) for c in rows),
        "target_half_width": target,
        "worst_half_width": float(worst[0]["half_width"]) if worst else 0.0,
        "worst_cells": [
            {
                "n": int(c.get("n", -1)),
                "f": int(c.get("f", -1)),
                "topology": c.get("topology"),
                "point": float(c.get("point", 0.0)),
                "half_width": float(c.get("half_width", 0.0)),
                "trials": int(c.get("trials", 0)),
                "met": bool(c.get("met", False)),
            }
            for c in worst[: max(0, top)]
        ],
        "per_f": [per_f[f] for f in sorted(per_f)],
        "total_trials": total_trials,
        "fixed_equivalent_trials": fixed_trials,
        "trials_saved": saved,
        "trials_saved_fraction": saved / fixed_trials if fixed_trials else 0.0,
        "rows": len(by_n),
    }


def render_precision_report(report: Mapping[str, Any], source: str = "") -> str:
    """Pretty tables for one :func:`precision_report` payload."""
    from repro.viz import render_table

    target = report.get("target_half_width")
    title = f"sweep quality: {source}" if source else "sweep quality"
    summary_rows = [
        ["cells", report.get("cells", 0)],
        ["at target", f"{report.get('met_target', 0)}/{report.get('cells', 0)}"
         if target is not None else "-"],
        ["target half-width", f"{target:.6g}" if target is not None else "-"],
        ["worst half-width", f"{report.get('worst_half_width', 0.0):.6g}"],
        ["total trials", f"{report.get('total_trials', 0):,}"],
        ["fixed-count equivalent", f"{report.get('fixed_equivalent_trials', 0):,}"],
        ["trials saved", f"{report.get('trials_saved', 0):,} "
         f"({report.get('trials_saved_fraction', 0.0):.0%})"],
    ]
    parts = [render_table(["field", "value"], summary_rows, title=title)]
    worst = report.get("worst_cells", [])
    if worst:
        # label rows with the topology only when the run recorded one
        # (legacy artifacts fold into the classic n/f-only table)
        labelled = any(c.get("topology") for c in worst)
        headers = (["topology"] if labelled else []) + [
            "n", "f", "P[S]", "half-width", "trials", "at target"
        ]
        parts.append(
            render_table(
                headers,
                [
                    ([c.get("topology") or "-"] if labelled else [])
                    + [c["n"], c["f"], f"{c['point']:.6f}", f"{c['half_width']:.6g}",
                       c["trials"], "yes" if c["met"] else ("no" if target is not None else "-")]
                    for c in worst
                ],
                title="worst cells (widest Wilson interval first)",
            )
        )
    per_f = report.get("per_f", [])
    if per_f:
        parts.append(
            render_table(
                ["f", "cells", "at target", "worst half-width", "cell trials"],
                [
                    [s["f"], s["cells"],
                     f"{s['met']}/{s['cells']}" if target is not None else "-",
                     f"{s['worst_half_width']:.6g}", f"{s['trials']:,}"]
                    for s in per_f
                ],
                title="target attainment by failure count",
            )
        )
    return "\n\n".join(parts)

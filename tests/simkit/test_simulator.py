"""Unit tests for the simulator event loop."""

import pytest

from repro.simkit import ScheduleInPastError, Simulator


def test_run_drains_queue_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(1.0, lambda: None)


def test_schedule_nonfinite_raises():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(float("nan"), lambda: None)
    with pytest.raises(ScheduleInPastError):
        sim.schedule(float("inf"), lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(10.0, lambda: fired.append("b"))
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    # the later event survives and fires on the next run
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_same_time_rescheduling_is_fifo():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("first"), sim.schedule(0.0, lambda: fired.append("third"))))
    sim.schedule(1.0, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_max_events_budget():
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run(max_events=100)
    assert count[0] == 100


def test_cancel_scheduled_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(ev)
    sim.run()
    assert fired == []


def test_step_returns_false_on_empty():
    assert Simulator().step() is False


def test_max_events_exhaustion_does_not_advance_clock_to_until():
    # when the event budget runs out first, the clock must stay at the last
    # fired event, not jump to `until`
    sim = Simulator()
    for i in range(1, 11):
        sim.schedule(float(i), lambda: None)
    sim.run(until=100.0, max_events=3)
    assert sim.now == 3.0
    assert sim.pending == 7


def test_until_wins_when_budget_is_larger():
    sim = Simulator()
    fired = []
    for i in range(1, 11):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(until=4.5, max_events=100)
    assert fired == [1, 2, 3, 4]
    assert sim.now == 4.5


def test_resume_after_max_events_continues_cleanly():
    sim = Simulator()
    fired = []
    for i in range(1, 6):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(until=10.0, max_events=2)
    assert fired == [1, 2] and sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 10.0


def test_stop_in_callback_does_not_advance_clock_to_until():
    # stop() halts before the next event fires AND before the final
    # clock-advance to `until`
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run(until=50.0)
    assert fired == [1]
    assert sim.now == 1.0
    assert sim.pending == 1


def test_profiling_accounts_events_and_categories():
    sim = Simulator()
    prof = sim.enable_profiling()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert prof.events == 2
    assert prof.run_seconds > 0
    assert prof.events_per_second() > 0
    # both lambdas defined here -> one category named after this module
    assert sum(n for n, _secs in prof.by_category.values()) == 2


def test_profile_drain_deltas_are_incremental():
    sim = Simulator()
    prof = sim.enable_profiling()
    sim.schedule(1.0, lambda: None)
    sim.run()
    first = prof.drain_deltas()
    assert first["events"] == 1
    assert prof.drain_deltas()["events"] == 0
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert prof.drain_deltas()["events"] == 1


def test_disable_profiling_discards_profile():
    sim = Simulator()
    sim.enable_profiling()
    sim.disable_profiling()
    assert sim.profile is None
    sim.schedule(1.0, lambda: None)
    sim.run()  # must not crash without a profile

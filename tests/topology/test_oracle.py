"""Exhaustive and statistical oracles for the generic topology kernels.

Three layers of evidence that the generic machinery computes the same
quantity as the specialized dual-hub kernels and as Equation 1:

* exhaustive — every failure subset at n in {2, 3}: pure-Python
  reachability == batched matmul BFS == ``pair_connected_vec``;
* algebraic — breakdown thresholds from the generic binary search match
  the hand-derived ``connectivity_levels``, and the dual-hub fast path
  makes the generic grid replay the specialized grid byte for byte;
* statistical — the generic Monte Carlo estimator agrees with Equation 1
  within a Wilson 99.9% interval on the paper's grid.
"""

from dataclasses import replace
from itertools import combinations

import numpy as np
import pytest

from repro.analysis import (
    connectivity_levels,
    enumerate_topology_success,
    exact_topology_success,
    simulate_topology_grid,
    simulate_topology_success,
    success_probability,
    topology_connected_vec,
    topology_connectivity_levels,
)
from repro.analysis.montecarlo import pair_connected_vec
from repro.analysis.stats import wilson_interval
from repro.topology import dual_hub_cluster, k_hub_cluster


def strip_fast_paths(topology):
    """The same topology with specialized kernels detached.

    Forces every call through the generic batched-BFS / binary-search
    path — the thing these oracles are actually probing.
    """
    return replace(topology, connected_fn=None, levels_fn=None, exact_fn=None)


def _all_failure_matrices(width: int, f: int) -> np.ndarray:
    """Every size-``f`` failure subset of ``width`` sites, one per row."""
    subsets = list(combinations(range(width), f))
    failed = np.zeros((len(subsets), width), dtype=bool)
    for row, subset in enumerate(subsets):
        failed[row, list(subset)] = True
    return failed


@pytest.mark.parametrize("n", [2, 3])
class TestExhaustiveEquivalence:
    """Generic BFS == specialized kernel == reference BFS, every subset."""

    def test_all_three_predicates_agree_on_every_failure_set(self, n):
        topology = dual_hub_cluster(n)
        generic = strip_fast_paths(topology)
        width = topology.width
        for f in range(width + 1):
            failed = _all_failure_matrices(width, f)
            via_bfs = topology_connected_vec(generic, failed)
            via_specialized = pair_connected_vec(failed)
            via_reference = np.array(
                [topology.connected(np.flatnonzero(row)) for row in failed]
            )
            np.testing.assert_array_equal(via_bfs, via_specialized)
            np.testing.assert_array_equal(via_bfs, via_reference)

    def test_fast_path_dispatch_matches_generic_bfs(self, n):
        topology = dual_hub_cluster(n)
        failed = _all_failure_matrices(topology.width, 3)
        np.testing.assert_array_equal(
            topology_connected_vec(topology, failed),
            topology_connected_vec(strip_fast_paths(topology), failed),
        )

    def test_enumeration_matches_equation1_at_every_f(self, n):
        topology = strip_fast_paths(dual_hub_cluster(n))
        for f in range(topology.width + 1):
            assert enumerate_topology_success(topology, f) == pytest.approx(
                success_probability(n, f), abs=1e-12
            )

    def test_exact_dispatch_uses_the_closed_form(self, n):
        topology = dual_hub_cluster(n)
        for f in range(topology.width + 1):
            assert exact_topology_success(topology, f) == success_probability(n, f)


class TestLevelsEquivalence:
    def test_binary_search_matches_hand_derived_thresholds(self):
        topology = strip_fast_paths(dual_hub_cluster(6))
        keys = np.random.default_rng(7).random((4000, topology.width))
        np.testing.assert_array_equal(
            topology_connectivity_levels(topology, keys),
            connectivity_levels(keys),
        )

    def test_levels_encode_the_breakdown_threshold(self):
        # level >= f  iff  the f smallest keys leave the pair connected
        topology = strip_fast_paths(k_hub_cluster(3, hubs=3))
        rng = np.random.default_rng(11)
        keys = rng.random((500, topology.width))
        levels = topology_connectivity_levels(topology, keys)
        ranks = np.argsort(np.argsort(keys, axis=1), axis=1)
        for f in range(topology.width + 1):
            np.testing.assert_array_equal(
                levels >= f, topology_connected_vec(topology, ranks < f)
            )

    def test_dual_hub_grid_is_byte_identical_to_specialized_sweep(self):
        from repro.analysis import simulate_grid

        fs = (1, 2, 3, 4, 5)
        specialized = simulate_grid(8, fs, 20_000, np.random.default_rng(42))
        generic = simulate_topology_grid(
            dual_hub_cluster(8), fs, 20_000, np.random.default_rng(42)
        )
        assert specialized == generic  # same draws, same thresholds, exactly

    def test_generic_path_grid_agrees_statistically(self):
        # no fast path: same estimator, independent verification of the BFS
        fs = (2, 3, 4)
        cells = simulate_topology_grid(
            strip_fast_paths(dual_hub_cluster(6)),
            fs,
            40_000,
            np.random.default_rng(5),
            precision=True,
        )
        for f in fs:
            interval = wilson_interval(cells[f].successes, cells[f].trials, 0.999)
            assert interval.low <= success_probability(6, f) <= interval.high


class TestWilsonAgreementOnPaperGrid:
    """Generic MC vs Equation 1 on the Figure 2 grid, at 99.9% confidence.

    With 9 cells a false failure has probability ~0.9% even if every
    kernel is correct-by-construction; the fixed seeds pin the outcome.
    """

    GRID = [(n, f) for n in (4, 8, 16) for f in (2, 3, 4)]

    @pytest.mark.parametrize("n,f", GRID)
    def test_generic_estimate_covers_equation1(self, n, f):
        topology = strip_fast_paths(dual_hub_cluster(n))
        trials = 60_000
        p_hat = simulate_topology_success(topology, f, trials, seed=900 + 10 * n + f)
        interval = wilson_interval(round(p_hat * trials), trials, 0.999)
        assert interval.low <= success_probability(n, f) <= interval.high


class TestSharedValidation:
    """Satellite: the f-range contract is one ValueError across all layers."""

    def test_equation1_names_the_component_count(self):
        with pytest.raises(ValueError, match="10 failable components, got 11"):
            success_probability(4, 11)
        with pytest.raises(ValueError, match="f must be in"):
            success_probability(4, -1)

    def test_generic_kernels_share_the_contract(self):
        topology = dual_hub_cluster(4)  # width 10, same universe as N=4
        for call in (
            lambda: simulate_topology_success(topology, 11, 100, seed=1),
            lambda: simulate_topology_grid(topology, (2, 11), 100, seed=1),
            lambda: enumerate_topology_success(topology, 11),
            lambda: exact_topology_success(topology, 11),
        ):
            with pytest.raises(ValueError, match="10 failable components, got 11"):
                call()

    def test_dead_at_zero_failures_is_rejected_not_estimated(self):
        from repro.topology import PairConnected, Topology

        # two isolated vertices: the pair predicate fails before any failure
        dead = Topology(
            "split", "test", ("node", "node", "nic"), (), (2,), (0, 1),
            predicate=PairConnected(0, 1),
        )
        with pytest.raises(ValueError, match="zero failures"):
            simulate_topology_grid(dead, (1,), 100, seed=1)
        with pytest.raises(ValueError, match="zero failures"):
            simulate_topology_success(dead, 1, 100, seed=1)

"""Equation 1: the exact pairwise survivability of a DRS cluster.

Model (reconstructed from the paper; full derivation in DESIGN.md §2):

* Components: ``2N`` NICs + 2 backplanes = ``2N + 2`` equiprobable failure
  sites; exactly ``f`` of them fail, chosen uniformly without replacement.
* Success: a fixed node pair (A, B) can still communicate under DRS rules —
  directly on either network, or two-hop via an intermediate whose relevant
  NICs survive.

Counting the *bad* combinations ``B(N, f)`` by conditioning on hub state::

    B(N,f) =  C(2N, f-2)                      # both hubs down
           + 2[C(2N, f-1) - C(2N-2, f-1)]     # one hub down AND an endpoint
                                              #   NIC on the surviving net down
           + 2 C(2N-2, f-2) - C(2N-4, f-4)    # an endpoint fully dead
                                              #   (both hubs up); inclusion-
                                              #   exclusion for both dead
           + 2 T(N-2, f-2)                    # crossed half-alive endpoints,
                                              #   every intermediate hit

    P[Success](N, f) = 1 - B(N, f) / C(2N+2, f)        (Equation 1)

with ``T`` from :func:`repro.analysis.combinatorics.covering_nic_failures`.
The formula is exact for every valid (N, f); the test suite checks it
against exhaustive enumeration and against the paper's stated crossovers.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.combinatorics import comb0, covering_nic_failures


def _validate(n: int, f: int) -> None:
    """Shared f-validation of every Equation 1 entry point.

    An ``f`` beyond the component count has no failure sets at all —
    silently returning a probability would be nonsense, so the error names
    the universe size (the same contract
    :meth:`repro.topology.model.Topology.validate_f` gives every generic
    kernel).
    """
    if n < 2:
        raise ValueError(f"the pair model needs N >= 2 nodes, got {n}")
    if f < 0 or f > 2 * n + 2:
        raise ValueError(
            f"f must be in [0, 2N+2] = [0, {2 * n + 2}]: an N={n} cluster has "
            f"{2 * n + 2} failable components, got {f}"
        )


def total_combinations(n: int, f: int) -> int:
    """All ways to place exactly ``f`` failures: ``C(2N+2, f)``."""
    _validate(n, f)
    return comb0(2 * n + 2, f)


@lru_cache(maxsize=None)
def bad_combinations(n: int, f: int) -> int:
    """Failure sets of size ``f`` that disconnect the fixed pair under DRS.

    Memoized: :func:`crossover_n`'s linear scans and the crossovers
    experiment's repeated checkpoint verification revisit the same (N, f)
    grid, and each entry is a handful of big-int binomials worth skipping.
    """
    _validate(n, f)
    both_hubs = comb0(2 * n, f - 2)
    one_hub = 2 * (comb0(2 * n, f - 1) - comb0(2 * n - 2, f - 1))
    endpoint_dead = 2 * comb0(2 * n - 2, f - 2) - comb0(2 * n - 4, f - 4)
    crossed = 2 * covering_nic_failures(n - 2, f - 2)
    return both_hubs + one_hub + endpoint_dead + crossed


def good_combinations(n: int, f: int) -> int:
    """``F(N, f)``: the numerator of Equation 1."""
    return total_combinations(n, f) - bad_combinations(n, f)


def success_probability(n: int, f: int) -> float:
    """Equation 1: ``P[Success](N, f) = F(N, f) / C(2N+2, f)``."""
    total = total_combinations(n, f)
    if total == 0:
        raise ValueError(f"no failure sets of size {f} exist for N={n}")
    return 1.0 - bad_combinations(n, f) / total


def success_curve(f: int, n_max: int = 63, n_min: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """P[Success] versus N for fixed ``f`` — one series of Figure 2.

    Defaults follow the paper's plotting domain ``f < N < 64``.

    Returns
    -------
    (n_values, probabilities) as NumPy arrays.
    """
    if n_min is None:
        n_min = max(2, f + 1)
    if n_min > n_max:
        raise ValueError(f"empty N range [{n_min}, {n_max}]")
    ns = np.arange(n_min, n_max + 1)
    ps = np.array([success_probability(int(n), f) for n in ns])
    return ns, ps


def expected_dark_pairs(n: int, f: int) -> float:
    """Expected number of disconnected pairs given exactly ``f`` failures.

    By exchangeability every pair shares Equation 1's survival probability,
    so linearity of expectation gives ``C(N,2) * (1 - P[Success](N,f))``
    exactly — no joint distribution needed.  A useful capacity-planning
    bridge between the pairwise and all-pairs views.
    """
    pairs = n * (n - 1) // 2
    return pairs * (1.0 - success_probability(n, f))


def crossover_n(f: int, threshold: float = 0.99, n_max: int = 10_000) -> int:
    """Smallest N at which P[Success](N, f) surpasses ``threshold``.

    The paper's checkpoints: crossover at 18 (f=2), 32 (f=3), 45 (f=4).
    Monotonicity of Equation 1 in N makes the linear scan sound.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    for n in range(max(2, f + 1), n_max + 1):
        if success_probability(n, f) > threshold:
            return n
    raise ValueError(f"no crossover below N={n_max} for f={f}, threshold={threshold}")

"""Package-level smoke tests: public API surface and the module banner."""

import subprocess
import sys


def test_top_level_exports_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_module_banner_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0
    assert "DRS network-survivability reproduction" in proc.stdout
    assert "0.990043" in proc.stdout


def test_all_subpackages_importable():
    import importlib

    for name in (
        "repro.simkit",
        "repro.netsim",
        "repro.protocols",
        "repro.drs",
        "repro.baselines",
        "repro.analysis",
        "repro.cluster",
        "repro.experiments",
        "repro.scenario",
        "repro.viz",
    ):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


def test_public_functions_have_docstrings():
    """Every public callable reachable from the subpackage namespaces is documented."""
    import importlib
    import inspect

    missing = []
    for name in (
        "repro.simkit",
        "repro.netsim",
        "repro.protocols",
        "repro.drs",
        "repro.baselines",
        "repro.analysis",
        "repro.cluster",
        "repro.viz",
    ):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{name}.{symbol}")
    assert not missing, f"undocumented public symbols: {missing}"

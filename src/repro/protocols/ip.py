"""Network layer: routed send, forwarding, and L4 demultiplexing."""

from __future__ import annotations

from typing import Any, Callable

from repro.netsim.addresses import InterfaceAddr, NetworkId, NodeId, broadcast_addr
from repro.netsim.frames import Frame
from repro.netsim.nic import Nic
from repro.netsim.node import Node
from repro.protocols.packet import DEFAULT_TTL, Packet
from repro.protocols.routing import RoutingTable
from repro.simkit import Counter, TraceRecorder

#: Frame-level demux key for all network-layer traffic.
FRAME_PROTOCOL = "ipv4"

PacketHandler = Callable[[Packet, NetworkId], None]


class NetworkLayer:
    """Per-host IP-like layer: routing-table send, forwarding, demux.

    Every host can forward — that is what lets a DRS intermediate carry the
    two-hop repair path.  Loops are bounded by TTL, and the DRS invariant
    (repair routes are only installed via intermediates whose *direct*
    connectivity to both endpoints has been verified) keeps steady-state
    paths at most two hops.
    """

    def __init__(self, node: Node, table: RoutingTable, trace: TraceRecorder | None = None) -> None:
        self.node = node
        self.table = table
        self.trace = trace
        self._protocols: dict[str, PacketHandler] = {}
        self.sent = Counter(f"ip{node.node_id}.sent")
        self.forwarded = Counter(f"ip{node.node_id}.forwarded")
        self.delivered = Counter(f"ip{node.node_id}.delivered")
        self.dropped_no_route = Counter(f"ip{node.node_id}.no_route")
        self.dropped_ttl = Counter(f"ip{node.node_id}.ttl_expired")
        node.register_handler(FRAME_PROTOCOL, self._on_frame)

    # ----------------------------------------------------------------- demux
    def register_protocol(self, protocol: str, handler: PacketHandler) -> None:
        """Register the L4 handler for ``protocol`` (icmp/udp/tcp/...)."""
        if protocol in self._protocols:
            raise ValueError(f"node {self.node.node_id}: protocol {protocol!r} already registered")
        self._protocols[protocol] = handler

    # ------------------------------------------------------------------ send
    def send(self, dst_node: NodeId, protocol: str, payload: Any, ttl: int = DEFAULT_TTL) -> bool:
        """Send an L4 payload to ``dst_node`` using the routing table.

        Returns False when no route exists or the outgoing NIC refused the
        frame; True means the packet left this host (not that it arrived).
        """
        packet = Packet(src_node=self.node.node_id, dst_node=dst_node, protocol=protocol, payload=payload, ttl=ttl)
        return self._route_out(packet)

    def send_direct(self, network: NetworkId, dst_node: NodeId, protocol: str, payload: Any) -> bool:
        """Send to ``dst_node``'s NIC on a *specific* network, bypassing routes.

        The DRS monitor uses this: each probe tests one physical link, so it
        must not be rerouted around the very failure it is looking for.
        """
        packet = Packet(src_node=self.node.node_id, dst_node=dst_node, protocol=protocol, payload=payload, ttl=1)
        dst = InterfaceAddr(node=dst_node, network=network)
        sent = self.node.send_frame(network, dst, FRAME_PROTOCOL, packet)
        if sent:
            self.sent.add()
        return sent

    def broadcast(self, network: NetworkId, protocol: str, payload: Any) -> bool:
        """Broadcast on one network (DRS route-discovery requests)."""
        packet = Packet(
            src_node=self.node.node_id,
            dst_node=broadcast_addr(network).node,
            protocol=protocol,
            payload=payload,
            ttl=1,
        )
        sent = self.node.send_frame(network, broadcast_addr(network), FRAME_PROTOCOL, packet)
        if sent:
            self.sent.add()
        return sent

    def _route_out(self, packet: Packet, forwarding: bool = False) -> bool:
        route = self.table.lookup(packet.dst_node)
        if route is None:
            self.dropped_no_route.add()
            if self.trace is not None:
                self.trace.record("no-route", node=self.node.node_id, packet=str(packet))
            return False
        dst = InterfaceAddr(node=route.next_hop, network=route.network)
        sent = self.node.send_frame(route.network, dst, FRAME_PROTOCOL, packet)
        if sent:
            (self.forwarded if forwarding else self.sent).add()
        return sent

    # --------------------------------------------------------------- receive
    def _on_frame(self, frame: Frame, nic: Nic) -> None:
        packet: Packet = frame.payload
        if packet.dst_node == self.node.node_id or frame.dst.is_broadcast():
            self.delivered.add()
            handler = self._protocols.get(packet.protocol)
            if handler is not None:
                handler(packet, nic.addr.network)
            return
        # Forwarding role: this host is an intermediate router.
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.dropped_ttl.add()
            if self.trace is not None:
                self.trace.record("ttl-expired", node=self.node.node_id, packet=str(packet))
            return
        self._route_out(packet, forwarding=True)

"""Performance bench — the generic topology kernels vs the specialized path.

Guards the tentpole refactor's "generality is free for the paper" claim:

* ``test_dual_hub_fast_path_overhead`` is the CI perf smoke — running the
  dual-hub grid *through the generic API* must stay within 1.3x of the
  specialized ``simulate_grid`` it dispatches to (the fast-path hooks mean
  the only extra work is dispatch itself).
* ``test_generic_bfs_grid_throughput`` records what the assumption-free
  path costs: the same graph rebuilt as ``khub(hubs=2)`` has no attached
  kernels, so every threshold goes through the batched matmul BFS binary
  search.  No assertion on the ratio — the snapshot documents it and the
  bench-gate diff catches regressions.

The committed ``BENCH_bench_topology_kernel.json`` holds the
full-profile numbers; ``TOPOLOGY_BENCH_ITERATIONS`` shrinks the workload
for the quick CI profile.
"""

import os
from time import perf_counter

import numpy as np

from repro.analysis import simulate_grid, simulate_topology_grid, topology_connected_vec
from repro.topology import dual_hub_cluster, fat_tree_three_level, k_hub_cluster

N = 63
F_GRID = (2, 3, 4, 5, 6)
ITERATIONS = int(os.environ.get("TOPOLOGY_BENCH_ITERATIONS", "500000"))


def test_dual_hub_fast_path_overhead(benchmark):
    """CI perf smoke: generic dispatch must cost < 30% over the raw kernel."""
    topology = dual_hub_cluster(N)

    started = perf_counter()
    specialized = simulate_grid(N, F_GRID, ITERATIONS, rng=np.random.default_rng(0))
    specialized_s = perf_counter() - started

    generic = benchmark.pedantic(
        lambda: simulate_topology_grid(topology, F_GRID, ITERATIONS, rng=np.random.default_rng(0)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    generic_s = benchmark.stats.stats.total

    assert generic == specialized  # same draws through either API, exactly
    ratio = generic_s / specialized_s
    benchmark.extra_info["specialized_seconds"] = round(specialized_s, 4)
    benchmark.extra_info["ratio_vs_specialized"] = round(ratio, 3)
    assert ratio <= 1.3, (
        f"dual-hub fast path ({generic_s:.2f}s) exceeds 1.3x the specialized "
        f"kernel ({specialized_s:.2f}s) at {ITERATIONS} iterations"
    )


def test_generic_bfs_grid_throughput(benchmark):
    """The assumption-free path: same graph, no fast-path hooks attached."""
    topology = k_hub_cluster(N, hubs=2)  # the dual-hub graph, generic kernels
    iterations = max(ITERATIONS // 10, 10_000)
    estimates = benchmark.pedantic(
        lambda: simulate_topology_grid(topology, F_GRID, iterations, rng=np.random.default_rng(0)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["iterations"] = iterations
    values = [estimates[f] for f in F_GRID]
    assert all(a >= b for a, b in zip(values, values[1:]))  # CRN monotone in f


def test_batched_bfs_predicate_throughput(benchmark):
    """The matmul-BFS predicate stays vectorized on a deep (3-level) graph."""
    topology = fat_tree_three_level(64, pods=4, leaves_per_pod=4, aggs_per_pod=4, cores=4)
    rng = np.random.default_rng(3)
    failed = rng.random((50_000, topology.width)) < 0.1
    ok = benchmark(lambda: topology_connected_vec(topology, failed))
    assert ok.shape == (50_000,)
    assert 0 < ok.sum() < 50_000

"""Deeper baseline behaviours: split horizon, LSA ordering, reactive clocks."""

from repro.baselines import (
    DistVectorConfig,
    LinkStateConfig,
    install_distvector,
    install_linkstate,
)
from repro.baselines.distvector import Advertisement, RIP_PORT
from repro.baselines.linkstate import Lsa
from repro.netsim import FrameCapture, build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

DV_FAST = DistVectorConfig(advertise_interval_s=0.5, timeout_s=1.5)
LS_FAST = LinkStateConfig(hello_interval_s=0.25, dead_interval_s=1.0)


def test_split_horizon_suppresses_back_advertisement():
    """A route learned via network j is not advertised back onto network j."""
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    install_distvector(cluster, stacks, DV_FAST)
    capture = FrameCapture(cluster.backplanes)
    sim.run(until=3.0)
    # advertisements are on the wire (UDP port 520 broadcasts)
    adverts = [cf for cf in capture.frames if "port=520" in cf.summary]
    assert adverts
    # and at the source: node 0's steady-state routes egress network 0 (all
    # direct), so its network-0 advert must carry only its self-entry
    sim2 = Simulator()
    cluster2 = build_dual_backplane_cluster(sim2, 3)
    stacks2 = install_stacks(cluster2)
    deployment2 = install_distvector(cluster2, stacks2, DV_FAST)
    sim2.run(until=3.0)
    router0 = deployment2.routers[0]
    best = router0._best_routes()
    assert best  # converged
    for net in (0, 1):
        advertised = [dst for dst, (m, nh, egress) in best.items() if egress != net]
        for dst, (m, nh, egress) in best.items():
            if egress == net:
                assert dst not in advertised


def test_distvector_count_to_infinity_is_bounded():
    """The authentic RIP pathology, bounded by metric 16.

    When a node dies, its neighbours briefly re-learn it from each other
    through the *other* network (split horizon only suppresses the learning
    interface), and the metric counts up by one per advertisement round
    until INFINITY garbage-collects the route — the convergence cost the
    paper holds against traditional protocols.
    """
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    deployment = install_distvector(cluster, stacks, DV_FAST)
    sim.run(until=3.0)
    cluster.faults.fail("nic2.0")
    cluster.faults.fail("nic2.1")  # node 2 fully dark
    # mid-counting: the ghost route exists with a climbing, finite metric
    sim.run(until=sim.now + 4 * DV_FAST.timeout_s)
    ghost = stacks[0].table.lookup(2)
    if ghost is not None and ghost.source.value == "dv":
        assert ghost.metric < 16
    # after enough advertisement rounds the count hits 16 and collects
    # (the metric climbs roughly one per round; give it a generous margin)
    sim.run(until=sim.now + 45 * DV_FAST.advertise_interval_s)
    for src in (0, 1):
        route = stacks[src].table.lookup(2)
        assert route is None or route.source.value == "static", str(route)
    # ... and the live pair's routing was never disturbed
    from tests.drs.conftest import routed_ping_ok

    assert routed_ping_ok(sim, stacks, 0, 1)


def test_lsa_older_sequence_ignored():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    deployment = install_linkstate(cluster, stacks, LS_FAST)
    sim.run(until=2.0)
    router0 = deployment.routers[0]
    current_seq = router0._lsdb[1].lsa.seq
    stale = Lsa(origin=1, seq=current_seq - 1, networks=())
    assert router0._install_lsa(stale) is False
    assert router0._lsdb[1].lsa.seq == current_seq  # untouched


def test_lsa_newer_sequence_replaces_and_updates_routes():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    deployment = install_linkstate(cluster, stacks, LS_FAST)
    sim.run(until=2.0)
    router0 = deployment.routers[0]
    current_seq = router0._lsdb[1].lsa.seq
    # node 1 claims it lost network 0
    newer = Lsa(origin=1, seq=current_seq + 10, networks=(1,))
    assert router0._install_lsa(newer) is True
    route = stacks[0].table.lookup(1)
    assert route.network == 1


def test_reactive_failure_clock_resets_on_success():
    from repro.baselines import ReactiveConfig, install_reactive

    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    stacks = install_stacks(cluster)
    config = ReactiveConfig(query_interval_s=0.5, timeout_s=2.0, probe_timeout_s=0.01)
    deployment = install_reactive(cluster, stacks, config)
    sim.run(until=1.0)
    # a blip shorter than the timeout quantum must not trigger repair
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 1.0)
    cluster.faults.repair("nic1.0")
    sim.run(until=sim.now + 4.0)
    assert cluster.trace.count("reactive-repair") == 0
    assert 1 not in deployment.routers[0]._failing_since

"""Baseline 3: an OSPF-like link-state protocol.

The paper names OSPF among the traditional systems DRS is positioned
against.  This is a faithful-in-miniature link-state implementation:

* **Hello protocol** — each router broadcasts a hello on every attached
  network each ``hello_interval_s``; an adjacency (neighbor, network) is up
  while hellos keep arriving and dies after ``dead_interval_s`` of silence
  (RFC 2328's router dead interval, scaled).
* **LSAs** — a router originates a sequence-numbered advertisement listing
  the networks on which it currently has live adjacencies; newer-sequence
  LSAs are flooded on all attached networks.
* **SPF** — every LSDB change triggers a shortest-path computation over
  the bipartite router/transit-network graph (broadcast segments modelled
  as pseudo-nodes, as in OSPF); the first hop of each path becomes the
  routing-table entry.

Failure recovery latency is governed by ``dead_interval_s`` — faster than
RIP's timeout for equal hello rates, but still a *reactive* wait-for-silence
design, which is the comparison the paper draws.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.netsim.addresses import NetworkId, NodeId
from repro.netsim.topology import Cluster
from repro.protocols.routing import Route, RouteSource
from repro.protocols.stack import HostStack
from repro.simkit import Counter, Process, Simulator, TraceRecorder

#: Well-known UDP port (OSPF is IP protocol 89; we ride UDP for simplicity).
LINKSTATE_PORT = 89

HELLO_BYTES = 16
LSA_BASE_BYTES = 16
LSA_ENTRY_BYTES = 4


@dataclass(frozen=True)
class LinkStateConfig:
    """Protocol timers (RFC 2328 defaults are 10 s hello / 40 s dead)."""

    hello_interval_s: float = 1.0
    dead_interval_s: float = 4.0
    lsa_refresh_s: float = 30.0

    def __post_init__(self) -> None:
        if self.hello_interval_s <= 0:
            raise ValueError("hello_interval_s must be positive")
        if self.dead_interval_s < 2 * self.hello_interval_s:
            raise ValueError("dead_interval_s should cover at least two hello intervals")
        if self.lsa_refresh_s <= 0:
            raise ValueError("lsa_refresh_s must be positive")


@dataclass(frozen=True)
class Hello:
    """Hello packet: presence on one network."""

    origin: NodeId


@dataclass(frozen=True)
class Lsa:
    """Router LSA: which networks the origin currently has adjacencies on."""

    origin: NodeId
    seq: int
    networks: tuple[NetworkId, ...]

    @property
    def wire_data_bytes(self) -> int:
        """Approximate encoded size for accounting."""
        return LSA_BASE_BYTES + LSA_ENTRY_BYTES * len(self.networks)


@dataclass
class _LsdbEntry:
    lsa: Lsa
    received_at: float


class LinkStateRouter:
    """One node's OSPF-like agent."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        config: LinkStateConfig,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.config = config
        self.trace = trace
        # (neighbor, network) -> last hello time
        self._last_hello: dict[tuple[NodeId, NetworkId], float] = {}
        self._lsdb: dict[NodeId, _LsdbEntry] = {}
        self._seq = 0
        self._proc: Process | None = None
        self.hellos_sent = Counter(f"ls{stack.node.node_id}.hellos")
        self.lsas_originated = Counter(f"ls{stack.node.node_id}.lsas")
        self.lsas_flooded = Counter(f"ls{stack.node.node_id}.floods")
        self.spf_runs = Counter(f"ls{stack.node.node_id}.spf")
        stack.udp.bind(LINKSTATE_PORT, self._on_packet)

    @property
    def owner(self) -> NodeId:
        """The node this router runs on."""
        return self.stack.node.node_id

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the hello/refresh loop."""
        if self._proc is None or self._proc.finished:
            self._proc = Process(self.sim, self._loop(), name=f"ls{self.owner}")

    def stop(self) -> None:
        """Stop periodic activity."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        yield (self.owner * 0.29) % self.config.hello_interval_s
        refresh_due = 0.0
        while True:
            self._send_hellos()
            changed = self._expire_adjacencies()
            if changed or self.sim.now >= refresh_due:
                self._originate_lsa()
                refresh_due = self.sim.now + self.config.lsa_refresh_s
            yield self.config.hello_interval_s

    # -------------------------------------------------------------- adjacency
    def _send_hellos(self) -> None:
        for net in self.stack.node.networks:
            if self.stack.udp.broadcast(net, LINKSTATE_PORT, data=Hello(self.owner), data_bytes=HELLO_BYTES):
                self.hellos_sent.add()

    def _expire_adjacencies(self) -> bool:
        cutoff = self.sim.now - self.config.dead_interval_s
        stale = [key for key, seen in self._last_hello.items() if seen < cutoff]
        for key in stale:
            del self._last_hello[key]
            if self.trace is not None:
                self.trace.record("ls-adjacency-down", node=self.owner, neighbor=key[0], network=key[1])
        return bool(stale)

    def _live_networks(self) -> tuple[NetworkId, ...]:
        return tuple(sorted({net for (_, net) in self._last_hello}))

    # ------------------------------------------------------------------- lsa
    def _originate_lsa(self) -> None:
        self._seq += 1
        lsa = Lsa(origin=self.owner, seq=self._seq, networks=self._live_networks())
        self.lsas_originated.add()
        self._install_lsa(lsa)
        self._flood(lsa)

    def _flood(self, lsa: Lsa) -> None:
        for net in self.stack.node.networks:
            if self.stack.udp.broadcast(net, LINKSTATE_PORT, data=lsa, data_bytes=lsa.wire_data_bytes):
                self.lsas_flooded.add()

    def _install_lsa(self, lsa: Lsa) -> bool:
        current = self._lsdb.get(lsa.origin)
        if current is not None and current.lsa.seq >= lsa.seq:
            return False
        self._lsdb[lsa.origin] = _LsdbEntry(lsa=lsa, received_at=self.sim.now)
        self._run_spf()
        return True

    # ---------------------------------------------------------------- receive
    def _on_packet(self, dgram, src_node: NodeId, arrived_on: NetworkId) -> None:
        msg = dgram.data
        if isinstance(msg, Hello):
            if msg.origin == self.owner:
                return
            key = (msg.origin, arrived_on)
            new_adjacency = key not in self._last_hello
            self._last_hello[key] = self.sim.now
            if new_adjacency:
                self._originate_lsa()
        elif isinstance(msg, Lsa) and msg.origin != self.owner:
            if self._install_lsa(msg):
                self._flood(msg)  # flood newer LSAs onward

    # ------------------------------------------------------------------- spf
    def _run_spf(self) -> None:
        """Dijkstra over the router/network bipartite graph; install routes."""
        self.spf_runs.add()
        my_nets = self._live_networks()
        # graph edges: router <-> network pseudo-node, unit cost each way
        dist: dict[tuple[str, int], float] = {}
        first_hop: dict[tuple[str, int], tuple[NodeId, NetworkId] | None] = {}
        start = ("router", self.owner)
        heap: list[tuple[float, int, tuple[str, int], tuple[NodeId, NetworkId] | None]] = []
        counter = 0
        heapq.heappush(heap, (0.0, counter, start, None))
        attachments: dict[NodeId, tuple[NetworkId, ...]] = {
            origin: entry.lsa.networks for origin, entry in self._lsdb.items()
        }
        attachments[self.owner] = my_nets
        # which routers sit on each network
        on_network: dict[NetworkId, list[NodeId]] = {}
        for router, nets in attachments.items():
            for net in nets:
                on_network.setdefault(net, []).append(router)
        while heap:
            d, _, vertex, hop = heapq.heappop(heap)
            if vertex in dist:
                continue
            dist[vertex] = d
            first_hop[vertex] = hop
            kind, ident = vertex
            if kind == "router":
                for net in attachments.get(ident, ()):
                    nxt = ("net", net)
                    if nxt not in dist:
                        counter += 1
                        heapq.heappush(heap, (d + 1, counter, nxt, hop))
            else:
                for router in sorted(on_network.get(ident, ())):
                    nxt = ("router", router)
                    if nxt not in dist:
                        counter += 1
                        # the first router hop out of the source fixes the route
                        new_hop = hop if hop is not None else (router, ident)
                        heapq.heappush(heap, (d + 1, counter, nxt, new_hop))
        self._install_routes(dist, first_hop)

    def _install_routes(self, dist, first_hop) -> None:
        reachable: set[NodeId] = set()
        for (kind, ident), hop in first_hop.items():
            if kind != "router" or ident == self.owner or hop is None:
                continue
            reachable.add(ident)
            next_hop, network = hop
            metric = int(dist[(kind, ident)])
            active = self.stack.table.lookup(ident)
            if (
                active is not None
                and active.source is RouteSource.LINKSTATE
                and active.next_hop == next_hop
                and active.network == network
                and active.metric == metric
            ):
                continue
            self.stack.table.install(
                Route(
                    dst=ident,
                    network=network,
                    next_hop=next_hop,
                    source=RouteSource.LINKSTATE,
                    metric=metric,
                    installed_at=self.sim.now,
                )
            )
            if self.trace is not None:
                self.trace.record(
                    "ls-route-change", node=self.owner, dst=ident, via=next_hop, network=network, metric=metric
                )
        # withdraw link-state routes to routers SPF can no longer reach
        for dst in list(self.stack.table.snapshot()):
            if dst not in reachable:
                self.stack.table.withdraw(dst, RouteSource.LINKSTATE)


@dataclass
class LinkStateDeployment:
    """All OSPF-like routers of one cluster."""

    config: LinkStateConfig
    routers: dict[int, LinkStateRouter] = field(default_factory=dict)

    def start(self) -> None:
        """Start every router."""
        for router in self.routers.values():
            router.start()

    def stop(self) -> None:
        """Stop every router."""
        for router in self.routers.values():
            router.stop()


def install_linkstate(
    cluster: Cluster,
    stacks: dict[int, HostStack],
    config: LinkStateConfig | None = None,
    start: bool = True,
) -> LinkStateDeployment:
    """Install (and by default start) a link-state router per node."""
    if config is None:
        config = LinkStateConfig()
    routers = {
        node.node_id: LinkStateRouter(cluster.sim, stacks[node.node_id], config, trace=cluster.trace)
        for node in cluster.nodes
    }
    deployment = LinkStateDeployment(config=config, routers=routers)
    if start:
        deployment.start()
    return deployment

"""Serial and process-pool executors agree on values and aggregate telemetry."""

import numpy as np
import pytest

from repro.engine import (
    Job,
    JobError,
    JobPlan,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    run_plan,
)
from repro.obs.metrics import MetricsRegistry, ensure_core_metrics, use_registry
from repro.obs.progress import ProgressReporter, set_heartbeat


def _draw(params, seed_seq):
    """Module-level (picklable) job: a few deterministic draws + metrics."""
    from repro.obs.metrics import current_registry
    from repro.obs.progress import heartbeat

    current_registry().counter("mc_iterations_total").add(params["k"])
    hb = heartbeat()
    if hb is not None:
        hb.add(params["k"])
    return np.random.default_rng(seed_seq).random(params["k"]).sum()


def _boom(params, seed_seq):
    raise RuntimeError("kaput")


def _plan(names=("a", "b", "c", "d", "e"), seed=3, k=4):
    jobs = [Job(name=n, fn=_draw, params={"k": k}) for n in names]
    return JobPlan(experiment="toy", seed=seed, jobs=jobs, reduce=lambda v: v)


def test_serial_and_parallel_values_identical():
    serial = SerialExecutor().run(_plan())
    parallel = ParallelExecutor(workers=2).run(_plan())
    assert serial.values == parallel.values
    assert serial.backend == "serial"
    assert parallel.backend == "process-pool"
    assert parallel.workers == 2


def test_values_independent_of_worker_count_and_chunking():
    baseline = SerialExecutor().run(_plan()).values
    for workers, chunks in ((2, 1), (2, 4), (3, 2)):
        got = ParallelExecutor(workers=workers, chunks_per_worker=chunks).run(_plan()).values
        assert got == baseline


def test_execution_reports_job_seeds():
    plan = _plan()
    execution = SerialExecutor().run(plan)
    assert execution.job_seeds == plan.job_seeds()
    assert set(execution.job_seeds) == {"a", "b", "c", "d", "e"}


def test_parallel_merges_worker_metrics_and_heartbeats():
    registry = ensure_core_metrics(MetricsRegistry())
    reporter = ProgressReporter("toy", interval_s=1e12)
    set_heartbeat(reporter)
    try:
        with use_registry(registry):
            ParallelExecutor(workers=2).run(_plan(k=5))
    finally:
        set_heartbeat(None)
    # 5 jobs x 5 iterations each, merged across workers
    assert registry.counter("mc_iterations_total").value == 25
    summary = reporter.summary()
    assert summary["trials"] == 25
    assert summary["counts"]["jobs"] == 5


def test_serial_job_failure_carries_attribution():
    plan = JobPlan(
        experiment="toy",
        seed=0,
        jobs=[Job("ok", _draw, {"k": 1}), Job("bad", _boom)],
        reduce=lambda v: v,
    )
    with pytest.raises(JobError, match="'bad' of experiment 'toy'"):
        SerialExecutor().run(plan)


def test_parallel_job_failure_propagates():
    plan = JobPlan(experiment="toy", seed=0, jobs=[Job("bad", _boom)], reduce=lambda v: v)
    with pytest.raises(JobError, match="'bad'"):
        ParallelExecutor(workers=2).run(plan)


def test_run_plan_reduces_and_stamps_engine_meta():
    class Result:
        def __init__(self, values):
            self.values = values
            self.meta = {}

    plan = JobPlan(experiment="toy", seed=9, jobs=[Job("a", _draw, {"k": 2})], reduce=Result)
    result = run_plan(plan)
    assert set(result.values) == {"a"}
    engine = result.meta["engine"]
    assert engine["backend"] == "serial"
    assert engine["jobs"] == 1
    assert engine["root_seed"] == 9
    assert engine["job_seeds"] == plan.job_seeds()


def test_make_executor_mapping():
    assert isinstance(make_executor(None), SerialExecutor)
    assert isinstance(make_executor(1), SerialExecutor)
    pool = make_executor(3)
    assert isinstance(pool, ParallelExecutor)
    assert pool.workers == 3
    assert make_executor(0).workers >= 1  # "all cores", serial on 1-core hosts
    with pytest.raises(ValueError):
        make_executor(-2)


def test_chunking_covers_all_jobs_exactly_once():
    executor = ParallelExecutor(workers=2, chunks_per_worker=2)
    jobs = [Job(name=f"j{i}", fn=_draw, params={"k": 1}) for i in range(11)]
    chunks = executor._chunk(jobs)
    flat = [job.name for chunk in chunks for job in chunk]
    assert flat == [f"j{i}" for i in range(11)]
    assert executor._chunk([]) == []

"""Pluggable executors: run a :class:`~repro.engine.jobs.JobPlan`'s jobs.

Two backends ship:

* :class:`SerialExecutor` — runs every job in-process, in plan order.  The
  default, and the reference behavior: jobs publish metrics and heartbeats
  directly into the caller's current registry/reporter.
* :class:`ParallelExecutor` — fans jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker chunk runs
  under a private :class:`~repro.obs.metrics.MetricsRegistry` and a silent
  heartbeat collector; the parent merges registries back via
  :meth:`MetricsRegistry.merge` and absorbs heartbeat summaries, so the
  run's artifacts aggregate the whole fleet.

Because every job's random stream is spawned from ``(root seed, experiment,
job name)`` (see :mod:`repro.engine.jobs`), the two backends produce
identical values for identical plans — worker count and scheduling order
can only change wall time, never results.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any

from repro.engine.jobs import Job, JobPlan
from repro.obs.metrics import MetricsRegistry, current_registry, ensure_core_metrics, use_registry
from repro.obs.progress import ProgressReporter, heartbeat, set_heartbeat


class JobError(RuntimeError):
    """A job failed; carries the job name for attribution across processes."""

    def __init__(self, experiment: str, job_name: str, cause: BaseException | str) -> None:
        super().__init__(f"job {job_name!r} of experiment {experiment!r} failed: {cause!r}")
        self.experiment = experiment
        self.job_name = job_name
        self.cause = cause if isinstance(cause, str) else repr(cause)

    def __reduce__(self):
        # default exception pickling replays __init__ with ``args`` (the
        # formatted message) — a signature mismatch that would kill the pool's
        # result pipe; rebuild from the stored fields instead
        return (type(self), (self.experiment, self.job_name, self.cause))


@dataclass
class PlanExecution:
    """What an executor hands back: values by job name plus provenance."""

    values: dict[str, Any]
    backend: str
    workers: int
    job_seeds: dict[str, int] = field(default_factory=dict)


class SerialExecutor:
    """Run jobs one after another in the calling process (the default)."""

    name = "serial"
    workers = 1

    def run(self, plan: JobPlan) -> PlanExecution:
        """Execute every job in plan order; deterministic for a given plan."""
        values: dict[str, Any] = {}
        for job in plan.jobs:
            try:
                values[job.name] = job.fn(job.params, plan.job_seedseq(job))
            except Exception as exc:
                raise JobError(plan.experiment, job.name, exc) from exc
            hb = heartbeat()
            if hb is not None:
                hb.add(0, jobs=1)
        return PlanExecution(
            values=values, backend=self.name, workers=1, job_seeds=plan.job_seeds()
        )


def _run_chunk(
    experiment: str, seed: int, jobs: list[Job]
) -> tuple[dict[str, Any], MetricsRegistry, dict]:
    """Worker entry point: run a chunk of jobs under private observability.

    Returns the chunk's values, its metrics registry (merged by the parent),
    and the silent heartbeat collector's summary.  Module-level so process
    pools can pickle it regardless of start method.
    """
    from repro.engine.jobs import JobPlan  # re-import friendly under spawn
    from repro.obs.profiler import install_profiling

    plan = JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)
    install_profiling()
    registry = ensure_core_metrics(MetricsRegistry())
    # Never emits (interval is effectively infinite): pure collector whose
    # summary the parent absorbs into the run's real reporter.
    collector = ProgressReporter(experiment, interval_s=1e12)
    set_heartbeat(collector)
    try:
        with use_registry(registry):
            values: dict[str, Any] = {}
            for job in jobs:
                try:
                    values[job.name] = job.fn(job.params, plan.job_seedseq(job))
                except Exception as exc:
                    raise JobError(experiment, job.name, exc) from exc
    finally:
        set_heartbeat(None)
    return values, registry, collector.summary()


class ParallelExecutor:
    """Fan jobs out over a process pool; results identical to serial.

    ``workers`` defaults to the machine's CPU count.  Jobs are grouped into
    chunks (several jobs per round trip) to amortize pickling and registry
    transfer; chunking affects only scheduling, never values.
    """

    name = "process-pool"

    def __init__(self, workers: int | None = None, chunks_per_worker: int = 4) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunks_per_worker = chunks_per_worker

    def _chunk(self, jobs: list[Job]) -> list[list[Job]]:
        if not jobs:
            return []
        target = self.workers * self.chunks_per_worker
        size = max(1, -(-len(jobs) // target))  # ceil division
        return [jobs[i : i + size] for i in range(0, len(jobs), size)]

    def run(self, plan: JobPlan) -> PlanExecution:
        """Execute the plan on the pool, merging worker observability back."""
        values: dict[str, Any] = {}
        registry = current_registry()
        reporter = heartbeat()
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {
                pool.submit(_run_chunk, plan.experiment, plan.seed, chunk): chunk
                for chunk in self._chunk(plan.jobs)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    chunk_values, worker_registry, hb_summary = future.result()
                    values.update(chunk_values)
                    registry.merge(worker_registry)
                    if reporter is not None:
                        reporter.absorb(hb_summary)
                        reporter.add(0, jobs=len(chunk))
        _recompute_rate_gauges(registry)
        return PlanExecution(
            values=values, backend=self.name, workers=self.workers, job_seeds=plan.job_seeds()
        )


def _recompute_rate_gauges(registry: MetricsRegistry) -> None:
    """Derive throughput gauges from merged totals.

    Summing per-worker rate gauges over-counts (each measures a different
    wall interval); the ratio of the merged counters is the right aggregate.
    """
    for gauge_name, total_name, wall_name in (
        ("sim_events_per_second", "sim_events_total", "sim_run_seconds_total"),
        ("mc_iterations_per_second", "mc_iterations_total", "mc_wall_seconds_total"),
    ):
        total, wall = registry.get(total_name), registry.get(wall_name)
        if total is not None and wall is not None and wall.value > 0:
            registry.gauge(gauge_name).set(total.value / wall.value)


def make_executor(jobs: int | None) -> SerialExecutor | ParallelExecutor:
    """CLI helper: ``--jobs N`` to an executor (``0``/``None`` = all cores).

    ``--jobs 1`` (and single-core machines asking for "all cores") stays
    serial: a one-worker pool costs process round trips and buys nothing.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    workers = jobs if jobs > 0 else (os.cpu_count() or 1)
    if workers == 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers)

"""``repro obs``: inspect observability artifacts.

Usage::

    python -m repro obs results/                 # everything in a directory
    python -m repro obs results/figure2.manifest.json
    python -m repro obs --json /tmp/r/figure2.flight.jsonl
    python -m repro obs export-trace /tmp/r/nic-failure-drs.trace.jsonl
    python -m repro obs export-trace /tmp/r/figure2.flight.jsonl
    python -m repro obs postmortem examples/scenarios/voicemail_hub_outage.json
    python -m repro obs watch /tmp/r/figure2.flight.jsonl
    python -m repro obs bench-diff benchmarks/ --metric mean

The bare form dispatches on artifact suffix: ``*.manifest.json`` (run
provenance), ``*.metrics.jsonl`` / ``*.metrics.prom`` (registry snapshots),
``*.trace.jsonl`` (event traces, summarized by category),
``*.checkpoint.jsonl`` (resume records), and ``*.flight.jsonl`` (engine
flight-recorder streams).  ``--json`` swaps every pretty table for one
machine-readable JSON document.  Four verbs:

* ``export-trace`` — convert a trace, a flight-recorder stream, or a
  scenario spec to Chrome trace-event JSON loadable in Perfetto /
  ``chrome://tracing`` (flight streams get one track per worker plus a
  scheduler track).
* ``postmortem`` — reconstruct each failure's detection→repair critical
  path and score it against the TCP-retransmit deadline budget.
* ``watch`` — live ANSI dashboard tailing a ``*.flight.jsonl`` stream
  while (or after) an engine run writes it.
* ``bench-diff`` — CI-width-aware deltas between committed ``BENCH_*.json``
  snapshots; exits nonzero on regression (the CI perf gate).
* ``precision`` — sweep-quality report over a run's per-cell Wilson
  intervals: worst cells, per-f target attainment, and trials saved versus
  a fixed-count run.  Reads ``stats.cell`` events from a ``*.flight.jsonl``
  stream or the precision block of a ``*.manifest.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Any

from repro.obs.artifacts import load_manifest
from repro.viz import metrics_summary_table, render_table

ARTIFACT_GLOBS = (
    "*.manifest.json",
    "*.metrics.jsonl",
    "*.metrics.prom",
    "*.trace.jsonl",
    "*.checkpoint.jsonl",
    "*.flight.jsonl",
)


def _render_manifest(path: Path) -> str:
    manifest = load_manifest(path)
    rows = [
        ["name", manifest.name],
        ["kind", manifest.kind],
        ["seed", manifest.seed if manifest.seed is not None else "-"],
        ["config hash", manifest.config_hash],
        ["wall seconds", manifest.wall_seconds],
        ["event count", manifest.event_count],
        ["package version", manifest.package_version],
        ["python", manifest.python],
        ["schema version", manifest.schema_version],
    ]
    for key, value in sorted(manifest.extra.items()):
        rows.append([key, value])
    config = json.dumps(manifest.config, sort_keys=True, default=str)
    if len(config) > 100:
        config = config[:97] + "..."
    rows.append(["config", config])
    return render_table(["field", "value"], rows, title=f"manifest: {path.name}")


def _render_metrics_jsonl(path: Path) -> str:
    snapshot = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    return metrics_summary_table(snapshot, title=f"metrics: {path.name}")


def _trace_tally(path: Path) -> dict[str, dict[str, float]]:
    tally: TallyCounter = TallyCounter()
    first: dict[str, float] = {}
    last: dict[str, float] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        category = row.get("category", "?")
        tally[category] += 1
        t = float(row.get("time", 0.0))
        first.setdefault(category, t)
        last[category] = t
    return {
        category: {"entries": count, "first_s": first[category], "last_s": last[category]}
        for category, count in tally.items()
    }


def _render_trace_jsonl(path: Path) -> str:
    by_category = _trace_tally(path)
    rows = [
        [category, stats["entries"], stats["first_s"], stats["last_s"]]
        for category, stats in sorted(by_category.items(), key=lambda kv: -kv[1]["entries"])
    ]
    if not rows:
        return f"trace: {path.name}: (empty)"
    return render_table(
        ["category", "entries", "first (s)", "last (s)"], rows, title=f"trace: {path.name}"
    )


def _checkpoint_rows(path: Path) -> list[dict[str, Any]]:
    rows = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        rows.append(
            {
                "experiment": row.get("experiment", "?"),
                "job": row.get("job", "?"),
                "attempts": int(row.get("attempts", 1)),
                "elapsed_s": float(row.get("elapsed_s", 0.0)),
            }
        )
    return rows


def _render_checkpoint_jsonl(path: Path) -> str:
    rows = _checkpoint_rows(path)
    if not rows:
        return f"checkpoint: {path.name}: (empty)"
    total_attempts = sum(r["attempts"] for r in rows)
    title = f"checkpoint: {path.name} ({len(rows)} job(s), {total_attempts} attempt(s))"
    return render_table(
        ["experiment", "job", "attempts", "elapsed (s)"],
        [[r["experiment"], r["job"], r["attempts"], f"{r['elapsed_s']:.3f}"] for r in rows],
        title=title,
    )


def _render_flight_jsonl(path: Path) -> str:
    from repro.obs.flightrecorder import flight_summary, read_flight_events

    events = read_flight_events(path)
    if not events:
        return f"flight: {path.name}: (empty)"
    summary = flight_summary(events)
    rows = [[kind, count] for kind, count in sorted(summary["by_kind"].items())]
    for pid, info in sorted(summary["workers"].items()):
        rows.append([f"worker pid {pid}", f"{info['jobs']} job(s)"])
    wall = max(e["t"] for e in events) - min(e["t"] for e in events)
    title = f"flight: {path.name} ({summary['events']} event(s), {wall:.1f}s wall)"
    return render_table(["event kind / worker", "count"], rows, title=title)


def render_artifact(path: Path) -> str:
    """Pretty-print one artifact file by suffix."""
    name = path.name
    if name.endswith(".manifest.json"):
        return _render_manifest(path)
    if name.endswith(".metrics.jsonl"):
        return _render_metrics_jsonl(path)
    if name.endswith(".metrics.prom"):
        return f"prometheus snapshot: {path.name}\n{path.read_text().rstrip()}"
    if name.endswith(".trace.jsonl"):
        return _render_trace_jsonl(path)
    if name.endswith(".checkpoint.jsonl"):
        return _render_checkpoint_jsonl(path)
    if name.endswith(".flight.jsonl"):
        return _render_flight_jsonl(path)
    raise ValueError(f"unrecognized artifact {path} (expected {', '.join(ARTIFACT_GLOBS)})")


def artifact_data(path: Path) -> dict[str, Any]:
    """Machine-readable form of one artifact: ``{path, kind, data}``.

    The ``--json`` counterpart of :func:`render_artifact` — same suffix
    dispatch, JSON-native payloads instead of tables.
    """
    name = path.name
    if name.endswith(".manifest.json"):
        kind, data = "manifest", load_manifest(path).to_dict()
    elif name.endswith(".metrics.jsonl"):
        kind = "metrics"
        data = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
    elif name.endswith(".metrics.prom"):
        kind, data = "prometheus", {"text": path.read_text()}
    elif name.endswith(".trace.jsonl"):
        kind, data = "trace", {"categories": _trace_tally(path)}
    elif name.endswith(".checkpoint.jsonl"):
        kind, data = "checkpoint", {"jobs": _checkpoint_rows(path)}
    elif name.endswith(".flight.jsonl"):
        from repro.obs.flightrecorder import flight_summary, read_flight_events

        kind, data = "flight", flight_summary(read_flight_events(path))
    else:
        raise ValueError(f"unrecognized artifact {path} (expected {', '.join(ARTIFACT_GLOBS)})")
    return {"path": str(path), "kind": kind, "data": data}


def _expand(paths: list[str]) -> list[Path]:
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for pattern in ARTIFACT_GLOBS:
                expanded.extend(sorted(path.glob(pattern)))
        else:
            expanded.append(path)
    return expanded


def _load_spans(source: str):
    """Spans + instant rows from a trace artifact or a scenario spec.

    A ``*.trace.jsonl`` path is read back offline; any other path is taken
    as a scenario spec JSON, which is run in-process (seeded from the spec)
    and mined for its live span log.
    """
    from repro.obs.spans import load_trace_jsonl, span_log, spans_from_entries

    if source.endswith(".trace.jsonl"):
        rows = load_trace_jsonl(source)
        return spans_from_entries(rows), rows
    from repro.scenario.run import run_scenario
    from repro.scenario.spec import load_scenario

    report = run_scenario(load_scenario(source))
    if report.trace is None:
        raise ValueError(f"scenario {source} ran without a trace recorder")
    return list(span_log(report.trace).spans), report.trace.entries()


def _cmd_export_trace(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs export-trace",
        description="Export spans or a flight-recorder stream as Chrome trace-event JSON "
        "(Perfetto / chrome://tracing).",
    )
    parser.add_argument(
        "source",
        help="a *.trace.jsonl artifact, a *.flight.jsonl flight recording, "
        "or a scenario spec JSON",
    )
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="output file (default: <source stem>.spans.json, "
                        "or <stem>.chrome.json for flight recordings)")
    args = parser.parse_args(argv)

    if args.source.endswith(".flight.jsonl"):
        from repro.obs.flightrecorder import flight_summary, read_flight_events
        from repro.obs.spans import write_flight_chrome_trace

        events = read_flight_events(args.source)
        if not events:
            print(f"error: {args.source}: no flight events recorded", file=sys.stderr)
            return 1
        out = Path(args.out) if args.out else Path(
            args.source.removesuffix(".flight.jsonl") + ".chrome.json"
        )
        write_flight_chrome_trace(out, events)
        workers = len(flight_summary(events)["workers"])
        print(f"wrote {len(events)} flight event(s) ({workers} worker track(s)) -> {out}")
        return 0

    from repro.obs.spans import write_chrome_trace

    spans, instants = _load_spans(args.source)
    if not spans:
        print(f"error: {args.source}: no spans recorded", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else Path(
        args.source.removesuffix(".trace.jsonl").removesuffix(".json") + ".spans.json"
    )
    write_chrome_trace(out, spans, instants)
    print(f"wrote {len(spans)} span(s) -> {out}")
    return 0


def _cmd_postmortem(argv: list[str]) -> int:
    from repro.obs.postmortem import build_postmortems, render_postmortems, summarize_postmortems

    parser = argparse.ArgumentParser(
        prog="repro obs postmortem",
        description="Per-incident detection->repair critical paths vs the TCP-retransmit deadline.",
    )
    parser.add_argument("source", help="a *.trace.jsonl artifact or a scenario spec JSON")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="deadline budget in seconds (default: TCP initial RTO)")
    parser.add_argument("--node", type=int, default=None, metavar="N",
                        help="only report episodes observed by this node")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable report instead of tables")
    args = parser.parse_args(argv)

    spans, _ = _load_spans(args.source)
    reports = build_postmortems(spans, deadline_s=args.deadline, node=args.node)
    if args.json:
        print(json.dumps(
            {
                "source": args.source,
                "summary": summarize_postmortems(reports),
                "episodes": [
                    {
                        "node": r.node,
                        "peer": r.peer,
                        "outcome": r.outcome,
                        "failover_latency_s": r.failover_latency_s,
                        "total_s": r.total_s,
                        "deadline_s": r.deadline_s,
                        "budget_consumed": r.budget_consumed,
                        "deadline_violated": r.deadline_violated,
                        "phases": [
                            {"name": p.name, "start": p.start, "end": p.end,
                             "duration": p.duration}
                            for p in r.phases
                        ],
                    }
                    for r in reports
                ],
            },
            indent=2,
        ))
    else:
        print(render_postmortems(reports))
    return 0 if all(not r.deadline_violated for r in reports) else 3


def _cmd_watch(argv: list[str]) -> int:
    from repro.obs.watch import follow

    parser = argparse.ArgumentParser(
        prog="repro obs watch",
        description="Live dashboard tailing an engine flight-recorder stream.",
    )
    parser.add_argument("path", help="a *.flight.jsonl file (may not exist yet)")
    parser.add_argument("--interval", type=float, default=0.5, metavar="S",
                        help="repaint interval in seconds (default: 0.5)")
    parser.add_argument("--duration", type=float, default=None, metavar="S",
                        help="give up after this many seconds if the run hasn't ended")
    parser.add_argument("--once", action="store_true",
                        help="render the current state once and exit (replay mode)")
    parser.add_argument("--no-color", action="store_true", help="plain-text output")
    parser.add_argument("--json", action="store_true",
                        help="emit state snapshots as JSON lines instead of the dashboard")
    args = parser.parse_args(argv)

    return follow(
        args.path,
        interval_s=args.interval,
        duration_s=args.duration,
        once=args.once,
        color=not args.no_color,
        as_json=args.json,
    )


def _cmd_bench_diff(argv: list[str]) -> int:
    from repro.obs.benchtrack import (
        BENCH_DIFF_EXIT_REGRESSION,
        DEFAULT_MIN_REL,
        DEFAULT_Z,
        DIFF_METRICS,
        bench_diff_report,
        diff_snapshots,
        render_bench_diff,
    )

    parser = argparse.ArgumentParser(
        prog="repro obs bench-diff",
        description="Diff BENCH_*.json snapshots with CI-width-aware regression gates.",
    )
    parser.add_argument("paths", nargs="+",
                        help="two or more snapshot files, or directories of them "
                        "(oldest vs newest per module, by created_unix)")
    parser.add_argument("--metric", choices=DIFF_METRICS, default="mean",
                        help="stat to compare (default: mean; ops is higher-is-better)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_MIN_REL, metavar="FRAC",
                        help=f"minimum relative move to flag (default: {DEFAULT_MIN_REL})")
    parser.add_argument("--z", type=float, default=DEFAULT_Z, metavar="Z",
                        help="multiplier on the combined relative standard error "
                        f"(default: {DEFAULT_Z})")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report instead of the table")
    args = parser.parse_args(argv)

    try:
        deltas = diff_snapshots(
            args.paths, metric=args.metric, min_rel=args.threshold, z=args.z
        )
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(bench_diff_report(deltas), indent=2))
    else:
        print(render_bench_diff(deltas))
    return BENCH_DIFF_EXIT_REGRESSION if any(d.regressed for d in deltas) else 0


def _cmd_precision(argv: list[str]) -> int:
    from repro.obs.precision import (
        cells_from_manifest,
        fold_cells,
        precision_report,
        render_precision_report,
    )

    parser = argparse.ArgumentParser(
        prog="repro obs precision",
        description="Sweep-quality report: per-cell Wilson CI widths, worst cells, "
        "and trials saved vs a fixed-count run.",
    )
    parser.add_argument(
        "source",
        help="a *.flight.jsonl stream (stats.cell events) or a *.manifest.json "
        "run manifest (recorded precision block)",
    )
    parser.add_argument("--target", type=float, default=None, metavar="W",
                        help="judge cells against this half-width instead of the recorded target")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="how many worst cells to list (default: 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report instead of tables")
    args = parser.parse_args(argv)

    source = Path(args.source)
    if source.name.endswith(".flight.jsonl"):
        from repro.obs.flightrecorder import read_flight_events

        cells = list(fold_cells(read_flight_events(source)).values())
    elif source.name.endswith(".manifest.json"):
        cells, _ = cells_from_manifest(load_manifest(source).to_dict())
    else:
        print(
            f"error: {source}: expected a *.flight.jsonl or *.manifest.json artifact",
            file=sys.stderr,
        )
        return 1
    if not cells:
        print(f"error: {source}: no per-cell precision data recorded", file=sys.stderr)
        return 1
    report = precision_report(cells, target=args.target, top=args.top)
    if args.json:
        print(json.dumps({"source": str(source), **report}, indent=2))
    else:
        print(render_precision_report(report, source=source.name))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "export-trace":
        return _cmd_export_trace(argv[1:])
    if argv and argv[0] == "postmortem":
        return _cmd_postmortem(argv[1:])
    if argv and argv[0] == "watch":
        return _cmd_watch(argv[1:])
    if argv and argv[0] == "bench-diff":
        return _cmd_bench_diff(argv[1:])
    if argv and argv[0] == "precision":
        return _cmd_precision(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Pretty-print run manifests, metrics snapshots, and trace dumps.",
    )
    parser.add_argument("paths", nargs="+", help="artifact files or results directories")
    parser.add_argument("--raw", action="store_true", help="dump file contents without rendering")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON array of {path, kind, data} records")
    args = parser.parse_args(argv)

    paths = _expand(args.paths)
    if not paths:
        print("no observability artifacts found", file=sys.stderr)
        return 1
    status = 0
    documents: list[dict[str, Any]] = []
    try:
        for path in paths:
            if not path.exists():
                print(f"error: {path}: no such file", file=sys.stderr)
                status = 1
                continue
            try:
                if args.json:
                    documents.append(artifact_data(path))
                else:
                    print(path.read_text().rstrip() if args.raw else render_artifact(path))
                    print()
            except (ValueError, json.JSONDecodeError, TypeError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
        if args.json:
            print(json.dumps(documents, indent=2, default=str))
    except BrokenPipeError:
        # reader (e.g. `| head`) closed the pipe: exit quietly, and point
        # stdout at devnull so the interpreter's final flush doesn't retrip
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Generic vectorized survivability kernels over arbitrary topologies.

:mod:`repro.analysis.montecarlo` hand-derives the dual-hub cluster's
success predicate and breakdown thresholds; this module computes the same
quantities for *any* :class:`~repro.topology.model.Topology` — and
dispatches back to a topology's attached specialized kernels whenever they
apply, so the paper's topology pays nothing for the generality:

* :func:`topology_connected_vec` — the batch success predicate: a batched
  dense-matmul BFS over the failure matrix (``reached @ adjacency`` per
  hop, ``float32`` so it runs on the BLAS path), with predicate-specific
  acceptance (pair / all-terminals / quorum) and a row-wise pure-Python
  fallback for custom predicates.
* :func:`topology_connectivity_levels` — per-row breakdown thresholds for
  monotone predicates via a vectorized binary search over the failure
  level (``O(log width)`` BFS passes per batch), which is what keeps the
  common-random-numbers sweep and adaptive stopping available to every
  topology.
* :func:`sample_topology_failures` / :func:`topology_keys` — exactly-``f``
  sampling with optional per-site weights (the Gumbel top-k trick of
  :mod:`~repro.analysis.weighted`, generalized to any failure universe).
* :func:`simulate_topology_success` / :func:`simulate_topology_grid` — the
  per-point and sweep estimators, mirroring
  :func:`~repro.analysis.montecarlo.simulate_success_probability` and
  :func:`~repro.analysis.montecarlo.simulate_grid` (the grid path shares
  the same sweep loop, so stream consumption is identical and the
  dual-hub topology replays byte-identical draws).
* :func:`enumerate_topology_success` / :func:`exact_topology_success` —
  the exhaustive oracle and the closed-form dispatch.

Every kernel validates ``f`` through
:meth:`~repro.topology.model.Topology.validate_f` — the same clear
``ValueError`` contract as :func:`repro.analysis.exact.success_probability`.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from time import perf_counter

import numpy as np

from repro.analysis.montecarlo import DEFAULT_MAX_ADAPTIVE_TRIALS, _grid_sweep, _resolve_rng
from repro.analysis.stats import wilson_interval
from repro.analysis.variance import (
    _round_allocations,
    allocate_stratum_trials,
    site_stratum_weights,
)
from repro.obs.flightrecorder import flight_recorder
from repro.obs.precision import CellPrecision, publish_cell_precision
from repro.obs.profiler import publish_mc_throughput
from repro.obs.progress import heartbeat
from repro.topology.model import ConnectivityPredicate, Topology

#: refuse exhaustive enumeration beyond this many failure sets
DEFAULT_MAX_ENUMERATION = 2_000_000


def _cell_n(topology: Topology) -> int:
    """The N used to label precision cells (node/host count when known)."""
    for key in ("n", "hosts"):
        if key in topology.meta:
            return int(topology.meta[key])
    return topology.width


def require_baseline_connectivity(
    topology: Topology, predicate: ConnectivityPredicate | None = None
) -> None:
    """Reject topologies whose predicate already fails with zero failures.

    The sweep kernel's breakdown thresholds live in ``[0, width]`` — a
    topology that is dead at ``f = 0`` has no threshold, and every
    estimate would silently read 0.  Raising here turns a mis-built
    topology into an immediate, explainable error.
    """
    if not topology.connected((), predicate):
        raise ValueError(
            f"topology {topology.name!r} fails predicate "
            f"{(predicate or topology.predicate).describe()!r} with zero failures"
        )


# ------------------------------------------------------------------ predicate
def _alive_matrix(topology: Topology, failed: np.ndarray) -> np.ndarray:
    """Per-row vertex liveness from a failure-site indicator matrix."""
    failed = np.asarray(failed, dtype=bool)
    if failed.ndim != 2 or failed.shape[1] != topology.width:
        raise ValueError(
            f"failure matrix must be (iterations, {topology.width}) for "
            f"topology {topology.name!r}, got {failed.shape}"
        )
    alive = np.ones((failed.shape[0], topology.num_vertices), dtype=bool)
    alive[:, list(topology.failure_sites)] = ~failed
    return alive


def _batched_reach(adjacency: np.ndarray, alive: np.ndarray, start: int) -> np.ndarray:
    """Vertices reachable from ``start`` per row, by batched matmul BFS.

    One ``reached @ adjacency`` per hop expands every row's frontier at
    once; iteration count is the graph diameter (small for every shipped
    family), and each product runs on the BLAS ``float32`` path.
    """
    reached = np.zeros_like(alive)
    reached[:, start] = alive[:, start]
    while True:
        frontier = (reached.astype(np.float32) @ adjacency) > 0
        new = frontier & alive & ~reached
        if not new.any():
            return reached
        reached |= new


def topology_connected_vec(
    topology: Topology,
    failed: np.ndarray,
    predicate: ConnectivityPredicate | None = None,
) -> np.ndarray:
    """Batch success predicate: one bool per failure-matrix row.

    ``failed`` is ``(iterations, width)`` over the canonical failure-site
    order.  With the topology's own default predicate, an attached
    ``connected_fn`` fast path wins (the dual-hub builder wires
    :func:`~repro.analysis.montecarlo.pair_connected_vec` here); otherwise
    the batched BFS evaluates the shipped predicate kinds directly, and
    any other :class:`ConnectivityPredicate` falls back to row-wise
    reference evaluation (correct, but O(rows) Python).
    """
    pred = predicate if predicate is not None else topology.predicate
    if predicate is None and topology.connected_fn is not None:
        return np.asarray(topology.connected_fn(np.asarray(failed, dtype=bool)), dtype=bool)
    alive = _alive_matrix(topology, failed)
    adjacency = topology.adjacency_matrix()
    if pred.kind == "pair":
        src = topology.terminals[pred.a]
        dst = topology.terminals[pred.b]
        return _batched_reach(adjacency, alive, src)[:, dst]
    if pred.kind == "all-terminals":
        reached = _batched_reach(adjacency, alive, topology.terminals[0])
        return reached[:, list(topology.terminals)].all(axis=1)
    if pred.kind == "quorum":
        need = pred.required(topology)
        terminals = list(topology.terminals)
        ok = np.zeros(alive.shape[0], dtype=bool)
        for t in terminals:
            pending = ~ok
            if not pending.any():
                break
            reached = _batched_reach(adjacency, alive[pending], t)
            ok[pending] = reached[:, terminals].sum(axis=1) >= need
        return ok
    return np.array(
        [topology.connected(np.flatnonzero(row), pred) for row in np.asarray(failed, dtype=bool)],
        dtype=bool,
    )


# --------------------------------------------------------------------- levels
def _rank_rows(keys: np.ndarray) -> np.ndarray:
    """Per-row rank of each entry in ascending key order (dense, 0-based)."""
    order = np.argsort(keys, axis=1)
    ranks = np.empty(keys.shape, dtype=np.int64)
    np.put_along_axis(ranks, order, np.arange(keys.shape[1])[None, :], axis=1)
    return ranks


def topology_connectivity_levels(
    topology: Topology,
    keys: np.ndarray,
    predicate: ConnectivityPredicate | None = None,
) -> np.ndarray:
    """Per row: the largest ``f`` at which the topology still survives.

    The generic form of
    :func:`~repro.analysis.montecarlo.connectivity_levels`: ``keys`` is
    any row-wise comparable matrix over the failure-site axis (raw uniform
    draws on the hot path, or weighted keys from :func:`topology_keys`);
    the level-``f`` failure set of a row is its ``f`` smallest keys.  For
    a monotone predicate each row has a single breakdown threshold, found
    by vectorized binary search over ``f`` — ``ceil(log2(width + 1))``
    batched predicate evaluations regardless of batch size.  A topology
    with an attached ``levels_fn`` (dual-hub) skips the search entirely
    when its default predicate is in play.

    The topology must survive ``f = 0`` (see
    :func:`require_baseline_connectivity`), so thresholds are well-defined
    and non-negative.
    """
    if predicate is None and topology.levels_fn is not None:
        return np.asarray(topology.levels_fn(np.asarray(keys)))
    keys = np.asarray(keys)
    if keys.ndim != 2 or keys.shape[1] != topology.width:
        raise ValueError(
            f"key matrix must be (iterations, {topology.width}) for "
            f"topology {topology.name!r}, got {keys.shape}"
        )
    require_baseline_connectivity(topology, predicate)
    ranks = _rank_rows(keys)
    rows = keys.shape[0]
    # invariant: every row survives at lo and fails at hi (hi = width + 1
    # acts as "never observed failing"); binary search shrinks hi - lo to 1
    lo = np.zeros(rows, dtype=np.int64)
    hi = np.full(rows, topology.width + 1, dtype=np.int64)
    while True:
        active = (hi - lo) > 1
        if not active.any():
            return lo
        mid = (lo + hi) // 2
        ok = topology_connected_vec(topology, ranks < mid[:, None], predicate)
        lo = np.where(active & ok, mid, lo)
        hi = np.where(active & ~ok, mid, hi)


# ------------------------------------------------------------------- sampling
def _weight_keys(topology: Topology, u: np.ndarray) -> np.ndarray:
    """Turn raw uniforms into failure-priority keys under the weight model.

    Identity for uniform topologies (the raw draw *is* the key matrix —
    the exact stream of the specialized kernels).  Weighted topologies get
    the Gumbel top-k transform of :mod:`~repro.analysis.weighted`:
    ``log(-log u) - log w`` is ascending in failure priority, so "the
    ``f`` smallest keys fail" realizes weighted sampling without
    replacement over any failure universe.
    """
    weights = topology.weight_array()
    if weights is None:
        return u
    return np.log(-np.log(u)) - np.log(weights)[None, :]


def topology_keys(topology: Topology, iterations: int, rng: np.random.Generator) -> np.ndarray:
    """One i.i.d. key matrix: a row's ``f`` smallest keys are its failures.

    Exactly ``iterations * width`` uniforms are consumed and then passed
    through :func:`_weight_keys`, keeping the stream contract independent
    of the failure model.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    return _weight_keys(topology, rng.random((iterations, topology.width)))


def sample_topology_failures(
    topology: Topology, f: int, iterations: int, rng: np.random.Generator
) -> np.ndarray:
    """Boolean ``(iterations, width)`` matrix of exactly-``f`` failures.

    The generic analogue of
    :func:`~repro.analysis.montecarlo.sample_failure_matrix` (uniform
    sites) and :func:`~repro.analysis.weighted.weighted_failure_matrix`
    (weighted sites), driven by the topology's own weight model.
    """
    topology.validate_f(f)
    keys = topology_keys(topology, iterations, rng)
    failed = np.zeros(keys.shape, dtype=bool)
    if f > 0:
        picks = np.argpartition(keys, f - 1, axis=1)[:, :f]
        np.put_along_axis(failed, picks, True, axis=1)
    return failed


# ----------------------------------------------------------------- estimators
def simulate_topology_success(
    topology: Topology,
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    batch: int = 200_000,
    predicate: ConnectivityPredicate | None = None,
) -> float:
    """Monte Carlo survivability of one topology at exactly ``f`` failures.

    Mirrors :func:`~repro.analysis.montecarlo.simulate_success_probability`:
    seed-based callers get an independent stream keyed by the topology name
    and ``f``; batches bound peak memory; heartbeat/precision/throughput
    instrumentation follows the same None-check discipline.
    """
    topology.validate_f(f)
    require_baseline_connectivity(topology, predicate)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = _resolve_rng(rng, seed, f"topo/{topology.name}/f={f}")
    n = _cell_n(topology)
    remaining = iterations
    good = 0
    started = perf_counter()
    while remaining > 0:
        size = min(remaining, batch)
        failed = sample_topology_failures(topology, f, size, rng)
        good += int(topology_connected_vec(topology, failed, predicate).sum())
        remaining -= size
        hb = heartbeat()
        if hb is not None:
            hb.add(size)
        if flight_recorder() is not None:
            publish_cell_precision(
                CellPrecision.from_counts(
                    n,
                    f,
                    good,
                    iterations - remaining,
                    elapsed_s=perf_counter() - started,
                    topology=topology.name,
                ),
                done=remaining == 0,
            )
    publish_mc_throughput(iterations, perf_counter() - started)
    return good / iterations


def _topology_stratified_sweep(
    topology: Topology,
    fs: tuple[int, ...],
    iterations: int,
    rng: np.random.Generator,
    batch: int,
    target_half_width: float | None,
    confidence: float,
    max_iterations: int | None,
    precision: bool,
    predicate: ConnectivityPredicate | None,
) -> dict[int, float] | dict[int, CellPrecision]:
    """Stratified CRN sweep conditioning on the declared strata sites.

    Strata are "exactly ``j`` of the topology's
    :attr:`~repro.topology.model.Topology.strata_sites` failed"
    (``j in [0, s]``), with exact hypergeometric weights per ``f``
    (:func:`repro.analysis.variance.site_stratum_weights`).  Each stratum
    keeps its own spawned stream and its own common-random-numbers pass:
    a row picks which ``j`` strata sites fail (uniformly, via their own
    key order), those columns' keys are shifted down by 2 (failed before
    anything else) and the surviving strata sites' up by 2 (never fail),
    so the level-``f`` failure set is the ``j`` chosen sites plus the
    ``f - j`` highest-priority other sites — a draw from the conditional
    distribution for *every* ``f >= j`` at once, nested in ``f``.  The
    breakdown-threshold reduction then proceeds exactly as in the crude
    sweep.

    Trials are split per round proportional to each stratum's largest
    weight over the f-grid — strict one-each apportionment on the first
    round (:func:`repro.analysis.variance.allocate_stratum_trials`, whose
    budget check doubles as the input hardening), largest-remainder
    rounding afterwards.  The combined cell interval sums stratum
    half-widths in quadrature scaled by their weights; cells publish with
    ``method="stratified"``.  Unlike the single-sampled-stratum dual-hub
    path, per-round rounding couples the strata, so adaptive runs are
    *not* promised byte-identical to fixed-count reruns cell by cell.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if len(fs) == 0:
        raise ValueError("fs must name at least one failure count")
    adaptive = target_half_width is not None
    if adaptive:
        if target_half_width <= 0:
            raise ValueError(f"target_half_width must be positive, got {target_half_width}")
        if max_iterations is None:
            max_iterations = DEFAULT_MAX_ADAPTIVE_TRIALS
        if max_iterations < iterations:
            raise ValueError(
                f"max_iterations must be >= iterations ({iterations}), got {max_iterations}"
            )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    width = topology.width
    positions = np.array(topology.strata_positions(), dtype=np.int64)
    strata = len(positions)
    weights_by_f = {f: site_stratum_weights(width, strata, f) for f in fs}
    scores = [max(weights_by_f[f][j] for f in fs) for j in range(strata + 1)]
    stratum_rngs = rng.spawn(strata + 1)
    survivors = [np.zeros(width + 1, dtype=np.int64) for _ in range(strata + 1)]
    trials = [0] * (strata + 1)
    n_label = _cell_n(topology)
    total = 0
    budget = max_iterations if adaptive else iterations
    frozen: dict[int, CellPrecision] = {}
    started = perf_counter()

    def cell_at(f: int) -> CellPrecision:
        point = 0.0
        half_sq = 0.0
        successes = 0
        for j in range(strata + 1):
            weight = weights_by_f[f][j]
            if weight == 0.0 or trials[j] == 0:
                continue
            alive = int(survivors[j][f:].sum())
            interval = wilson_interval(alive, trials[j], confidence)
            point += weight * interval.point
            half_sq += (weight * interval.half_width) ** 2
            successes += alive
        return CellPrecision.from_stratified(
            n_label,
            f,
            successes,
            total,
            point=point,
            half_width=float(np.sqrt(half_sq)),
            confidence=confidence,
            target_half_width=target_half_width,
            elapsed_s=perf_counter() - started,
            topology=topology.name,
            method="stratified",
        )

    first_round = True
    while total < budget:
        if adaptive:
            size = min(iterations if total == 0 else total, batch, budget - total)
        else:
            size = min(budget - total, batch)
        if first_round:
            allocations = allocate_stratum_trials(size, scores)
            first_round = False
        else:
            allocations = _round_allocations(size, scores)
        for j, count in enumerate(allocations):
            if count == 0:
                continue
            u = stratum_rngs[j].random((count, width))
            keys = u.copy()
            keys[:, positions] = u[:, positions] + 2.0  # surviving strata sites never fail
            if j > 0:
                if j == len(positions):
                    chosen = np.broadcast_to(positions, (count, j))
                else:
                    picks = np.argpartition(u[:, positions], j - 1, axis=1)[:, :j]
                    chosen = positions[picks]
                rows = np.arange(count)[:, None]
                keys[rows, chosen] = u[rows, chosen] - 2.0  # chosen sites fail first
            levels = topology_connectivity_levels(topology, keys, predicate)
            survivors[j] += np.bincount(levels, minlength=width + 1)
            trials[j] += count
        total += size
        hb = heartbeat()
        if hb is not None:
            hb.add(size)
        recording = flight_recorder() is not None
        if adaptive:
            exhausted = total >= budget
            for f in fs:
                if f in frozen:
                    continue
                cell = cell_at(f)
                if cell.met_target or exhausted:
                    frozen[f] = cell
                if recording:
                    publish_cell_precision(cell, done=f in frozen)
            if len(frozen) == len(set(fs)):
                break
        elif recording:
            for f in fs:
                publish_cell_precision(cell_at(f), done=total >= budget)
    publish_mc_throughput(total, perf_counter() - started)
    if adaptive:
        return {f: frozen[f] for f in fs}
    if precision:
        return {f: cell_at(f) for f in fs}
    return {f: cell_at(f).point for f in fs}


def simulate_topology_grid(
    topology: Topology,
    fs: tuple[int, ...],
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    batch: int = 200_000,
    predicate: ConnectivityPredicate | None = None,
    target_half_width: float | None = None,
    confidence: float = 0.95,
    max_iterations: int | None = None,
    precision: bool = False,
    method: str = "crn",
) -> dict[int, float] | dict[int, CellPrecision]:
    """The CRN sweep over one topology: every ``f`` from one sampling pass.

    Exactly :func:`~repro.analysis.montecarlo.simulate_grid` — shared
    sweep loop, nested failure sets, adaptive stopping, ``stats.cell``
    events — with breakdown thresholds from
    :func:`topology_connectivity_levels` (monotone predicates only; every
    shipped predicate qualifies).  Seeding keys the spawned stream by the
    topology name alone, so any f-subset reproduces its slice of the full
    sweep, and the dual-hub topology's fast path replays the specialized
    kernel's byte-identical stream.

    ``method="stratified"`` conditions sampling on the topology's declared
    :attr:`~repro.topology.model.Topology.strata_sites` — through the
    family's attached specialized kernel when one exists (the dual-hub
    builder wires :func:`repro.analysis.variance.stratified_grid`), else
    through the generic :func:`_topology_stratified_sweep` (stream key
    ``topo-strat/{name}``, uniform failure weights only).
    ``method="stratified-cv"`` additionally requires the specialized
    kernel (control variates are family-specific closed forms).
    """
    if method in ("stratified", "stratified-cv"):
        if predicate is None and topology.stratified_fn is not None:
            return topology.stratified_fn(
                fs=tuple(fs),
                iterations=iterations,
                rng=rng,
                seed=seed,
                batch=batch,
                control_variate=method == "stratified-cv",
                target_half_width=target_half_width,
                confidence=confidence,
                max_iterations=max_iterations,
                precision=precision,
            )
        if method == "stratified-cv":
            raise ValueError(
                f"method 'stratified-cv' needs a topology with an attached stratified "
                f"kernel; {topology.name!r} has none (use method='stratified')"
            )
        if not topology.strata_positions():
            raise ValueError(
                f"topology {topology.name!r} declares no strata_sites; stratified "
                f"sampling needs them (use method='crn')"
            )
        if topology.weights is not None:
            raise ValueError(
                f"stratified sampling requires uniform failure weights; topology "
                f"{topology.name!r} declares per-site weights"
            )
        for f in fs:
            topology.validate_f(f)
        require_baseline_connectivity(topology, predicate)
        rng = _resolve_rng(rng, seed, f"topo-strat/{topology.name}")
        return _topology_stratified_sweep(
            topology,
            tuple(fs),
            iterations,
            rng,
            batch,
            target_half_width,
            confidence,
            max_iterations,
            precision,
            predicate,
        )
    if method != "crn":
        raise ValueError(
            f"method must be 'crn', 'stratified', or 'stratified-cv', got {method!r}"
        )
    for f in fs:
        topology.validate_f(f)
    require_baseline_connectivity(topology, predicate)
    rng = _resolve_rng(rng, seed, f"topo-grid/{topology.name}")
    return _grid_sweep(
        topology.width,
        lambda u: topology_connectivity_levels(topology, _weight_keys(topology, u), predicate),
        fs,
        iterations,
        rng,
        batch,
        target_half_width,
        confidence,
        max_iterations,
        precision,
        _cell_n(topology),
        topology=topology.name,
    )


# -------------------------------------------------------------------- oracles
def enumerate_topology_success(
    topology: Topology,
    f: int,
    predicate: ConnectivityPredicate | None = None,
    max_combinations: int = DEFAULT_MAX_ENUMERATION,
) -> float:
    """Exact survivability by enumerating all ``C(width, f)`` failure sets.

    The assumption-free oracle (reference BFS per subset) the vectorized
    kernels are tested against; refuses universes larger than
    ``max_combinations`` subsets rather than silently running for hours.
    """
    topology.validate_f(f)
    total = comb(topology.width, f)
    if total > max_combinations:
        raise ValueError(
            f"enumeration over C({topology.width}, {f}) = {total} failure sets "
            f"exceeds max_combinations={max_combinations}"
        )
    good = sum(
        topology.connected(subset, predicate)
        for subset in combinations(range(topology.width), f)
    )
    return good / total


def exact_topology_success(
    topology: Topology,
    f: int,
    predicate: ConnectivityPredicate | None = None,
    max_combinations: int = DEFAULT_MAX_ENUMERATION,
) -> float:
    """Closed-form survivability when the topology ships one, else enumerate.

    The dual-hub builder attaches Equation 1 here, so the generic API
    answers the paper's grid exactly; every other family falls back to
    :func:`enumerate_topology_success` (subject to the same size guard).
    """
    topology.validate_f(f)
    if predicate is None and topology.exact_fn is not None:
        return float(topology.exact_fn(f))
    return enumerate_topology_success(topology, f, predicate, max_combinations)

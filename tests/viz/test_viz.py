"""Tests for chart, table, and CSV rendering."""

import numpy as np
import pytest

from repro.viz import line_chart, render_table, write_csv


def test_line_chart_contains_markers_and_legend():
    chart = line_chart({"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [9, 4, 1])})
    assert "o" in chart and "x" in chart
    assert "legend: o=a  x=b" in chart


def test_line_chart_axis_annotations():
    chart = line_chart({"s": ([0, 10], [0, 100])}, x_label="n", y_label="p")
    assert "100" in chart and "10" in chart
    assert "x: n" in chart and "y: p" in chart


def test_line_chart_log_axis():
    chart = line_chart({"s": ([10, 100, 1000], [0.1, 0.01, 0.001])}, x_log=True, y_log=True)
    assert "(log10)" not in chart  # labels absent -> no annotation line mentions
    chart = line_chart(
        {"s": ([10, 100], [1, 2])}, x_log=True, x_label="iterations"
    )
    assert "x: iterations (log10)" in chart


def test_line_chart_log_axis_rejects_nonpositive():
    with pytest.raises(ValueError):
        line_chart({"s": ([0, 1], [1, 2])}, x_log=True)


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"s": ([1, 2], [1])})
    with pytest.raises(ValueError):
        line_chart({"s": ([], [])})
    with pytest.raises(ValueError):
        line_chart({"s": ([1], [1])}, width=5)


def test_line_chart_constant_series():
    chart = line_chart({"flat": ([1, 2, 3], [5, 5, 5])})
    assert "o" in chart  # degenerate y-span must not divide by zero


def test_line_chart_accepts_numpy_arrays():
    chart = line_chart({"np": (np.arange(5), np.arange(5) ** 2)})
    assert "legend" in chart


def test_render_table_alignment():
    out = render_table(["name", "value"], [["alpha", 1.5], ["b", 20]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "alpha" in lines[2]
    # numeric column right-aligned: both values end at the same column
    assert lines[2].rstrip()[-3:] == "1.5"


def test_render_table_title_and_empty():
    out = render_table(["a"], [], title="caption")
    assert out.splitlines()[0] == "caption"


def test_render_table_validation():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path / "sub" / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
    content = path.read_text().strip().splitlines()
    assert content == ["x,y", "1,2", "3,4"]


def test_write_csv_validation(tmp_path):
    with pytest.raises(ValueError):
        write_csv(tmp_path / "bad.csv", ["x", "y"], [[1]])

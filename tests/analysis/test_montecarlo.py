"""Tests for the vectorized Monte Carlo estimator."""

import numpy as np
import pytest

from repro.analysis import (
    sample_failure_matrix,
    simulate_curve,
    simulate_success_probability,
    success_probability,
)
from repro.analysis.montecarlo import pair_connected_vec


def test_sample_matrix_shape_and_row_sums():
    rng = np.random.default_rng(0)
    failed = sample_failure_matrix(n=10, f=4, iterations=500, rng=rng)
    assert failed.shape == (500, 22)
    assert (failed.sum(axis=1) == 4).all()


def test_sample_matrix_f_zero_and_full():
    rng = np.random.default_rng(0)
    assert sample_failure_matrix(5, 0, 10, rng).sum() == 0
    assert (sample_failure_matrix(5, 12, 10, rng).sum(axis=1) == 12).all()


def test_sample_matrix_uniform_marginals():
    # each component fails with marginal probability f / (2n+2)
    rng = np.random.default_rng(1)
    n, f, iters = 6, 3, 40_000
    failed = sample_failure_matrix(n, f, iters, rng)
    marginals = failed.mean(axis=0)
    expected = f / (2 * n + 2)
    assert np.allclose(marginals, expected, atol=0.01)


def test_sample_matrix_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_failure_matrix(1, 1, 10, rng)
    with pytest.raises(ValueError):
        sample_failure_matrix(5, 13, 10, rng)
    with pytest.raises(ValueError):
        sample_failure_matrix(5, 2, 0, rng)


def test_vectorized_predicate_agrees_with_scalar():
    from repro.analysis import pair_connected

    rng = np.random.default_rng(7)
    n = 6
    for f in (2, 3, 5, 8):
        failed = sample_failure_matrix(n, f, 400, rng)
        vec = pair_connected_vec(failed)
        for row in range(0, 400, 37):
            failed_set = frozenset(np.flatnonzero(failed[row]).tolist())
            assert vec[row] == pair_connected(failed_set, n), (f, row, sorted(failed_set))


def test_estimator_converges_to_equation(seeded=3):
    rng = np.random.default_rng(seeded)
    for n, f in [(10, 2), (20, 3), (30, 4)]:
        estimate = simulate_success_probability(n, f, iterations=200_000, rng=rng)
        exact = success_probability(n, f)
        # 200k iterations: sampling error well under 0.005
        assert abs(estimate - exact) < 0.005, (n, f, estimate, exact)


def test_estimator_batching_equivalent_total():
    rng = np.random.default_rng(5)
    est = simulate_success_probability(8, 3, iterations=10_000, rng=rng, batch=999)
    assert 0.0 <= est <= 1.0


def test_two_hop_ablation_reduces_success():
    rng = np.random.default_rng(9)
    n, f = 12, 4
    with_hops = simulate_success_probability(n, f, 50_000, np.random.default_rng(9))
    without = simulate_success_probability(n, f, 50_000, np.random.default_rng(9), two_hop=False)
    assert without < with_hops


def test_simulate_curve_domain():
    rng = np.random.default_rng(2)
    ns, ps = simulate_curve(f=3, iterations=200, rng=rng, n_max=10)
    assert ns[0] == 4 and ns[-1] == 10
    assert ((0 <= ps) & (ps <= 1)).all()


def test_reproducible_with_same_seed():
    a = simulate_success_probability(10, 3, 5_000, np.random.default_rng(42))
    b = simulate_success_probability(10, 3, 5_000, np.random.default_rng(42))
    assert a == b

"""Crash-safe checkpointing of completed job results.

A long sweep streams every finished job into ``<run>/<name>.checkpoint.jsonl``
— one JSON record per job, **appended** with a flush+fsync, so persisting a
record costs O(1) I/O regardless of how many came before it (the first
implementation rewrote the whole file per record: O(n²) over a plan, which
a distributed coordinator absorbing chunks from a fleet would feel hardest).
A torn tail from a crash mid-append is at most one unparseable line, which
the loader skips; everything before it is intact, so the artifact stays
loadable through ``SIGKILL`` at any instant.  Superseded duplicates (a job
re-recorded after a retry or requeue) and foreign lines accumulate as
*stale* lines; once they outnumber the live records the file is compacted —
rewritten via write-temp-then-``os.replace`` down to one line per live
record.  ``drs-experiments --resume <run>`` feeds the file back through
:meth:`Checkpoint.load`, which keeps only records that still match the
rebuilt plan (same experiment, same root seed, same per-job spawned-seed
fingerprint) — so a checkpoint taken under one seed can never contaminate a
run under another.

Because job values are deterministic functions of ``(root seed, experiment,
job name)`` (the engine's seed-spawning contract), a resumed run that skips
checkpointed jobs reduces to byte-identical final CSVs versus an
uninterrupted run.  Values round-trip through JSON exactly: Python floats
serialize shortest-round-trip, and the only non-JSON-native job value types
(tuples, NumPy scalars/arrays) are tagged by :func:`encode_value` /
:func:`decode_value`.

Fault injection for tests and CI: setting ``DRS_ENGINE_CRASH_AFTER=<k>``
SIGKILLs the process right after the ``k``-th record is persisted — the
``make quick-resume`` target uses it to prove the interrupted+resumed run
matches an uninterrupted one byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs.artifacts import atomic_write_text
from repro.obs.flightrecorder import flight_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.jobs import JobPlan
    from repro.engine.retry import JobOutcome

CHECKPOINT_SCHEMA_VERSION = 1

#: Test/CI-only fault injection: SIGKILL self after this many persisted records.
CRASH_AFTER_ENV = "DRS_ENGINE_CRASH_AFTER"

_records_persisted = 0  # process-wide, for the injection hook only


def encode_value(value: Any) -> Any:
    """JSON-safe form of a job value, tagging tuples and NumPy types.

    Raises ``TypeError`` for values with no faithful JSON round-trip; the
    checkpoint then simply skips that job (it reruns on resume) rather
    than corrupting the record stream.
    """
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise TypeError("checkpointable dict values need string keys")
        if "__tuple__" in value or "__ndarray__" in value:
            raise TypeError("dict value collides with checkpoint type tags")
        return {k: encode_value(v) for k, v in value.items()}
    raise TypeError(f"job value of type {type(value).__name__} is not checkpointable")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=value["dtype"])
        return {k: decode_value(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class CheckpointRecord:
    """One completed job: identity, provenance, and its (decoded) value."""

    experiment: str
    root_seed: int
    job: str
    seed_fingerprint: int
    value: Any
    attempts: int = 1
    elapsed_s: float = 0.0


class Checkpoint:
    """Streamed record of completed jobs backing ``--resume``.

    One instance per (experiment run, output directory).  ``load(plan)``
    returns the records still valid for the plan; ``record(plan, outcome)``
    persists one more completed job — an O(1) fsync'd append, with the file
    compacted (atomic full rewrite) only when stale lines pile up.  A crash
    at any point tears at most the final line, which the loader skips.

    ``compact_threshold`` fixes the stale-line count that triggers
    compaction; by default it scales with the live record count (never
    fewer than 64), which bounds the file at ~2× its compacted size while
    keeping compactions rare enough to stay amortized O(1) per record.
    """

    def __init__(self, path: str | Path, compact_threshold: int | None = None) -> None:
        if compact_threshold is not None and compact_threshold < 1:
            raise ValueError(f"compact_threshold must be >= 1, got {compact_threshold}")
        self.path = Path(path)
        self.compact_threshold = compact_threshold
        self.compactions = 0
        self._records: list[CheckpointRecord] = []
        self._stale_lines = 0
        self._fingerprints: dict[str, int] | None = None
        self._loaded_for: tuple[str, int] | None = None

    # -------------------------------------------------------------- loading
    def load(self, plan: "JobPlan") -> list[CheckpointRecord]:
        """Records of ``plan``'s jobs completed by a previous (or this) run.

        Validates each stored record against the plan: experiment name,
        root seed, and the job's current spawned-seed fingerprint must all
        match, and the job must still exist in the plan.  Corrupt lines
        (e.g. a torn write from a crash mid-rename) are skipped.
        """
        self._fingerprints = plan.job_seeds()
        kept: dict[str, CheckpointRecord] = {}
        lines_seen = 0
        if self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                lines_seen += 1
                try:
                    raw = json.loads(line)
                    record = CheckpointRecord(
                        experiment=raw["experiment"],
                        root_seed=int(raw["root_seed"]),
                        job=raw["job"],
                        seed_fingerprint=int(raw["seed_fingerprint"]),
                        value=decode_value(raw["value"]),
                        attempts=int(raw.get("attempts", 1)),
                        elapsed_s=float(raw.get("elapsed_s", 0.0)),
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                if record.experiment != plan.experiment or record.root_seed != plan.seed:
                    continue
                if self._fingerprints.get(record.job) != record.seed_fingerprint:
                    continue
                kept[record.job] = record  # duplicates: last write wins
        self._records = list(kept.values())
        # corrupt, foreign, and superseded lines all occupy file space
        # without being live records — they are what compaction reclaims
        self._stale_lines = lines_seen - len(kept)
        self._loaded_for = (plan.experiment, plan.seed)
        return list(self._records)

    # ------------------------------------------------------------ recording
    def record(self, plan: "JobPlan", outcome: "JobOutcome") -> bool:
        """Persist one completed job; returns False if its value can't encode."""
        if self._loaded_for != (plan.experiment, plan.seed):
            self.load(plan)
        assert self._fingerprints is not None
        try:
            encoded = encode_value(outcome.value)
        except TypeError:
            return False
        record = CheckpointRecord(
            experiment=plan.experiment,
            root_seed=plan.seed,
            job=outcome.name,
            seed_fingerprint=self._fingerprints[outcome.name],
            value=outcome.value,
            attempts=outcome.attempts,
            elapsed_s=outcome.elapsed_s,
        )
        live = [r for r in self._records if r.job != record.job]
        if len(live) != len(self._records):
            self._stale_lines += 1  # the old line for this job is now dead
        self._records = live + [record]
        self._append(self._serialize(record, encoded))
        recorder = flight_recorder()
        if recorder is not None:
            recorder.emit(
                "checkpoint.write",
                job=outcome.name,
                records=len(self._records),
                bytes=self.path.stat().st_size if self.path.exists() else 0,
            )
        if self._stale_lines >= self._effective_compact_threshold():
            self.compact()
        return True

    def _serialize(self, record: CheckpointRecord, encoded_value: Any) -> str:
        return json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "experiment": record.experiment,
                "root_seed": record.root_seed,
                "job": record.job,
                "seed_fingerprint": record.seed_fingerprint,
                "value": encoded_value,
                "attempts": record.attempts,
                "elapsed_s": record.elapsed_s,
            }
        )

    def _append(self, line: str) -> None:
        """Persist one record: append + flush + fsync — O(1) in file size.

        The crash-injection hook fires here (after the bytes are durable),
        so ``DRS_ENGINE_CRASH_AFTER=k`` still means "die with exactly k
        records on disk".
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        _maybe_injected_crash()

    def _effective_compact_threshold(self) -> int:
        if self.compact_threshold is not None:
            return self.compact_threshold
        return max(64, len(self._records))

    def compact(self) -> None:
        """Atomically rewrite the file down to one line per live record.

        Runs automatically when stale lines (superseded duplicates, foreign
        or torn lines) reach the threshold; safe to call by hand.  The
        rewrite goes through write-temp-then-``os.replace``, so a crash
        during compaction leaves the previous (valid, merely bloated) file.
        """
        reclaimed = self._stale_lines
        lines = [self._serialize(r, encode_value(r.value)) for r in self._records]
        atomic_write_text(self.path, "\n".join(lines) + ("\n" if lines else ""))
        self._stale_lines = 0
        self.compactions += 1
        recorder = flight_recorder()
        if recorder is not None:
            recorder.emit(
                "checkpoint.compact",
                records=len(self._records),
                reclaimed=reclaimed,
                compactions=self.compactions,
                bytes=self.path.stat().st_size if self.path.exists() else 0,
            )

    # --------------------------------------------------------------- queries
    def completed_jobs(self) -> list[str]:
        """Names of the jobs currently persisted (after ``load``)."""
        return [record.job for record in self._records]


def _maybe_injected_crash() -> None:
    """Honor ``DRS_ENGINE_CRASH_AFTER``: die hard after the k-th record.

    SIGKILL (not an exception) so nothing — no finally blocks, no atexit —
    gets to tidy up: exactly the failure mode resume must survive.
    """
    budget = os.environ.get(CRASH_AFTER_ENV)
    if not budget:
        return
    global _records_persisted
    _records_persisted += 1
    if _records_persisted >= int(budget):
        os.kill(os.getpid(), signal.SIGKILL)

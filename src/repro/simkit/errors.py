"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled strictly before the current simulation time."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule at t={when!r}: simulation time is already t={now!r}")
        self.now = now
        self.when = when


class StoppedSimulation(SimulationError):
    """Raised inside a process when the simulator is stopped underneath it."""

"""Tests for kind-weighted failure sampling."""

import numpy as np
import pytest

from repro.analysis import (
    hub_nic_weight_ratio,
    simulate_weighted_success,
    success_probability,
    weighted_failure_matrix,
)


def test_matrix_shape_and_row_sums():
    rng = np.random.default_rng(0)
    failed = weighted_failure_matrix(8, 3, 400, rng, hub_weight=5.0)
    assert failed.shape == (400, 18)
    assert (failed.sum(axis=1) == 3).all()


def test_equal_weights_reduce_to_uniform():
    rng = np.random.default_rng(1)
    n, f = 10, 3
    est = simulate_weighted_success(n, f, 150_000, rng, hub_weight=1.0, nic_weight=1.0)
    assert abs(est - success_probability(n, f)) < 0.006


def test_heavier_hubs_fail_more_often():
    rng = np.random.default_rng(2)
    failed = weighted_failure_matrix(10, 2, 40_000, rng, hub_weight=10.0, nic_weight=1.0)
    hub_marginal = failed[:, :2].mean()
    nic_marginal = failed[:, 2:].mean()
    assert hub_marginal > 3 * nic_marginal


def test_heavier_hubs_reduce_survivability():
    # both hubs failing kills the pair, so hub-biased draws hurt
    rng = np.random.default_rng(3)
    n, f = 10, 3
    uniform = simulate_weighted_success(n, f, 80_000, np.random.default_rng(3))
    hubby = simulate_weighted_success(n, f, 80_000, np.random.default_rng(3), hub_weight=20.0)
    assert hubby < uniform


def test_weight_ratio_from_fleet_shares():
    # 0.07 across 2n NICs vs 0.04 across 2 hubs: per-hub weight dominates
    ratio = hub_nic_weight_ratio(10)
    assert ratio == pytest.approx((0.04 / 2) / (0.07 / 20))
    assert ratio > 1
    with pytest.raises(ValueError):
        hub_nic_weight_ratio(0)


def test_marginals_track_weights_quantitatively():
    # with f=1, inclusion probability is exactly w_i / sum(w)
    rng = np.random.default_rng(4)
    n, hub_w = 5, 4.0
    failed = weighted_failure_matrix(n, 1, 60_000, rng, hub_weight=hub_w)
    total_w = 2 * hub_w + 2 * n
    assert failed[:, 0].mean() == pytest.approx(hub_w / total_w, abs=0.005)
    assert failed[:, 5].mean() == pytest.approx(1.0 / total_w, abs=0.005)


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        weighted_failure_matrix(1, 1, 10, rng)
    with pytest.raises(ValueError):
        weighted_failure_matrix(5, 99, 10, rng)
    with pytest.raises(ValueError):
        weighted_failure_matrix(5, 2, 0, rng)
    with pytest.raises(ValueError):
        weighted_failure_matrix(5, 2, 10, rng, hub_weight=0.0)

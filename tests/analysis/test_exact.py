"""Tests for Equation 1: exactness, paper checkpoints, limiting behaviour."""

import pytest

from repro.analysis import (
    bad_combinations,
    comb0,
    covering_nic_failures,
    crossover_n,
    enumerate_success_probability,
    good_combinations,
    success_curve,
    success_probability,
    total_combinations,
)


# ------------------------------------------------------------- combinatorics
def test_comb0_matches_math_comb_in_domain():
    from math import comb

    assert comb0(10, 3) == comb(10, 3)
    assert comb0(0, 0) == 1


def test_comb0_zero_outside_domain():
    assert comb0(5, 7) == 0
    assert comb0(-1, 0) == 0
    assert comb0(5, -2) == 0


def test_covering_nic_failures_small_cases():
    # m=1: one node, must hit it: j=1 -> 2 ways (either NIC), j=2 -> 1 way
    assert covering_nic_failures(1, 1) == 2
    assert covering_nic_failures(1, 2) == 1
    # m=2, j=2: each node loses exactly one NIC: 2*2
    assert covering_nic_failures(2, 2) == 4
    # m=2, j=3: one node loses both, other loses one: C(2,1)*2
    assert covering_nic_failures(2, 3) == 4
    assert covering_nic_failures(2, 4) == 1


def test_covering_nic_failures_out_of_range():
    assert covering_nic_failures(3, 2) == 0  # j < m: cannot hit all
    assert covering_nic_failures(2, 5) == 0  # j > 2m
    assert covering_nic_failures(-1, 0) == 0


def test_covering_nic_failures_brute_force():
    from itertools import combinations

    for m in range(1, 5):
        for j in range(0, 2 * m + 1):
            count = sum(
                1
                for subset in combinations(range(2 * m), j)
                if all(any(x in subset for x in (2 * i, 2 * i + 1)) for i in range(m))
            )
            assert covering_nic_failures(m, j) == count, (m, j)


# ----------------------------------------------------------------- equation 1
@pytest.mark.parametrize("n", range(2, 9))
def test_closed_form_matches_exhaustive_enumeration(n):
    for f in range(0, min(2 * n + 2, 7) + 1):
        exact = success_probability(n, f)
        brute = enumerate_success_probability(n, f)
        assert exact == pytest.approx(brute, abs=1e-12), (n, f)


def test_paper_crossover_checkpoints():
    # the paper's prose: P[S] surpasses 0.99 at 18, 32, 45 nodes
    assert crossover_n(2) == 18
    assert crossover_n(3) == 32
    assert crossover_n(4) == 45


def test_zero_and_one_failure_always_survive():
    # single-component failures never disconnect a dual-backplane pair
    for n in (2, 5, 20):
        assert success_probability(n, 0) == 1.0
        assert success_probability(n, 1) == 1.0
        assert bad_combinations(n, 0) == 0
        assert bad_combinations(n, 1) == 0


def test_all_components_failed_never_survives():
    for n in (2, 4, 10):
        assert success_probability(n, 2 * n + 2) == 0.0


def test_f2_bad_count_closed_form():
    # hand count (DESIGN.md §2): 7 bad pairs independent of N (N >= 3)
    for n in (3, 10, 18, 50):
        assert bad_combinations(n, 2) == 7


def test_f3_bad_count_closed_form():
    # 14N - 10 for N >= 4 (no minimal bad triples beyond pair supersets)
    for n in (5, 10, 32):
        assert bad_combinations(n, 3) == 14 * n - 10


def test_good_plus_bad_equals_total():
    for n in (2, 5, 9):
        for f in range(0, 2 * n + 3):
            assert good_combinations(n, f) + bad_combinations(n, f) == total_combinations(n, f)


def test_monotone_increasing_in_n():
    for f in range(2, 11):
        previous = 0.0
        for n in range(f + 1, 64):
            p = success_probability(n, f)
            assert p >= previous - 1e-12, (n, f)
            previous = p


def test_monotone_decreasing_in_f():
    for n in (10, 30, 63):
        for f in range(0, 12):
            assert success_probability(n, f) >= success_probability(n, f + 1) - 1e-12


def test_convergence_to_one():
    # lim_{N->inf} P[S] = 1 for fixed f: check it is very close at large N
    for f in range(2, 11):
        assert success_probability(2000, f) > 0.9999


def test_success_curve_shape_and_domain():
    ns, ps = success_curve(f=5)
    assert ns[0] == 6 and ns[-1] == 63
    assert len(ns) == len(ps)
    assert ((0 <= ps) & (ps <= 1)).all()


def test_success_curve_custom_range_and_validation():
    ns, ps = success_curve(f=2, n_max=20, n_min=10)
    assert ns[0] == 10 and ns[-1] == 20
    with pytest.raises(ValueError):
        success_curve(f=2, n_max=5, n_min=10)


def test_expected_dark_pairs_linearity():
    from repro.analysis import expected_dark_pairs

    n, f = 10, 3
    pairs = n * (n - 1) // 2
    assert expected_dark_pairs(n, f) == pytest.approx(pairs * (1 - success_probability(n, f)))
    assert expected_dark_pairs(n, 0) == 0.0
    # shrinks as the cluster grows (for fixed f)
    assert expected_dark_pairs(60, 3) < expected_dark_pairs(10, 3) * (60 * 59) / (10 * 9)


def test_expected_dark_pairs_monte_carlo():
    import numpy as np

    from repro.analysis import expected_dark_pairs, pair_connected
    from repro.analysis.montecarlo import sample_failure_matrix

    n, f, iters = 6, 4, 4000
    rng = np.random.default_rng(0)
    failed = sample_failure_matrix(n, f, iters, rng)
    total_dark = 0
    for row in range(iters):
        failure_set = frozenset(np.flatnonzero(failed[row]).tolist())
        total_dark += sum(
            not pair_connected(failure_set, n, a, b)
            for a in range(n)
            for b in range(a + 1, n)
        )
    assert total_dark / iters == pytest.approx(expected_dark_pairs(n, f), rel=0.1)


def test_validation_errors():
    with pytest.raises(ValueError):
        success_probability(1, 2)
    with pytest.raises(ValueError):
        success_probability(5, -1)
    with pytest.raises(ValueError):
        success_probability(5, 13)
    with pytest.raises(ValueError):
        crossover_n(2, threshold=1.5)

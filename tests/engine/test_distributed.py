"""Distributed backend: wire protocol, byte-identity, and fault injection.

The job functions live at module level because distributed workers resolve
them by ``module:qualname`` import — the same constraint process pools
impose via pickling.  Worker subprocesses run with the repo root as their
working directory, so ``tests.engine.test_distributed`` is importable
through the ``-m`` launcher's cwd entry on ``sys.path``.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    Checkpoint,
    DistributedExecutor,
    Job,
    JobError,
    JobPlan,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    make_executor,
)
from repro.engine.distributed import (
    WORKER_CRASH_ENV,
    ProtocolError,
    job_from_wire,
    job_to_wire,
    outcome_from_wire,
    outcome_to_wire,
    parse_address,
    policy_from_wire,
    policy_to_wire,
    recv_frame,
    registry_from_wire,
    registry_to_wire,
    send_frame,
)
from repro.engine.retry import JobOutcome
from repro.obs.flightrecorder import FlightRecorder, set_flight_recorder
from repro.obs.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = str(REPO_ROOT / "src")


def _draw(params, seed_seq):
    rng = np.random.default_rng(seed_seq)
    return float(rng.random()) + params.get("offset", 0.0)


def _slow_draw(params, seed_seq):
    time.sleep(params.get("sleep_s", 0.2))
    return _draw(params, seed_seq)


def _boom(params, seed_seq):
    raise RuntimeError("injected failure")


def _plan(n=8, fn=_draw, seed=7, experiment="disttest", **extra_params):
    jobs = [
        Job(name=f"job/{i}", fn=fn, params={"offset": float(i), **extra_params})
        for i in range(n)
    ]
    return JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)


@pytest.fixture
def recorder():
    rec = FlightRecorder(None, experiment="disttest")
    set_flight_recorder(rec)
    yield rec
    set_flight_recorder(None)


class TestFraming:
    def test_frame_round_trip_over_a_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"type": "chunk", "jobs": [1, 2, 3], "nested": {"x": 0.5}}
            send_frame(a, payload)
            send_frame(a, {"type": "idle"})
            assert recv_frame(b) == payload
            assert recv_frame(b) == {"type": "idle"}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_untyped_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"no_type_field": 1})
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("spec", ["127.0.0.1:0", "0.0.0.0:7077", "example.com:12345"])
    def test_parse_address_accepts(self, spec):
        host, port = parse_address(spec)
        assert host and 0 <= port <= 65535

    @pytest.mark.parametrize("spec", ["nohost", ":", "host:", "host:notaport", "host:70000"])
    def test_parse_address_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_address(spec)


class TestWireCodecs:
    def test_job_round_trip_resolves_the_function(self):
        job = Job(name="j", fn=_draw, params={"offset": 1.0, "grid": (2, 3)})
        back = job_from_wire(json.loads(json.dumps(job_to_wire(job))))
        assert back.name == "j"
        assert back.fn is _draw
        assert back.params == {"offset": 1.0, "grid": (2, 3)}

    def test_non_module_level_function_rejected(self):
        with pytest.raises(TypeError):
            job_to_wire(Job(name="j", fn=lambda p, s: 0.0, params={}))

    def test_outcome_round_trip_keeps_values_exact(self):
        value = {"2": 0.1 + 0.2, "grid": (1.5, 2.5), "arr": np.array([0.1, 0.2])}
        outcome = JobOutcome(name="j", ok=True, value=value, attempts=2, elapsed_s=0.5)
        back = outcome_from_wire(json.loads(json.dumps(outcome_to_wire(outcome))))
        assert back.name == "j" and back.ok and back.attempts == 2
        assert back.value["2"] == value["2"]
        assert back.value["grid"] == value["grid"]
        np.testing.assert_array_equal(back.value["arr"], value["arr"])

    def test_failed_outcome_round_trips(self):
        outcome = JobOutcome(name="j", ok=False, error="boom", attempts=3, timed_out=True)
        back = outcome_from_wire(outcome_to_wire(outcome))
        assert not back.ok and back.error == "boom" and back.timed_out

    def test_unencodable_value_degrades_to_failure(self):
        wire = outcome_to_wire(JobOutcome(name="j", ok=True, value=object()))
        assert wire["ok"] is False
        assert "not wire-encodable" in wire["error"]

    def test_policy_round_trip(self):
        policy = RetryPolicy(max_attempts=4, timeout_s=2.5, quarantine=True)
        assert policy_from_wire(json.loads(json.dumps(policy_to_wire(policy)))) == policy

    def test_registry_round_trip_is_merge_compatible(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").add(3.0)
        registry.gauge("depth").set(7.0)
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        registry.histogram("empty", buckets=(1.0,))  # min/max at +-inf

        rebuilt = registry_from_wire(json.loads(json.dumps(registry_to_wire(registry))))
        target = MetricsRegistry()
        target.counter("jobs_total").add(1.0)
        target.merge(rebuilt)
        assert target.counter("jobs_total").value == 4.0
        assert target.gauge("depth").value == 7.0
        merged_hist = target.histogram("lat", buckets=(0.1, 1.0))
        assert merged_hist.count == 2 and merged_hist.min == 0.05 and merged_hist.max == 5.0
        empty = target.histogram("empty", buckets=(1.0,))
        assert empty.count == 0 and empty.min == float("inf")


class TestMakeExecutor:
    def test_distributed_backend_spawns_jobs_workers(self):
        ex = make_executor(3, backend="distributed")
        assert isinstance(ex, DistributedExecutor) and ex.spawn_workers == 3

    def test_distributed_backend_jobs_zero_waits_for_external_workers(self):
        ex = make_executor(0, backend="distributed", coordinator="0.0.0.0:7077")
        assert isinstance(ex, DistributedExecutor)
        assert ex.spawn_workers == 0 and ex.bind_host == "0.0.0.0" and ex.bind_port == 7077

    def test_local_backend_unchanged(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(2), ParallelExecutor)

    def test_coordinator_with_local_backend_rejected(self):
        with pytest.raises(ValueError):
            make_executor(2, coordinator="127.0.0.1:7077")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_executor(2, backend="slurm")


class TestByteIdentity:
    def test_distributed_matches_serial(self):
        serial = SerialExecutor().run(_plan(n=10))
        dist = DistributedExecutor(spawn_workers=2).run(_plan(n=10))
        assert dist.values == serial.values
        assert dist.backend == "distributed"
        assert sum(h["jobs"] for h in dist.hosts.values()) == 10
        assert all(h["host"] and h["pid"] for h in dist.hosts.values())

    def test_resumes_from_checkpoint(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "disttest.checkpoint.jsonl")
        plan = _plan(n=6)
        checkpoint.load(plan)
        done = SerialExecutor().run(_plan(n=3))  # jobs 0..2 share names with the plan
        for name, value in done.values.items():
            checkpoint.record(plan, JobOutcome(name=name, ok=True, value=value))

        dist = DistributedExecutor(spawn_workers=2).run(
            _plan(n=6), checkpoint=Checkpoint(tmp_path / "disttest.checkpoint.jsonl")
        )
        assert sorted(dist.resumed) == ["job/0", "job/1", "job/2"]
        assert dist.values == SerialExecutor().run(_plan(n=6)).values

    def test_quarantine_completes_the_run(self):
        plan = JobPlan(
            experiment="disttest",
            seed=7,
            jobs=[
                Job(name="ok", fn=_draw, params={}),
                Job(name="bad", fn=_boom, params={}),
            ],
            reduce=lambda v: v,
        )
        policy = RetryPolicy(max_attempts=1, quarantine=True)
        dist = DistributedExecutor(spawn_workers=1, policy=policy).run(plan)
        assert dist.quarantined == ["bad"]
        assert "ok" in dist.values and "bad" not in dist.values

    def test_fail_fast_raises_job_error(self):
        plan = JobPlan(
            experiment="disttest",
            seed=7,
            jobs=[Job(name="bad", fn=_boom, params={})],
            reduce=lambda v: v,
        )
        with pytest.raises(JobError, match="bad"):
            DistributedExecutor(spawn_workers=1).run(plan)


class TestFaultInjection:
    def test_killed_worker_jobs_are_requeued_and_bytes_match(self, recorder, monkeypatch):
        serial = SerialExecutor().run(_plan(n=12))
        monkeypatch.setenv(WORKER_CRASH_ENV, "1")
        ex = DistributedExecutor(spawn_workers=2, heartbeat_timeout_s=4.0)
        dist = ex.run(_plan(n=12))
        assert dist.values == serial.values
        assert dist.pool_respawns >= 1  # the dead spawned workers were replaced
        kinds = recorder.by_kind
        assert kinds.get("worker.leave", 0) >= 1
        assert kinds.get("job.stolen", 0) >= 1

    def test_all_workers_dead_with_no_respawn_budget_fails(self, monkeypatch):
        monkeypatch.setenv(WORKER_CRASH_ENV, "0")  # die on the very first chunk
        ex = DistributedExecutor(
            spawn_workers=2, max_worker_respawns=0, heartbeat_timeout_s=4.0
        )
        with pytest.raises(JobError, match="respawn budget"):
            ex.run(_plan(n=6))

    def test_late_joining_worker_steals_from_a_saturated_queue(self):
        ex = DistributedExecutor(spawn_workers=0, chunks_per_worker=8)
        plan = _plan(n=10, fn=_slow_draw, sleep_s=0.15)
        result: dict = {}

        def drive():
            result["execution"] = ex.run(plan)

        coordinator = threading.Thread(target=drive, daemon=True)
        coordinator.start()
        deadline = time.monotonic() + 10.0
        while ex.address is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ex.address is not None, "coordinator never bound"
        address = f"{ex.address[0]}:{ex.address[1]}"

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(WORKER_CRASH_ENV, None)

        def launch_worker():
            return subprocess.Popen(
                [sys.executable, "-m", "repro.engine.worker", "--coordinator", address,
                 "--quiet"],
                env=env,
                cwd=REPO_ROOT,
            )

        first = launch_worker()
        time.sleep(1.0)  # let the first worker saturate itself with chunks
        second = launch_worker()
        coordinator.join(timeout=60.0)
        assert not coordinator.is_alive(), "distributed run never finished"
        first.wait(timeout=10.0)
        second.wait(timeout=10.0)

        execution = result["execution"]
        # job values depend only on (seed, experiment, job name) — the
        # sleep_s param shapes wall time, so the fast serial plan is the
        # byte-identity reference
        serial = SerialExecutor().run(_plan(n=10, fn=_slow_draw, sleep_s=0.0))
        assert execution.values == serial.values
        assert len(execution.hosts) == 2, "the late joiner never registered"
        jobs_by_worker = sorted(h["jobs"] for h in execution.hosts.values())
        assert jobs_by_worker[0] >= 1, "the late joiner pulled no work from the queue"


FIGURE2_ARGS = ["figure2", "--quick", "--heartbeat", "0"]


def _env_with_src(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(WORKER_CRASH_ENV, None)
    env.pop("DRS_ENGINE_CRASH_AFTER", None)
    env.update(extra)
    return env


class TestCoordinatorCrashResume:
    def test_coordinator_sigkill_then_resume_is_byte_identical(self, tmp_path):
        from repro.experiments import runner

        baseline = tmp_path / "baseline"
        assert runner.main([*FIGURE2_ARGS, "--out", str(baseline)]) == 0

        out = tmp_path / "killed"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", *FIGURE2_ARGS,
             "--backend", "distributed", "--jobs", "2", "--out", str(out)],
            env=_env_with_src(DRS_ENGINE_CRASH_AFTER="20"),
            capture_output=True,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert proc.returncode != 0  # the coordinator was SIGKILL'd mid-run
        checkpoint = out / "figure2.checkpoint.jsonl"
        assert checkpoint.exists()
        assert len(checkpoint.read_text().splitlines()) == 20

        # --resume replays the invocation; the backend is machine-local and
        # deliberately not part of the run state, so the resume runs serial
        assert runner.main(["--resume", str(out), "--heartbeat", "0"]) == 0
        for artifact in ("figure2_montecarlo.csv", "figure2_equation1.csv"):
            assert (out / artifact).read_bytes() == (baseline / artifact).read_bytes()

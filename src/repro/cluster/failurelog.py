"""Synthetic fleet failure log — the paper's motivation statistic.

"We evaluated one hundred deployed systems and found that over a one-year
period, thirteen percent of the hardware failures were network related."

The original log is proprietary; this generator produces a categorical
hardware-failure log for a fleet, with the category mix calibrated so the
network-related share (NICs, hubs, cabling) lands at the paper's 13%, and
re-derives the statistic from the generated events — so the motivation table
in the benchmark harness is computed, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Hardware categories and their relative failure weights.  The network
#: categories (nic, hub, cable) sum to 0.13 of the total — the calibration
#: target; the non-network mix follows typical fleet folklore (disks
#: dominate).
CATEGORY_WEIGHTS: dict[str, float] = {
    "disk": 0.42,
    "power-supply": 0.16,
    "memory": 0.12,
    "cpu": 0.07,
    "fan": 0.06,
    "motherboard": 0.04,
    "nic": 0.07,
    "hub": 0.04,
    "cable": 0.02,
}

NETWORK_CATEGORIES = frozenset({"nic", "hub", "cable"})


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One hardware failure: when, which server, what broke."""

    time_days: float
    server: int
    category: str

    @property
    def network_related(self) -> bool:
        """True for NIC/hub/cabling failures."""
        return self.category in NETWORK_CATEGORIES


@dataclass(frozen=True)
class FailureLogConfig:
    """Fleet shape and failure intensity.

    ``failures_per_server_year`` ~ 1.1 gives a fleet of 100 servers roughly
    the low-hundreds of annual hardware events typical of late-90s server
    hardware (and enough samples for the 13% share to be stable).
    """

    servers: int = 100
    duration_days: float = 365.0
    failures_per_server_year: float = 1.1

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.failures_per_server_year <= 0:
            raise ValueError("failures_per_server_year must be positive")


def generate_failure_log(config: FailureLogConfig, rng: np.random.Generator) -> list[FailureEvent]:
    """Draw one fleet-year (or configured span) of hardware failures.

    Failures arrive per server as a Poisson process; categories are i.i.d.
    from :data:`CATEGORY_WEIGHTS`.
    """
    categories = list(CATEGORY_WEIGHTS)
    weights = np.array([CATEGORY_WEIGHTS[c] for c in categories])
    weights = weights / weights.sum()
    rate_per_day = config.failures_per_server_year / 365.0
    events: list[FailureEvent] = []
    for server in range(config.servers):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_day))
            if t > config.duration_days:
                break
            category = categories[int(rng.choice(len(categories), p=weights))]
            events.append(FailureEvent(time_days=t, server=server, category=category))
    events.sort(key=lambda e: e.time_days)
    return events


def category_breakdown(events: list[FailureEvent]) -> dict[str, float]:
    """Fraction of failures per category (empty log -> empty dict)."""
    if not events:
        return {}
    counts: dict[str, int] = {}
    for event in events:
        counts[event.category] = counts.get(event.category, 0) + 1
    total = len(events)
    return {category: count / total for category, count in sorted(counts.items())}


def network_fraction(events: list[FailureEvent]) -> float:
    """The paper's statistic: share of failures that were network-related."""
    if not events:
        return 0.0
    return sum(1 for e in events if e.network_related) / len(events)


def to_fault_scenario(
    events: list[FailureEvent],
    cluster_nodes: int,
    mttr_days: float = 1.0,
    time_scale: float = 1.0,
):
    """Replay a fleet log's *network* failures as a DES fault script.

    Bridges the motivation data to the simulator: NIC events map to the
    corresponding server's NIC (alternating networks per event), hub/cable
    events to a backplane, each repaired ``mttr_days`` later.  ``time_scale``
    converts log days to simulation seconds (e.g. ``1.0`` = one sim-second
    per day, letting a fleet-year replay in ~365 simulated seconds).

    Only servers ``0..cluster_nodes-1`` are replayed; the fleet log usually
    covers more servers than one cluster holds.
    """
    from repro.netsim.faults import FaultScenario

    if cluster_nodes < 2:
        raise ValueError("cluster_nodes must be >= 2")
    if mttr_days <= 0 or time_scale <= 0:
        raise ValueError("mttr_days and time_scale must be positive")
    scenario = FaultScenario()
    nic_toggle: dict[int, int] = {}
    for index, event in enumerate(e for e in events if e.network_related):
        at = event.time_days * time_scale
        until = at + mttr_days * time_scale
        if event.category == "nic":
            if event.server >= cluster_nodes:
                continue
            net = nic_toggle.get(event.server, 0)
            nic_toggle[event.server] = 1 - net
            component = f"nic{event.server}.{net}"
        else:  # hub or cable: take a backplane down
            component = f"hub{index % 2}"
        scenario.fail(at, component)
        scenario.repair(until, component)
    return scenario

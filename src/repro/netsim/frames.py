"""Layer-2 frames and wire-size accounting.

Wire occupancy uses minimal-Ethernet framing:

* 18 bytes of header+FCS on top of the L3 payload,
* padding up to the 64-byte minimum frame,
* 20 bytes of preamble + inter-frame gap.

An empty-payload ICMP echo (20 B IP + 8 B ICMP = 28 B of L3) therefore costs
``max(64, 28+18) + 20 = 84`` bytes on the wire per direction — the constant
DESIGN.md §2 calibrates Figure 1 against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.netsim.addresses import InterfaceAddr

ETHER_OVERHEAD_BYTES = 18   #: MAC header (14) + FCS (4)
MIN_FRAME_BYTES = 64        #: minimum Ethernet frame, padded if shorter
PREAMBLE_IFG_BYTES = 20     #: preamble + start delimiter (8) + inter-frame gap (12)

_frame_ids = itertools.count()


def wire_bytes(payload_bytes: int) -> int:
    """Bytes of medium time one frame with an L3 payload of this size occupies."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    return max(MIN_FRAME_BYTES, payload_bytes + ETHER_OVERHEAD_BYTES) + PREAMBLE_IFG_BYTES


@dataclass(slots=True)
class Frame:
    """A layer-2 frame in flight on one backplane.

    ``payload`` is an arbitrary L3 object exposing ``size_bytes`` (the
    protocol stack's :class:`~repro.protocols.packet.Packet`); ``protocol``
    is the ethertype-like demux key the receiving node dispatches on.
    """

    src: InterfaceAddr
    dst: InterfaceAddr
    protocol: str
    payload: Any
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def payload_bytes(self) -> int:
        """Size of the L3 payload carried by this frame."""
        size = getattr(self.payload, "size_bytes", None)
        if size is None:
            raise TypeError(f"frame payload {self.payload!r} lacks a size_bytes attribute")
        return int(size)

    @property
    def wire_bytes(self) -> int:
        """Total wire occupancy of this frame including framing overhead."""
        return wire_bytes(self.payload_bytes)

    @property
    def wire_bits(self) -> int:
        """Wire occupancy in bits."""
        return self.wire_bytes * 8

    def __str__(self) -> str:
        return f"Frame#{self.frame_id}[{self.src}->{self.dst} {self.protocol} {self.payload_bytes}B]"

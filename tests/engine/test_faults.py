"""Fault injection against the executors: retries, timeouts, broken pools, resume."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    Checkpoint,
    Job,
    JobError,
    JobPlan,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
)
from repro.obs.metrics import MetricsRegistry, ensure_core_metrics, use_registry

#: Fast policy for tests: generous attempts, negligible real sleeping.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001, jitter_frac=0.0)


def _draw(params, seed_seq):
    """Deterministic value from the job's spawned stream (picklable)."""
    return float(np.random.default_rng(seed_seq).random())


def _flaky_once(params, seed_seq):
    """Fails the first time each (job, marker dir) pair runs, then succeeds.

    The marker file carries the flakiness across attempts — and across
    processes, so the same function exercises pool workers.
    """
    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("failed once")
        raise RuntimeError("transient failure")
    return _draw(params, seed_seq)


def _always_fails(params, seed_seq):
    raise RuntimeError("permanent failure")


def _sleeper(params, seed_seq):
    import time

    time.sleep(params.get("sleep_s", 5.0))
    return 1.0


def _worker_killer(params, seed_seq):
    """Kills its host process once (first run), then returns normally."""
    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("killed worker")
        os._exit(1)
    return _draw(params, seed_seq)


def _always_kills(params, seed_seq):
    os._exit(1)


def _plan(jobs, experiment="faulty", seed=5):
    return JobPlan(experiment=experiment, seed=seed, jobs=jobs, reduce=lambda v: v)


def _with_registry(fn):
    registry = ensure_core_metrics(MetricsRegistry())
    with use_registry(registry):
        result = fn()
    return result, registry


class TestFlakyJobs:
    def test_serial_retry_reproduces_clean_values(self, tmp_path):
        clean = SerialExecutor().run(_plan([Job("j1", _draw), Job("j2", _draw)]))
        flaky_jobs = [
            Job("j1", _flaky_once, {"marker": str(tmp_path / "j1")}),
            Job("j2", _flaky_once, {"marker": str(tmp_path / "j2")}),
        ]
        flaky, _ = _with_registry(
            lambda: SerialExecutor(policy=FAST_RETRY).run(_plan(flaky_jobs))
        )
        # retried jobs re-derive the same spawned stream: identical bytes
        assert flaky.values == clean.values
        assert flaky.attempts == {"j1": 2, "j2": 2}
        assert flaky.quarantined == []

    def test_parallel_retry_reproduces_clean_values(self, tmp_path):
        clean = SerialExecutor().run(_plan([Job("j1", _draw), Job("j2", _draw)]))
        flaky_jobs = [
            Job("j1", _flaky_once, {"marker": str(tmp_path / "j1")}),
            Job("j2", _flaky_once, {"marker": str(tmp_path / "j2")}),
        ]
        flaky, _ = _with_registry(
            lambda: ParallelExecutor(workers=2, policy=FAST_RETRY).run(_plan(flaky_jobs))
        )
        assert flaky.values == clean.values
        assert flaky.attempts == {"j1": 2, "j2": 2}


class TestQuarantine:
    def test_serial_quarantines_and_completes(self):
        jobs = [Job("ok", _draw), Job("doomed", _always_fails)]
        execution, registry = _with_registry(
            lambda: SerialExecutor(policy=FAST_RETRY).run(_plan(jobs))
        )
        assert set(execution.values) == {"ok"}
        assert execution.quarantined == ["doomed"]
        assert execution.attempts["doomed"] == 3
        assert registry.counter("engine_jobs_quarantined_total").value == 1

    def test_parallel_quarantines_and_completes(self):
        jobs = [Job("ok", _draw), Job("doomed", _always_fails)]
        execution, registry = _with_registry(
            lambda: ParallelExecutor(workers=2, policy=FAST_RETRY).run(_plan(jobs))
        )
        assert set(execution.values) == {"ok"}
        assert execution.quarantined == ["doomed"]
        assert registry.counter("engine_jobs_quarantined_total").value == 1

    def test_timeout_quarantines(self):
        policy = RetryPolicy(max_attempts=2, timeout_s=0.05, backoff_base_s=0.0, jitter_frac=0.0)
        jobs = [Job("slow", _sleeper, {"sleep_s": 5.0}), Job("ok", _draw)]
        execution, registry = _with_registry(
            lambda: SerialExecutor(policy=policy).run(_plan(jobs))
        )
        assert execution.quarantined == ["slow"]
        assert execution.timed_out == ["slow"]
        assert set(execution.values) == {"ok"}
        assert registry.counter("engine_job_timeouts_total").value == 2

    def test_no_policy_still_fails_fast(self):
        with pytest.raises(JobError, match="'doomed'"):
            SerialExecutor().run(_plan([Job("doomed", _always_fails)]))


class TestBrokenPool:
    def test_pool_respawn_recovers_and_preserves_values(self, tmp_path):
        names = [f"j{i}" for i in range(6)]
        clean = SerialExecutor().run(_plan([Job(n, _draw) for n in names]))
        jobs = [Job(n, _draw) for n in names[:-1]]
        jobs.append(Job(names[-1], _worker_killer, {"marker": str(tmp_path / "kill")}))
        execution, registry = _with_registry(
            lambda: ParallelExecutor(workers=2, policy=FAST_RETRY).run(_plan(jobs))
        )
        assert execution.values == clean.values
        assert execution.pool_respawns >= 1
        assert registry.counter("engine_pool_respawns_total").value >= 1

    def test_poison_job_exhausts_respawns(self):
        executor = ParallelExecutor(workers=2, policy=FAST_RETRY, max_pool_respawns=1)
        with pytest.raises(JobError, match="<pool>"):
            _with_registry(lambda: executor.run(_plan([Job("poison", _always_kills)])))


class TestResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        path = tmp_path / "faulty.checkpoint.jsonl"
        plan = _plan([Job(n, _draw) for n in ("a", "b", "c", "d")])
        full = SerialExecutor().run(plan, checkpoint=Checkpoint(path))
        assert full.resumed == []
        assert len(path.read_text().splitlines()) == 4

        calls = []

        def spy(params, seed_seq):
            calls.append(params["name"])
            return _draw(params, seed_seq)

        spy_plan = _plan([Job(n, spy, {"name": n}) for n in ("a", "b", "c", "d")])
        resumed = SerialExecutor().run(spy_plan, checkpoint=Checkpoint(path))
        assert calls == []  # nothing re-ran
        assert sorted(resumed.resumed) == ["a", "b", "c", "d"]
        assert resumed.values == full.values

    def test_partial_checkpoint_reruns_only_the_missing_jobs(self, tmp_path):
        path = tmp_path / "faulty.checkpoint.jsonl"
        names = ("a", "b", "c", "d")
        plan = _plan([Job(n, _draw) for n in names])
        baseline = SerialExecutor().run(plan)

        # simulate a crash after two jobs: checkpoint only a and b
        prefix_plan = _plan([Job(n, _draw) for n in names[:2]])
        SerialExecutor().run(prefix_plan, checkpoint=Checkpoint(path))

        calls = []

        def spy(params, seed_seq):
            calls.append(params["name"])
            return _draw(params, seed_seq)

        spy_plan = _plan([Job(n, spy, {"name": n}) for n in names])
        resumed = SerialExecutor().run(spy_plan, checkpoint=Checkpoint(path))
        assert calls == ["c", "d"]
        assert sorted(resumed.resumed) == ["a", "b"]
        # byte-identical to the uninterrupted run
        assert resumed.values == baseline.values

    def test_parallel_resume_matches_serial(self, tmp_path):
        path = tmp_path / "faulty.checkpoint.jsonl"
        names = tuple(f"j{i}" for i in range(8))
        plan = _plan([Job(n, _draw) for n in names])
        baseline = SerialExecutor().run(plan)
        SerialExecutor().run(
            _plan([Job(n, _draw) for n in names[:5]]), checkpoint=Checkpoint(path)
        )
        execution, _ = _with_registry(
            lambda: ParallelExecutor(workers=2, policy=FAST_RETRY).run(
                _plan([Job(n, _draw) for n in names]), checkpoint=Checkpoint(path)
            )
        )
        assert execution.values == baseline.values
        assert sorted(execution.resumed) == sorted(names[:5])

"""Bench regression tracking: diff ``BENCH_*.json`` snapshots with CI-aware gates.

:mod:`repro.obs.bench` persists pytest-benchmark sessions as committed
``BENCH_<module>.json`` snapshots, but until now nothing *compared* them —
the perf trajectory was unobserved and a regression in, say, the CRN sweep
kernel would ship silently.  ``repro obs bench-diff`` closes the loop:

* load two or more snapshots (files, or a history directory of them),
  grouped by benchmark module and ordered by ``created_unix``;
* pair benchmarks by ``fullname`` and compute the fractional delta of the
  chosen stat (``mean`` by default; ``ops`` is treated as higher-is-better);
* gate each delta against a **CI-width-aware threshold**: the noise floor
  of a benchmark is estimated from its own recorded spread
  (``stddev / (mean * sqrt(rounds))``, the relative standard error), the
  baseline's and candidate's floors combine in quadrature, and the
  threshold is ``max(min_rel, z * combined)`` — so a tightly-measured
  benchmark is held to the minimum relative tolerance while a noisy
  single-round one needs a correspondingly larger move to count;
* render a delta table (or ``--json``) and exit
  :data:`BENCH_DIFF_EXIT_REGRESSION` if anything regressed — the CI perf
  gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.bench import load_bench_snapshot

#: exit code ``repro obs bench-diff`` uses when a regression is detected
BENCH_DIFF_EXIT_REGRESSION = 3

#: stats where a larger value is better (everything else: smaller is better)
HIGHER_IS_BETTER = frozenset({"ops"})

#: stats bench-diff accepts via --metric
DIFF_METRICS = ("mean", "min", "median", "max", "ops")

#: default minimum relative move to call a regression (5%)
DEFAULT_MIN_REL = 0.05

#: default z multiplier on the combined relative standard error
DEFAULT_Z = 3.0


@dataclass
class BenchDelta:
    """One benchmark's movement between the oldest and newest snapshot."""

    fullname: str
    module: str
    metric: str
    base: float
    new: float
    delta_frac: float  # signed: positive = worse (direction-normalized)
    threshold_frac: float
    noise_frac: float  # combined relative standard error of the two snapshots
    regressed: bool
    improved: bool
    history: list[float] = field(default_factory=list)  # metric across all snapshots

    def to_dict(self) -> dict[str, Any]:
        return {
            "fullname": self.fullname,
            "module": self.module,
            "metric": self.metric,
            "base": self.base,
            "new": self.new,
            "delta_frac": round(self.delta_frac, 6),
            "threshold_frac": round(self.threshold_frac, 6),
            "noise_frac": round(self.noise_frac, 6),
            "regressed": self.regressed,
            "improved": self.improved,
            "history": [round(v, 9) for v in self.history],
        }


def relative_stderr(row: Mapping[str, Any]) -> float:
    """A benchmark row's relative standard error (its noise floor).

    ``stddev / (mean * sqrt(rounds))``; 0 when the snapshot has fewer than
    two rounds (no spread information — the minimum tolerance then rules).
    """
    mean = float(row.get("mean", 0.0) or 0.0)
    stddev = float(row.get("stddev", 0.0) or 0.0)
    rounds = float(row.get("rounds", 1.0) or 1.0)
    if mean <= 0 or stddev <= 0 or rounds < 2:
        return 0.0
    return stddev / (mean * math.sqrt(rounds))


def expand_snapshot_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Files stay files; directories expand to their sorted ``BENCH_*.json``."""
    expanded: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            expanded.extend(sorted(path.glob("BENCH_*.json")))
        else:
            expanded.append(path)
    return expanded


def collect_snapshots(paths: Iterable[str | Path]) -> dict[str, list[dict[str, Any]]]:
    """Load snapshots grouped by module, oldest first within each group."""
    groups: dict[str, list[dict[str, Any]]] = {}
    for path in expand_snapshot_paths(paths):
        doc = load_bench_snapshot(path)
        doc["_path"] = str(path)
        groups.setdefault(str(doc.get("module", Path(path).stem)), []).append(doc)
    for docs in groups.values():
        docs.sort(key=lambda d: float(d.get("created_unix", 0.0)))
    return groups


def _rows_by_fullname(doc: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    return {str(row["fullname"]): row for row in doc.get("results", [])}


def diff_history(
    docs: list[dict[str, Any]],
    metric: str = "mean",
    min_rel: float = DEFAULT_MIN_REL,
    z: float = DEFAULT_Z,
) -> list[BenchDelta]:
    """Deltas between the oldest and newest snapshot of one module.

    Benchmarks present in only one snapshot are skipped (new tests have no
    baseline; retired ones have no candidate).  Intermediate snapshots
    contribute the ``history`` trajectory, not gating decisions.
    """
    if metric not in DIFF_METRICS:
        raise ValueError(f"metric must be one of {DIFF_METRICS}, got {metric!r}")
    if len(docs) < 2:
        raise ValueError("need at least two snapshots of a module to diff")
    base_doc, new_doc = docs[0], docs[-1]
    base_rows, new_rows = _rows_by_fullname(base_doc), _rows_by_fullname(new_doc)
    module = str(new_doc.get("module", "?"))
    deltas: list[BenchDelta] = []
    for fullname in sorted(set(base_rows) & set(new_rows)):
        base_row, new_row = base_rows[fullname], new_rows[fullname]
        base = base_row.get(metric)
        new = new_row.get(metric)
        if not isinstance(base, (int, float)) or not isinstance(new, (int, float)) or base <= 0:
            continue
        raw_frac = (float(new) - float(base)) / float(base)
        # normalize direction: positive delta_frac always means "got worse"
        delta_frac = -raw_frac if metric in HIGHER_IS_BETTER else raw_frac
        noise = math.hypot(relative_stderr(base_row), relative_stderr(new_row))
        threshold = max(min_rel, z * noise)
        history = [
            float(_rows_by_fullname(doc).get(fullname, {}).get(metric, float("nan")))
            for doc in docs
        ]
        deltas.append(
            BenchDelta(
                fullname=fullname,
                module=module,
                metric=metric,
                base=float(base),
                new=float(new),
                delta_frac=delta_frac,
                threshold_frac=threshold,
                noise_frac=noise,
                regressed=delta_frac > threshold,
                improved=delta_frac < -threshold,
                history=history,
            )
        )
    return deltas


def diff_snapshots(
    paths: Iterable[str | Path],
    metric: str = "mean",
    min_rel: float = DEFAULT_MIN_REL,
    z: float = DEFAULT_Z,
) -> list[BenchDelta]:
    """Diff every module with ≥2 snapshots among ``paths``; see :func:`diff_history`."""
    groups = collect_snapshots(paths)
    comparable = {m: docs for m, docs in groups.items() if len(docs) >= 2}
    if not comparable:
        raise ValueError(
            "need at least two snapshots of the same benchmark module "
            f"(got modules: {', '.join(sorted(groups)) or 'none'})"
        )
    deltas: list[BenchDelta] = []
    for _module, docs in sorted(comparable.items()):
        deltas.extend(diff_history(docs, metric=metric, min_rel=min_rel, z=z))
    return deltas


def render_bench_diff(deltas: list[BenchDelta]) -> str:
    """Human-readable delta table, worst movement first."""
    from repro.viz import render_table

    if not deltas:
        return "bench-diff: no comparable benchmarks between the snapshots"
    metric = deltas[0].metric
    rows = []
    for d in sorted(deltas, key=lambda d: -d.delta_frac):
        verdict = "REGRESSED" if d.regressed else ("improved" if d.improved else "ok")
        rows.append(
            [
                d.fullname.split("::")[-1],
                d.module,
                f"{d.base:.6g}",
                f"{d.new:.6g}",
                f"{d.delta_frac:+.1%}",
                f"±{d.threshold_frac:.1%}",
                verdict,
            ]
        )
    regressions = sum(d.regressed for d in deltas)
    title = (
        f"bench-diff ({metric}; +delta = worse): "
        + (f"{regressions} REGRESSION(S)" if regressions else "no regressions")
    )
    return render_table(
        ["benchmark", "module", f"base {metric}", f"new {metric}", "delta", "threshold", "verdict"],
        rows,
        title=title,
    )


def bench_diff_report(deltas: list[BenchDelta]) -> dict[str, Any]:
    """Machine-readable report (the ``--json`` payload)."""
    return {
        "metric": deltas[0].metric if deltas else None,
        "benchmarks": len(deltas),
        "regressions": [d.fullname for d in deltas if d.regressed],
        "improvements": [d.fullname for d in deltas if d.improved],
        "deltas": [d.to_dict() for d in deltas],
    }

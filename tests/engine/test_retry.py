"""RetryPolicy semantics: budgets, deterministic backoff, timeouts, quarantine."""

import pickle

import numpy as np
import pytest

from repro.engine import FAIL_FAST, Job, JobError, JobOutcome, JobTimeoutError, RetryPolicy
from repro.engine.retry import execute_job
from repro.obs.metrics import MetricsRegistry, ensure_core_metrics, use_registry
from repro.simkit.rng import spawn_seedseq


def _run(job, policy, experiment="toy", seed=7, sleeps=None):
    seed_seq = spawn_seedseq(seed, experiment, job.name)
    registry = ensure_core_metrics(MetricsRegistry())
    with use_registry(registry):
        outcome = execute_job(
            experiment,
            seed,
            job,
            seed_seq,
            policy,
            sleep=(sleeps.append if sleeps is not None else lambda s: None),
        )
    return outcome, registry


def _value(params, seed_seq):
    return float(np.random.default_rng(seed_seq).random())


def _flaky_factory(fail_first_n):
    calls = {"n": 0}

    def flaky(params, seed_seq):
        calls["n"] += 1
        if calls["n"] <= fail_first_n:
            raise RuntimeError(f"transient #{calls['n']}")
        return _value(params, seed_seq)

    return flaky


class TestRetryPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_fail_fast_is_single_attempt_no_quarantine(self):
        assert FAIL_FAST.max_attempts == 1
        assert not FAIL_FAST.quarantine


class TestBackoff:
    def test_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=3.0,
                             jitter_frac=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_s(1, rng) == 1.0
        assert policy.backoff_s(2, rng) == 2.0
        assert policy.backoff_s(3, rng) == 3.0  # capped, not 4.0
        assert policy.backoff_s(9, rng) == 3.0

    def test_jitter_is_deterministic_for_a_seeded_stream(self):
        policy = RetryPolicy(backoff_base_s=0.5, jitter_frac=0.5)
        a = [policy.backoff_s(k, np.random.default_rng(42)) for k in (1, 2, 3)]
        b = [policy.backoff_s(k, np.random.default_rng(42)) for k in (1, 2, 3)]
        assert a == b
        base = 0.5
        assert base <= a[0] <= base * 1.5

    def test_rejects_zero_failures(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0, np.random.default_rng(0))


class TestExecuteJob:
    def test_success_first_try(self):
        outcome, registry = _run(Job("j", _value), RetryPolicy())
        assert outcome.ok and outcome.attempts == 1 and not outcome.timed_out
        assert registry.counter("engine_job_attempts_total").value == 1
        assert registry.counter("engine_job_retries_total").value == 0

    def test_flaky_job_succeeds_on_retry_with_identical_value(self):
        clean, _ = _run(Job("j", _value), RetryPolicy())
        sleeps = []
        flaky, registry = _run(
            Job("j", _flaky_factory(2)), RetryPolicy(max_attempts=3, backoff_base_s=0.01),
            sleeps=sleeps,
        )
        assert flaky.ok and flaky.attempts == 3
        # the retried job drew from the same spawned stream: identical output
        assert flaky.value == clean.value
        assert registry.counter("engine_job_retries_total").value == 2
        assert len(sleeps) == 2 and sleeps[1] > sleeps[0] > 0

    def test_backoff_sleeps_are_reproducible_across_runs(self):
        sleeps_a, sleeps_b = [], []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.2)
        _run(Job("j", _flaky_factory(2)), policy, sleeps=sleeps_a)
        _run(Job("j", _flaky_factory(2)), policy, sleeps=sleeps_b)
        assert sleeps_a == sleeps_b

    def test_exhausted_budget_quarantines(self):
        outcome, registry = _run(Job("j", _flaky_factory(99)), RetryPolicy(max_attempts=2))
        assert not outcome.ok
        assert outcome.attempts == 2
        assert "transient" in outcome.error
        assert registry.counter("engine_jobs_quarantined_total").value == 1

    def test_exhausted_budget_raises_without_quarantine(self):
        policy = RetryPolicy(max_attempts=2, quarantine=False)
        with pytest.raises(JobError, match="'j' of experiment 'toy'"):
            _run(Job("j", _flaky_factory(99)), policy)

    def test_timeout_fires_and_counts(self):
        def sleeper(params, seed_seq):
            import time

            time.sleep(5.0)

        policy = RetryPolicy(max_attempts=2, timeout_s=0.05, backoff_base_s=0.0, jitter_frac=0.0)
        outcome, registry = _run(Job("slow", sleeper), policy)
        assert not outcome.ok and outcome.timed_out
        assert "timed out after 0.05s" in outcome.error
        assert registry.counter("engine_job_timeouts_total").value == 2

    def test_timeout_unused_when_job_is_fast(self):
        outcome, _ = _run(Job("j", _value), RetryPolicy(timeout_s=30.0))
        assert outcome.ok and not outcome.timed_out


class TestErrorPickling:
    def test_job_error_round_trips(self):
        err = JobError("exp", "job-1", RuntimeError("boom"))
        clone = pickle.loads(pickle.dumps(err))
        assert clone.experiment == "exp" and clone.job_name == "job-1"
        assert "boom" in clone.cause

    def test_timeout_error_round_trips(self):
        err = JobTimeoutError("exp", "job-1", 2.5)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, JobTimeoutError)
        assert clone.timeout_s == 2.5 and clone.job_name == "job-1"

    def test_outcome_round_trips(self):
        outcome = JobOutcome(name="j", ok=False, error="x", attempts=3, timed_out=True)
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone == outcome

"""The simulation event loop."""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.simkit.errors import ScheduleInPastError
from repro.simkit.events import Event, EventQueue


class Simulator:
    """Deterministic discrete-event simulator.

    The simulator owns the clock and the pending-event queue.  All model
    components (NICs, hubs, protocol daemons) schedule work through it and
    never advance time themselves.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(self, when: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Raises
        ------
        ScheduleInPastError
            If ``when`` is before the current time or not a finite number.
        """
        if not math.isfinite(when):
            raise ScheduleInPastError(self._now, when)
        if when < self._now:
            raise ScheduleInPastError(self._now, when)
        return self._queue.push(when, callback, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (safe to call twice)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Fire the single earliest event.  Return ``False`` if none remain."""
        if not self._queue:
            return False
        ev = self._queue.pop()
        self._now = ev.time
        ev.callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget spent.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time, and advance the clock exactly to ``until``.
        max_events:
            Safety valve for runaway models; stop after firing this many.
        """
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    return
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = until
                    return
                self.step()
                fired += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the currently firing event returns."""
        self._stopped = True

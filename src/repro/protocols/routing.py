"""Per-host routing tables.

A route answers: to reach ``dst``, transmit on ``network`` addressed to
``next_hop`` (the destination itself for a direct route, or an intermediate
server acting as a DRS two-hop router).

Routes carry a :class:`RouteSource` tag so the protocols can reason about
ownership: DRS never evicts a static route permanently — it installs repair
routes on top and withdraws them once the direct path heals, exactly the
point-to-point route surgery the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.netsim.addresses import NetworkId, NodeId


class RouteSource(enum.Enum):
    """Who installed a route (controls preference and eviction rights)."""

    STATIC = "static"      #: boot-time default (direct on the primary network)
    DRS = "drs"            #: installed by the DRS failover engine
    DISTVECTOR = "dv"      #: learned from a RIP-like baseline
    LINKSTATE = "ls"       #: computed by the OSPF-like baseline's SPF
    REACTIVE = "reactive"  #: installed by the reactive baseline after a timeout


@dataclass(frozen=True, slots=True)
class Route:
    """One forwarding entry."""

    dst: NodeId
    network: NetworkId
    next_hop: NodeId
    source: RouteSource = RouteSource.STATIC
    metric: int = 1
    installed_at: float = 0.0

    @property
    def direct(self) -> bool:
        """True when the next hop is the destination itself."""
        return self.next_hop == self.dst

    def __str__(self) -> str:
        via = "direct" if self.direct else f"via {self.next_hop}"
        return f"{self.dst} -> net{self.network} {via} [{self.source.value} m={self.metric}]"


class RoutingTable:
    """Destination-keyed forwarding table with change notification.

    Exactly one active route per destination — the DRS design point: repair
    replaces the broken entry rather than accumulating alternatives, and the
    previous entry is remembered so withdrawal can restore it.
    """

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._routes: dict[NodeId, Route] = {}
        self._shadowed: dict[NodeId, Route] = {}
        self._listeners: list[Callable[[NodeId, Route | None], None]] = []
        self.change_count = 0

    # ------------------------------------------------------------------ read
    def lookup(self, dst: NodeId) -> Route | None:
        """The active route to ``dst``, or None if unreachable."""
        return self._routes.get(dst)

    def __iter__(self) -> Iterator[Route]:
        return iter(sorted(self._routes.values(), key=lambda r: r.dst))

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, dst: NodeId) -> bool:
        return dst in self._routes

    # ----------------------------------------------------------------- write
    def install(self, route: Route) -> None:
        """Set the active route for ``route.dst``, shadowing any prior entry.

        Installing a route for the owner itself is rejected: the cluster's
        loop-freedom argument starts from "no host routes to itself through
        the network".
        """
        if route.dst == self.owner:
            raise ValueError(f"node {self.owner} cannot install a route to itself")
        if route.next_hop == self.owner:
            raise ValueError(f"node {self.owner} cannot be its own next hop (routing loop)")
        prior = self._routes.get(route.dst)
        if prior is not None and prior.source is not route.source:
            self._shadowed[route.dst] = prior
        self._routes[route.dst] = route
        self._changed(route.dst, route)

    def withdraw(self, dst: NodeId, source: RouteSource) -> Route | None:
        """Remove the active route to ``dst`` if it was installed by ``source``.

        If an older route from a different source was shadowed, it becomes
        active again.  Returns the new active route (possibly None).
        """
        active = self._routes.get(dst)
        if active is None or active.source is not source:
            return active
        restored = self._shadowed.pop(dst, None)
        if restored is not None:
            self._routes[dst] = restored
        else:
            del self._routes[dst]
        self._changed(dst, restored)
        return restored

    def replace_network(self, dst: NodeId, network: NetworkId, source: RouteSource, now: float) -> Route:
        """Convenience: install a direct route to ``dst`` on ``network``."""
        route = Route(dst=dst, network=network, next_hop=dst, source=source, installed_at=now)
        self.install(route)
        return route

    # ------------------------------------------------------------- listeners
    def on_change(self, listener: Callable[[NodeId, Route | None], None]) -> None:
        """Register ``listener(dst, new_route_or_None)`` for future changes."""
        self._listeners.append(listener)

    def _changed(self, dst: NodeId, route: Route | None) -> None:
        self.change_count += 1
        for listener in self._listeners:
            listener(dst, route)

    # -------------------------------------------------------------- bulk init
    def install_defaults(self, peers: Iterator[NodeId] | list[NodeId], network: NetworkId = 0) -> None:
        """Boot-time static table: direct routes to every peer on one network."""
        for peer in peers:
            if peer == self.owner:
                continue
            self.install(Route(dst=peer, network=network, next_hop=peer, source=RouteSource.STATIC))

    def snapshot(self) -> dict[NodeId, Route]:
        """A copy of the active table (for assertions and diffing)."""
        return dict(self._routes)

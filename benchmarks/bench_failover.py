"""EXP-DES bench — proactive DRS vs reactive baselines on the live DES.

The paper's qualitative claim quantified: DRS repairs inside the TCP
retransmit window; reactive designs stall the application for their timeout
quantum; static routing never recovers.
"""

from repro.experiments.failover import run_one


def test_drs_failover_latency(once, capsys):
    outcome = once(run_one, "drs", "peer-nic", post_failure_s=30.0)
    with capsys.disabled():
        print(f"\nDRS: repair={outcome.repair_latency_s:.2f}s worst-app={outcome.worst_latency_s:.2f}s")
    assert outcome.recovered and outcome.delivered_fraction == 1.0
    # repaired within ~one sweep (1 s) + probe retries
    assert outcome.repair_latency_s < 1.5
    # application never stalled beyond a couple of TCP RTOs
    assert outcome.worst_latency_s < 4.0


def test_reactive_failover_latency(once, capsys):
    outcome = once(run_one, "reactive", "peer-nic", post_failure_s=30.0)
    with capsys.disabled():
        print(f"\nreactive: repair={outcome.repair_latency_s:.2f}s worst-app={outcome.worst_latency_s:.2f}s")
    assert outcome.recovered
    # reactive cannot beat its timeout quantum (9 s)
    assert outcome.repair_latency_s >= 9.0


def test_distvector_failover_latency(once):
    outcome = once(run_one, "distvector", "hub", post_failure_s=30.0)
    assert outcome.recovered
    assert outcome.repair_latency_s >= 6.0  # timeout - advertise jitter


def test_static_never_recovers(once):
    outcome = once(run_one, "static", "peer-nic", post_failure_s=30.0)
    assert not outcome.recovered
    assert outcome.delivered_fraction < 1.0


def test_drs_crossed_two_hop_failover(once):
    outcome = once(run_one, "drs", "crossed", post_failure_s=30.0)
    assert outcome.recovered and outcome.delivered_fraction == 1.0
    assert outcome.worst_latency_s < 6.0

"""``drs-analyze``: the survivability calculator as a command-line tool.

Subcommands wrap the analytic API for operators planning a cluster:

* ``pair N F`` — Equation 1 (optionally with a Monte Carlo check),
* ``allpairs N F`` — whole-cluster survivability,
* ``crossover F`` — smallest N with P[Success] above a threshold,
* ``plan`` — Figure-1 capacity planning (deadline/budget ⇄ cluster size),
* ``availability`` — downtime minutes per year from lifetimes + repair
  latency,
* ``darkpairs N F`` — expected disconnected pairs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import (
    allpairs_success_probability,
    crossover_n,
    expected_dark_pairs,
    max_nodes_within,
    mc_success_estimate,
    pair_availability,
    success_probability,
    sweep_time_s,
)


def _cmd_pair(args) -> int:
    p = success_probability(args.n, args.f)
    print(f"P[pair survives | N={args.n}, f={args.f}] = {p:.6f}   (Equation 1)")
    if args.mc_precision is not None:
        rng = np.random.default_rng(args.seed)
        est = mc_success_estimate(args.n, args.f, rng, target_half_width=args.mc_precision)
        print(
            f"Monte Carlo: {est.point:.6f} "
            f"[{est.low:.6f}, {est.high:.6f}] at {est.trials} trials "
            f"({est.confidence:.0%} Wilson)"
        )
    return 0


def _cmd_allpairs(args) -> int:
    p = allpairs_success_probability(args.n, args.f)
    pair = success_probability(args.n, args.f)
    print(f"P[whole cluster connected | N={args.n}, f={args.f}] = {p:.6f}")
    print(f"(pairwise Equation 1 for comparison: {pair:.6f})")
    return 0


def _cmd_crossover(args) -> int:
    n_star = crossover_n(args.f, threshold=args.threshold)
    print(f"P[Success] surpasses {args.threshold} at N = {n_star} for f = {args.f}")
    return 0


def _cmd_plan(args) -> int:
    if args.nodes is not None:
        t = float(sweep_time_s(args.nodes, args.budget, args.bandwidth))
        print(
            f"N={args.nodes} at {args.budget:.0%} of {args.bandwidth / 1e6:.0f} Mb/s: "
            f"full probe sweep every {t:.3f} s"
        )
    else:
        n = max_nodes_within(args.deadline, args.budget, args.bandwidth)
        print(
            f"deadline {args.deadline} s at {args.budget:.0%} of "
            f"{args.bandwidth / 1e6:.0f} Mb/s supports up to N = {n} servers"
        )
    return 0


def _cmd_availability(args) -> int:
    report = pair_availability(args.n, args.mtbf_hours, args.mttr_hours, args.repair_s)
    print(f"N={args.n}, MTBF={args.mtbf_hours} h, MTTR={args.mttr_hours} h, repair={args.repair_s} s")
    print(f"  structural availability: {report.structural_availability:.6f}")
    print(f"  combined availability:   {report.combined_availability:.6f} ({report.nines:.2f} nines)")
    print(f"  downtime:                {report.downtime_minutes_per_year:.1f} minutes/year")
    return 0


def _cmd_darkpairs(args) -> int:
    e = expected_dark_pairs(args.n, args.f)
    total = args.n * (args.n - 1) // 2
    print(f"E[disconnected pairs | N={args.n}, f={args.f}] = {e:.4f} of {total}")
    return 0


def _cmd_report(args) -> int:
    """One-page analytic summary for a cluster configuration."""
    from repro.analysis import allpairs_success_probability as ap
    from repro.viz import render_table

    n = args.n
    rows = []
    for f in (1, 2, 3, 4, 5):
        if f > 2 * n + 2:
            break
        rows.append([f, success_probability(n, f), ap(n, f), expected_dark_pairs(n, f)])
    print(render_table(
        ["f", "P[pair]", "P[whole cluster]", "E[dark pairs]"],
        rows,
        title=f"Survivability, N={n} (Equation 1 + extensions)",
    ))
    print()
    for budget in (0.05, 0.10, 0.15, 0.25):
        t = float(sweep_time_s(n, budget))
        print(f"  probe budget {budget:>4.0%}: full sweep every {t * 1e3:8.2f} ms")
    report = pair_availability(n, args.mtbf_hours, args.mttr_hours, args.repair_s)
    print(
        f"\navailability (MTBF {args.mtbf_hours:.0f} h, MTTR {args.mttr_hours:.0f} h, "
        f"repair {args.repair_s:.1f} s): {report.combined_availability:.6f} "
        f"({report.nines:.2f} nines, {report.downtime_minutes_per_year:.1f} min/yr downtime)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="drs-analyze", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pair", help="Equation 1 for one (N, f)")
    p.add_argument("n", type=int)
    p.add_argument("f", type=int)
    p.add_argument("--mc-precision", type=float, default=None, help="also run MC to this CI half-width")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_pair)

    p = sub.add_parser("allpairs", help="whole-cluster survivability")
    p.add_argument("n", type=int)
    p.add_argument("f", type=int)
    p.set_defaults(func=_cmd_allpairs)

    p = sub.add_parser("crossover", help="smallest N exceeding a threshold")
    p.add_argument("f", type=int)
    p.add_argument("--threshold", type=float, default=0.99)
    p.set_defaults(func=_cmd_crossover)

    p = sub.add_parser("plan", help="Figure-1 capacity planning")
    p.add_argument("--deadline", type=float, default=1.0, help="error-resolution deadline (s)")
    p.add_argument("--budget", type=float, required=True, help="probe bandwidth fraction, e.g. 0.10")
    p.add_argument("--bandwidth", type=float, default=100e6)
    p.add_argument("--nodes", type=int, default=None, help="report sweep time for this N instead")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("availability", help="downtime budget for one configuration")
    p.add_argument("n", type=int)
    p.add_argument("--mtbf-hours", type=float, default=8760.0)
    p.add_argument("--mttr-hours", type=float, default=24.0)
    p.add_argument("--repair-s", type=float, default=1.1)
    p.set_defaults(func=_cmd_availability)

    p = sub.add_parser("darkpairs", help="expected disconnected pairs")
    p.add_argument("n", type=int)
    p.add_argument("f", type=int)
    p.set_defaults(func=_cmd_darkpairs)

    p = sub.add_parser("report", help="one-page analytic summary for a cluster size")
    p.add_argument("n", type=int)
    p.add_argument("--mtbf-hours", type=float, default=8760.0)
    p.add_argument("--mttr-hours", type=float, default=24.0)
    p.add_argument("--repair-s", type=float, default=1.1)
    p.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Deprecation shims for the pre-registry measurement primitives.

``Counter`` and ``TimeWeightedValue`` remain fully supported at their home in
:mod:`repro.simkit.trace` — nothing breaks, no behavior changes.  Importing
them *through this module* marks a call site as knowingly legacy and emits a
:class:`DeprecationWarning` pointing at the migration target, so experiments
can be converted to :class:`~repro.obs.metrics.MetricsRegistry` one site at a
time while the warnings inventory what is left.
"""

from __future__ import annotations

import warnings

from repro.simkit import trace as _trace

_SHIMS = {
    "Counter": "MetricsRegistry.counter(name)",
    "TimeWeightedValue": "MetricsRegistry.gauge(name) plus registry histograms",
}


def __getattr__(name: str):
    if name in _SHIMS:
        warnings.warn(
            f"repro.obs.compat.{name} is a deprecation shim; migrate to "
            f"repro.obs.metrics.{_SHIMS[name]} (the class itself still lives in "
            "repro.simkit.trace and is unchanged)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_SHIMS))

"""Ablation bench — triggered updates (notify_peers) vs independent detection.

Measures cluster-wide convergence (every node re-routed around the victim)
with and without the LinkDownNotification extension.
"""

import dataclasses

from repro.drs import DrsConfig, install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

BASE = DrsConfig(sweep_period_s=1.0, probe_timeout_s=0.02, discovery_timeout_s=0.05)


def _cluster_convergence(config, n=8):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, config)
    sim.run(until=2 * config.sweep_period_s + 1.0)
    t0 = sim.now
    cluster.faults.fail("nic3.0")
    sim.run(until=t0 + 4 * config.sweep_period_s + 1.0)
    times = {}
    for e in cluster.trace.entries("drs-repair"):
        if e.time > t0 and e.fields["peer"] == 3 and e.fields["node"] != 3:
            times.setdefault(e.fields["node"], e.time)
    assert len(times) == n - 1, f"only {sorted(times)} repaired"
    return max(times.values()) - t0


def test_notify_accelerates_cluster_convergence(once, capsys):
    def both():
        base = _cluster_convergence(BASE)
        notify = _cluster_convergence(dataclasses.replace(BASE, notify_peers=True))
        return base, notify

    base, notify = once(both)
    with capsys.disabled():
        print(f"\ncluster-wide convergence: base={base:.2f}s notify={notify:.2f}s")
    assert notify < base
    # with notifications, stragglers collapse onto the first detector
    assert notify < base * 0.8

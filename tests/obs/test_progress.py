"""Heartbeat reporter: throttling, formatting, and the current-reporter hook."""

import io

import pytest

from repro.obs.progress import ProgressReporter, heartbeat, set_heartbeat


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _reporter(**kwargs):
    clock = FakeClock()
    stream = io.StringIO()
    defaults = dict(interval_s=5.0, stream=stream, clock=clock)
    defaults.update(kwargs)
    return ProgressReporter("sweep", **defaults), clock, stream


def test_add_is_interval_throttled():
    reporter, clock, stream = _reporter()
    reporter.add(100)
    clock.t = 4.9
    reporter.add(100)
    assert stream.getvalue() == ""  # inside the interval: silent
    clock.t = 5.0
    reporter.add(100)
    assert reporter.heartbeats == 1
    line = stream.getvalue()
    assert "[sweep] 300 trials" in line and "60 trials/s" in line


def test_eta_and_counts_formatting():
    reporter, clock, _ = _reporter(total=1000)
    reporter.add(250, faults=2, repairs=1)
    reporter.add(0, repairs=1)
    clock.t = 10.0
    line = reporter.emit()
    assert "250/1000 trials" in line
    assert "ETA 30s" in line  # 750 left at 25/s
    assert "incidents: faults=2 repairs=2" in line


def test_finish_emits_final_line_and_summary():
    reporter, clock, stream = _reporter()
    reporter.add(500)
    clock.t = 2.0
    summary = reporter.finish()
    assert "done in 2.0s" in stream.getvalue()
    assert summary["trials"] == 500
    assert summary["trials_per_second"] == pytest.approx(250.0)
    assert summary["heartbeats"] == 1
    assert summary["label"] == "sweep"


def test_zero_elapsed_reports_zero_rate():
    reporter, _, _ = _reporter()
    assert reporter.summary()["trials_per_second"] == 0.0
    assert "0 trials/s" in reporter.emit()


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        ProgressReporter("x", interval_s=0.0)


def test_current_heartbeat_install_and_clear():
    assert heartbeat() is None
    reporter, _, _ = _reporter()
    set_heartbeat(reporter)
    try:
        assert heartbeat() is reporter
    finally:
        set_heartbeat(None)
    assert heartbeat() is None


def test_montecarlo_batches_feed_the_heartbeat():
    import numpy as np

    from repro.analysis.montecarlo import simulate_success_probability

    reporter, _, _ = _reporter()
    set_heartbeat(reporter)
    try:
        simulate_success_probability(8, 2, 1000, np.random.default_rng(0), batch=250)
    finally:
        set_heartbeat(None)
    assert reporter.trials == 1000

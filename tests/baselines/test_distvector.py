"""Tests for the RIP-like distance-vector baseline."""

import pytest

from repro.baselines import DistVectorConfig, install_distvector
from repro.baselines.distvector import Advertisement, INFINITY_METRIC
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import RouteSource, install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import routed_ping_ok

FAST = DistVectorConfig(advertise_interval_s=0.5, timeout_s=1.5)


def _rig(n=4, config=FAST):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_distvector(cluster, stacks, config)
    sim.run(until=3.0)  # several advertisement rounds
    return sim, cluster, stacks, deployment


def test_config_validation():
    with pytest.raises(ValueError):
        DistVectorConfig(advertise_interval_s=0)
    with pytest.raises(ValueError):
        DistVectorConfig(advertise_interval_s=1.0, timeout_s=1.5)


def test_advertisement_size_accounting():
    advert = Advertisement(origin=0, entries=((0, 0), (1, 1)))
    assert advert.wire_data_bytes == 4 + 2 * 20


def test_converges_to_direct_metric1_routes():
    sim, cluster, stacks, deployment = _rig()
    for src in range(4):
        for dst in range(4):
            if src == dst:
                continue
            route = stacks[src].table.lookup(dst)
            assert route.source is RouteSource.DISTVECTOR
            assert route.metric == 1 and route.direct


def test_reachability_after_convergence():
    sim, cluster, stacks, deployment = _rig()
    assert routed_ping_ok(sim, stacks, 0, 3)


def test_hub_failure_reroutes_after_timeout():
    sim, cluster, stacks, deployment = _rig()
    t_fail = sim.now
    cluster.faults.fail("hub0")
    sim.run(until=t_fail + FAST.timeout_s + 2 * FAST.advertise_interval_s + 0.5)
    for src in range(4):
        for dst in range(4):
            if src != dst:
                route = stacks[src].table.lookup(dst)
                assert route.network == 1, (src, dst, str(route))
    assert routed_ping_ok(sim, stacks, 0, 2)


def test_detection_not_faster_than_timeout():
    sim, cluster, stacks, deployment = _rig()
    t_fail = sim.now
    cluster.faults.fail("nic1.0")
    sim.run(until=t_fail + 6.0)
    changes = [
        e
        for e in cluster.trace.entries("dv-route-change")
        if e.time > t_fail and e.fields["node"] == 0 and e.fields["dst"] == 1 and e.fields["network"] == 1
    ]
    assert changes, "route to node 1 never moved off the dead NIC's network"
    assert changes[0].time - t_fail >= FAST.timeout_s - FAST.advertise_interval_s


def test_triggered_updates_speed_up_convergence():
    slow = _rig(config=DistVectorConfig(advertise_interval_s=0.5, timeout_s=1.5, triggered_updates=False))
    fast = _rig(config=DistVectorConfig(advertise_interval_s=0.5, timeout_s=1.5, triggered_updates=True))

    def converge_time(rig):
        sim, cluster, stacks, deployment = rig
        changes = cluster.trace.entries("dv-route-change")
        return max(e.time for e in changes)

    # with triggered updates initial convergence completes no later
    assert converge_time(fast) <= converge_time(slow) + 1e-9


def test_stop_halts_advertising():
    sim, cluster, stacks, deployment = _rig()
    deployment.stop()
    sent = sum(r.adverts_sent.value for r in deployment.routers.values())
    sim.run(until=sim.now + 3.0)
    assert sum(r.adverts_sent.value for r in deployment.routers.values()) == sent


def test_infinity_metric_never_installed():
    sim, cluster, stacks, deployment = _rig()
    for router in deployment.routers.values():
        for dst, (metric, _, _) in router._best_routes().items():
            assert metric < INFINITY_METRIC

"""TAB-MOTIV bench — the 13% network-failure motivation statistic."""

import numpy as np

from repro.cluster import FailureLogConfig, generate_failure_log, network_fraction
from repro.experiments import motivation


def test_fleet_year_generation(benchmark):
    rng = np.random.default_rng(1999)
    config = FailureLogConfig(servers=100, duration_days=365.0 * 10)
    events = benchmark.pedantic(
        lambda: generate_failure_log(config, rng), rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(events) > 500
    assert abs(network_fraction(events) - 0.13) < 0.04


def test_motivation_report(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: motivation.run(fleet_years=20), rounds=1, iterations=1, warmup_rounds=0
    )
    with capsys.disabled():
        print()
        print(result.render())
    headline = result.tables["headline"].rows[0]
    assert abs(headline[1] - headline[2]) < 0.02  # measured vs paper 0.13

"""Experiment drivers: one module per paper artifact.

Each driver exposes ``run(...) -> ExperimentResult`` producing the same
rows/series the paper reports, and the CLI in :mod:`~repro.experiments.runner`
(`drs-experiments`) regenerates everything into CSV + text reports.

| id          | paper artifact                              | module          |
|-------------|---------------------------------------------|-----------------|
| figure1     | Fig. 1 response time vs N per budget        | ``figure1``     |
| figure2     | Fig. 2 P[Success] vs N, f=2..10             | ``figure2``     |
| figure3     | Fig. 3 MC convergence (MAD vs iterations)   | ``figure3``     |
| crossovers  | prose 0.99 crossovers (18/32/45)            | ``crossovers``  |
| motivation  | prose 13% network-failure share             | ``motivation``  |
| failover    | proactive vs reactive outage (DES)          | ``failover``    |
| desval      | DES survivability vs Equation 1             | ``desvalidation`` |
| ablations   | two-hop / dual-backplane / sweep period     | ``ablations``   |
| grayfailure | false positives under random frame loss    | ``grayfailure`` |
| wholecluster| pairwise vs all-pairs survivability         | ``wholecluster``|
| availability| downtime minutes/year planning               | ``availability``|
| scenarios   | every shipped drs-sim scenario, end to end  | ``scenariosuite``|
| scaling     | deployed-range size sweep + feasibility     | ``scaling``     |
| toposweep   | P[Success] grids per topology family        | ``topologysweep``|
"""

from repro.experiments.base import ExperimentResult
from repro.experiments import (
    ablations,
    availability,
    crossovers,
    desvalidation,
    failover,
    figure1,
    figure2,
    figure3,
    grayfailure,
    motivation,
    scaling,
    scenariosuite,
    topologysweep,
    wholecluster,
)

__all__ = [
    "ExperimentResult",
    "figure1",
    "figure2",
    "figure3",
    "crossovers",
    "motivation",
    "failover",
    "desvalidation",
    "ablations",
    "grayfailure",
    "wholecluster",
    "availability",
    "scenariosuite",
    "scaling",
    "topologysweep",
]

"""TCP-lite: a reliable, ordered message stream with retransmission.

This is the application-transport model the paper's headline claim is stated
against: *"the new route is often found in the time of a TCP retransmit, so
server applications are unaware that a network failure has occurred."*  The
failover benchmarks open a TCP-lite stream, inject a failure, and compare the
application-visible stall with and without DRS.

Implemented subset (documented simplifications):

* SYN / SYN-ACK connection establishment with retries; no simultaneous open.
* Message-oriented API: each :meth:`TcpConnection.send_message` is chunked
  into MSS-sized segments with per-segment sequence numbers, a sliding
  window, cumulative ACKs, and in-order reassembly on the receiver.
* Jacobson/Karels RTT estimation (SRTT + 4·RTTVAR) with Karn's rule and
  exponential backoff on retransmission; configurable floor/ceiling.
* FIN close handshake; abort after ``max_retries`` consecutive timeouts.
* No flow control beyond the fixed window and no congestion control — the
  cluster segments are short and the experiments never drive them into
  sustained congestion.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.netsim.addresses import NodeId
from repro.protocols.ip import NetworkLayer
from repro.protocols.packet import TCP_HEADER_BYTES, Packet
from repro.simkit import Counter, Simulator

MSS_BYTES = 1460  #: maximum data bytes per segment

#: the conservative RTO a fresh connection starts from (RFC 6298 lower bound
#: as deployed); this is the "time of a TCP retransmit" deadline the paper
#: measures failover against, and the default budget in post-mortem reports.
DEFAULT_INITIAL_RTO_S = 1.0


class TcpFlags(enum.Flag):
    """Segment flag bits (subset)."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()


@dataclass(slots=True)
class TcpSegment:
    """One TCP-lite segment."""

    src_port: int
    dst_port: int
    flags: TcpFlags
    seq: int
    ack: int
    msg_id: int = -1
    last_chunk: bool = False
    data: Any = None
    data_bytes: int = 0

    @property
    def size_bytes(self) -> int:
        """Header plus carried data size."""
        return TCP_HEADER_BYTES + self.data_bytes

    @property
    def carries_data(self) -> bool:
        """True for segments that occupy sequence space (data or FIN)."""
        return self.data_bytes > 0 or bool(self.flags & TcpFlags.FIN) or bool(self.flags & TcpFlags.SYN)


class TcpState(enum.Enum):
    """Connection lifecycle states (subset of RFC 793)."""

    SYN_SENT = "syn-sent"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"
    CLOSED = "closed"
    FAILED = "failed"


_msg_ids = itertools.count(1)


@dataclass
class _TxRecord:
    segment: TcpSegment
    first_sent_at: float
    retransmitted: bool = False


class TcpConnection:
    """One endpoint of a TCP-lite stream.

    Created via :meth:`TcpStack.connect` (active) or handed to the listener's
    ``on_connect`` callback (passive).  Application callbacks:

    * ``on_message(conn, data, data_bytes)`` — a complete message arrived,
    * ``on_established(conn)`` — handshake finished (active side),
    * ``on_close(conn, reason)`` — orderly close or failure (reason
      ``"fin"``, ``"aborted"``, or ``"max-retries"``).
    """

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_node: NodeId,
        remote_port: int,
        active: bool,
        window_segments: int = 8,
        initial_rto_s: float = DEFAULT_INITIAL_RTO_S,
        min_rto_s: float = 0.2,
        max_rto_s: float = 60.0,
        max_retries: int = 8,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_port = local_port
        self.remote_node = remote_node
        self.remote_port = remote_port
        self.window_segments = window_segments
        self.max_retries = max_retries

        self.state = TcpState.SYN_SENT if active else TcpState.ESTABLISHED
        self.on_message: Callable[["TcpConnection", Any, int], None] | None = None
        self.on_established: Callable[["TcpConnection"], None] | None = None
        self.on_close: Callable[["TcpConnection", str], None] | None = None

        # --- transmit side
        self._next_seq = 1          # seq 0 is the SYN
        self._send_base = 0 if active else 1
        self._queue: list[TcpSegment] = []
        self._inflight: dict[int, _TxRecord] = {}
        self._retx_timer = None
        self._consecutive_timeouts = 0

        # --- RTO state (Jacobson/Karels)
        self._srtt: float | None = None
        self._rttvar: float | None = None
        self._initial_rto = initial_rto_s
        self._min_rto = min_rto_s
        self._max_rto = max_rto_s
        self._rto = initial_rto_s
        self._backoff = 1.0

        # --- receive side
        self._rcv_next = 1
        self._ooo: dict[int, TcpSegment] = {}
        self._partial: dict[int, list[tuple[Any, int]]] = {}

        # --- fast retransmit (RFC 2581 subset)
        self._dup_acks = 0

        # --- measurement
        self.retransmissions = Counter("tcp.retx")
        self.fast_retransmits = Counter("tcp.fast_retx")
        self.messages_sent = 0
        self.messages_delivered = 0
        self._msg_enqueued_at: dict[int, float] = {}
        self._msg_last_seq: dict[int, int] = {}
        self.message_latencies: dict[int, float] = {}

        if active:
            syn = TcpSegment(local_port, remote_port, TcpFlags.SYN, seq=0, ack=0)
            self._transmit_new(syn)

    # ------------------------------------------------------------------- API
    @property
    def established(self) -> bool:
        """True once the handshake completed and the stream is open."""
        return self.state is TcpState.ESTABLISHED

    @property
    def rto_s(self) -> float:
        """Current retransmission timeout including backoff."""
        return min(self._max_rto, max(self._min_rto, self._rto * self._backoff))

    def send_message(self, data: Any = None, data_bytes: int = 0) -> int:
        """Queue a message for reliable in-order delivery; returns its id.

        The completion latency (enqueue to cumulative ACK of the last chunk)
        lands in :attr:`message_latencies` — the application-visible delivery
        time the failover experiments report.
        """
        if self.state in (TcpState.CLOSED, TcpState.FAILED, TcpState.FIN_SENT):
            raise RuntimeError(f"cannot send on a {self.state.value} connection")
        if data_bytes < 0:
            raise ValueError("data_bytes must be >= 0")
        msg_id = next(_msg_ids)
        self.messages_sent += 1
        self._msg_enqueued_at[msg_id] = self.sim.now
        remaining = data_bytes
        first = True
        while first or remaining > 0:
            chunk = min(MSS_BYTES, remaining) if remaining > 0 else 0
            remaining -= chunk
            last = remaining <= 0
            seg = TcpSegment(
                self.local_port,
                self.remote_port,
                TcpFlags.ACK,
                seq=self._next_seq,
                ack=self._rcv_next,
                msg_id=msg_id,
                last_chunk=last,
                data=data if last else None,
                data_bytes=max(chunk, 1),  # zero-byte messages still occupy seq space
            )
            self._next_seq += 1
            if last:
                self._msg_last_seq[msg_id] = seg.seq
            self._queue.append(seg)
            first = False
        self._pump()
        return msg_id

    def close(self) -> None:
        """Begin an orderly close (FIN after all queued data)."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.SYN_SENT):
            return
        fin = TcpSegment(
            self.local_port, self.remote_port, TcpFlags.FIN | TcpFlags.ACK,
            seq=self._next_seq, ack=self._rcv_next, data_bytes=1,
        )
        self._next_seq += 1
        self._queue.append(fin)
        self.state = TcpState.FIN_SENT
        self._pump()

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately."""
        if self.state in (TcpState.CLOSED, TcpState.FAILED):
            return
        self.state = TcpState.FAILED if reason == "max-retries" else TcpState.CLOSED
        self._cancel_timer()
        self._queue.clear()
        self._inflight.clear()
        self.stack._forget(self)
        if self.on_close is not None:
            self.on_close(self, reason)

    # ------------------------------------------------------------- tx engine
    def _pump(self) -> None:
        if self.state is TcpState.SYN_SENT:
            return  # data waits for the handshake
        while self._queue and len(self._inflight) < self.window_segments:
            self._transmit_new(self._queue.pop(0))

    def _transmit_new(self, seg: TcpSegment) -> None:
        self._inflight[seg.seq] = _TxRecord(segment=seg, first_sent_at=self.sim.now)
        self._emit(seg)
        self._arm_timer()

    def _emit(self, seg: TcpSegment) -> None:
        seg.ack = self._rcv_next
        self.stack.net.send(self.remote_node, TcpStack.PROTOCOL, seg)

    def _arm_timer(self) -> None:
        if self._retx_timer is not None or not self._inflight:
            return
        self._retx_timer = self.sim.schedule(self.rto_s, self._on_rto)

    def _cancel_timer(self) -> None:
        if self._retx_timer is not None:
            self.sim.cancel(self._retx_timer)
            self._retx_timer = None

    def _on_rto(self) -> None:
        self._retx_timer = None
        if not self._inflight:
            return
        self._consecutive_timeouts += 1
        if self._consecutive_timeouts > self.max_retries:
            self.abort("max-retries")
            return
        oldest = min(self._inflight)
        record = self._inflight[oldest]
        # Karn's rule must cover the whole outstanding window: segments
        # parked behind the hole are not re-emitted, but the time until
        # their eventual cumulative ACK includes this stall and would
        # poison the RTT estimate (observed: SRTT inflated to the RTO
        # ceiling under heavy loss).
        for rec in self._inflight.values():
            rec.retransmitted = True
        self.retransmissions.add()
        self._backoff = min(self._backoff * 2.0, self._max_rto / max(self._rto, 1e-9))
        self._emit(record.segment)
        self._arm_timer()

    def _on_ack(self, ack: int) -> None:
        advanced = False
        for seq in sorted(self._inflight):
            if seq < ack:
                record = self._inflight.pop(seq)
                advanced = True
                if not record.retransmitted:  # Karn's rule
                    self._update_rtt(self.sim.now - record.first_sent_at)
                self._complete_segment(record.segment)
        if advanced:
            self._send_base = ack
            self._consecutive_timeouts = 0
            self._dup_acks = 0
            self._backoff = 1.0
            self._cancel_timer()
            self._arm_timer()
            self._pump()
        elif self._inflight and ack == self._send_base:
            # Duplicate ACK: the receiver has a hole.  Three in a row mean a
            # lost segment rather than reordering -> fast retransmit the
            # oldest unacked segment without waiting for the RTO.
            self._dup_acks += 1
            if self._dup_acks == 3:
                record = self._inflight[min(self._inflight)]
                record.retransmitted = True
                self.fast_retransmits.add()
                self.retransmissions.add()
                self._emit(record.segment)

    def _complete_segment(self, seg: TcpSegment) -> None:
        if seg.flags & TcpFlags.SYN:
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established(self)
            self._pump()
            return
        if seg.msg_id >= 0 and self._msg_last_seq.get(seg.msg_id) == seg.seq:
            enqueued = self._msg_enqueued_at.pop(seg.msg_id, None)
            if enqueued is not None:
                self.message_latencies[seg.msg_id] = self.sim.now - enqueued
            del self._msg_last_seq[seg.msg_id]
        if seg.flags & TcpFlags.FIN and self.state is TcpState.FIN_SENT:
            self.state = TcpState.CLOSED
            self.stack._forget(self)
            if self.on_close is not None:
                self.on_close(self, "fin")

    def _update_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = max(self._min_rto, self._srtt + 4.0 * self._rttvar)

    # ------------------------------------------------------------- rx engine
    def _on_segment(self, seg: TcpSegment) -> None:
        if seg.flags & TcpFlags.ACK:
            self._on_ack(seg.ack)
        if seg.flags & TcpFlags.SYN:
            # Retransmitted SYN: our SYN-ACK was lost; acknowledge it again
            # or the client retries until it aborts the handshake.
            self._send_pure_ack()
            return
        if not seg.carries_data:
            return
        if seg.seq < self._rcv_next:
            self._send_pure_ack()  # duplicate: re-ack so the sender advances
            return
        self._ooo[seg.seq] = seg
        while self._rcv_next in self._ooo:
            ready = self._ooo.pop(self._rcv_next)
            self._rcv_next += 1
            self._consume(ready)
        self._send_pure_ack()

    def _consume(self, seg: TcpSegment) -> None:
        if seg.flags & TcpFlags.FIN:
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.CLOSED
                self.stack._forget(self)
                if self.on_close is not None:
                    self.on_close(self, "fin")
            return
        chunks = self._partial.setdefault(seg.msg_id, [])
        chunks.append((seg.data, seg.data_bytes))
        if seg.last_chunk:
            del self._partial[seg.msg_id]
            total = sum(b for _, b in chunks)
            data = chunks[-1][0]
            self.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(self, data, total)

    def _send_pure_ack(self) -> None:
        ack = TcpSegment(self.local_port, self.remote_port, TcpFlags.ACK, seq=0, ack=self._rcv_next)
        self.stack.net.send(self.remote_node, TcpStack.PROTOCOL, ack)


@dataclass
class _Listener:
    on_connect: Callable[[TcpConnection], None] | None = None
    on_message: Callable[[TcpConnection, Any, int], None] | None = None
    connections: list[TcpConnection] = field(default_factory=list)


class TcpStack:
    """Per-host TCP-lite endpoint table."""

    PROTOCOL = "tcp"

    def __init__(self, sim: Simulator, net: NetworkLayer) -> None:
        self.sim = sim
        self.net = net
        self._listeners: dict[int, _Listener] = {}
        self._conns: dict[tuple[int, NodeId, int], TcpConnection] = {}
        self._ephemeral = itertools.count(49152)
        net.register_protocol(self.PROTOCOL, self._on_packet)

    def listen(
        self,
        port: int,
        on_message: Callable[[TcpConnection, Any, int], None] | None = None,
        on_connect: Callable[[TcpConnection], None] | None = None,
    ) -> _Listener:
        """Accept connections on ``port``; wires callbacks onto each one."""
        if port in self._listeners:
            raise ValueError(f"node {self.net.node.node_id}: TCP port {port} already listening")
        listener = _Listener(on_connect=on_connect, on_message=on_message)
        self._listeners[port] = listener
        return listener

    def connect(self, dst_node: NodeId, dst_port: int, **conn_kwargs: Any) -> TcpConnection:
        """Open a connection; data may be queued before it is established."""
        local_port = next(self._ephemeral)
        conn = TcpConnection(self, local_port, dst_node, dst_port, active=True, **conn_kwargs)
        self._conns[(local_port, dst_node, dst_port)] = conn
        return conn

    # -------------------------------------------------------------- plumbing
    def _forget(self, conn: TcpConnection) -> None:
        self._conns.pop((conn.local_port, conn.remote_node, conn.remote_port), None)

    def _on_packet(self, packet: Packet, arrived_on: int) -> None:
        seg: TcpSegment = packet.payload
        key = (seg.dst_port, packet.src_node, seg.src_port)
        conn = self._conns.get(key)
        if conn is None and seg.flags & TcpFlags.SYN:
            listener = self._listeners.get(seg.dst_port)
            if listener is None:
                return  # no RST modelling; the client's SYN retries then abort
            conn = TcpConnection(self, seg.dst_port, packet.src_node, seg.src_port, active=False)
            conn.on_message = listener.on_message
            self._conns[key] = conn
            listener.connections.append(conn)
            if listener.on_connect is not None:
                listener.on_connect(conn)
            conn._send_pure_ack()  # SYN-ACK equivalent: acks seq 0
            return
        if conn is None:
            return  # stray segment for a closed connection
        conn._on_segment(seg)

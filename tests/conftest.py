"""Global test configuration."""

from hypothesis import HealthCheck, settings

# Simulation-backed properties have per-example costs that vary with the
# drawn parameters; wall-clock deadlines would make them flaky on loaded
# machines, so correctness is bounded by example counts instead.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

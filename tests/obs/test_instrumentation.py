"""Integration: model components publish into a scoped registry during a run."""

from repro.obs import MetricsRegistry, ensure_core_metrics
from repro.scenario import ScenarioSpec, run_scenario
from repro.viz import metrics_summary_table


def _spec(**overrides):
    raw = {
        "name": "instr-test",
        "nodes": 4,
        "duration_s": 6.0,
        "protocol": {"kind": "drs", "sweep_period_s": 0.2, "probe_timeout_s": 0.01},
        "faults": [{"at": 2.0, "fail": "nic1.0"}],
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


def test_scenario_populates_probe_and_failover_metrics():
    reg = ensure_core_metrics(MetricsRegistry())
    report = run_scenario(_spec(), metrics=reg)
    assert report.routing_repairs >= 1
    rtt = reg.histogram("drs_probe_rtt_seconds")
    assert rtt.count > 0
    assert 0 < rtt.mean() < 1.0
    assert reg.counter("drs_probes_sent_total").value > 0
    assert reg.counter("drs_repairs_total").value >= 1
    assert reg.histogram("drs_failover_latency_seconds").count >= 1
    assert reg.counter("net_frames_sent_total").value > 0
    assert reg.counter("net_bits_carried_total").value > 0
    assert reg.histogram("net_queue_depth_seconds").count > 0


def test_scoped_registries_do_not_bleed_between_runs():
    first = ensure_core_metrics(MetricsRegistry())
    second = ensure_core_metrics(MetricsRegistry())
    run_scenario(_spec(), metrics=first)
    probes_after_first = first.counter("drs_probes_sent_total").value
    run_scenario(_spec(), metrics=second)
    assert first.counter("drs_probes_sent_total").value == probes_after_first
    assert second.counter("drs_probes_sent_total").value > 0


def test_registry_metrics_agree_with_legacy_counters():
    reg = ensure_core_metrics(MetricsRegistry())
    report = run_scenario(_spec(), metrics=reg)
    # the registry aggregate equals the sum of the legacy per-object counters
    assert reg.counter("drs_repairs_total").value == report.routing_repairs


def test_metrics_summary_table_renders_snapshot():
    reg = ensure_core_metrics(MetricsRegistry())
    reg.counter("drs_probes_sent_total").add(5)
    reg.histogram("drs_probe_rtt_seconds").observe(2e-5)
    text = metrics_summary_table(reg.snapshot())
    assert "drs_probes_sent_total" in text
    assert "drs_probe_rtt_seconds" in text
    assert "p99" in text

"""Performance bench — throughput of the vectorized Monte Carlo hot path.

Not a paper artifact: guards the optimization the HPC guides call for (the
estimator must stay vectorized; a Python-loop regression would show up here
as an order-of-magnitude slowdown).
"""

import numpy as np

from repro.analysis import sample_failure_matrix, simulate_success_probability
from repro.analysis.montecarlo import pair_connected_vec


def test_sampling_throughput(benchmark):
    rng = np.random.default_rng(0)
    failed = benchmark(lambda: sample_failure_matrix(63, 10, 50_000, rng))
    assert failed.shape == (50_000, 128)


def test_predicate_throughput(benchmark):
    rng = np.random.default_rng(1)
    failed = sample_failure_matrix(63, 10, 100_000, rng)
    ok = benchmark(lambda: pair_connected_vec(failed))
    assert ok.shape == (100_000,)


def test_end_to_end_estimate_throughput(benchmark):
    rng = np.random.default_rng(2)
    estimate = benchmark.pedantic(
        lambda: simulate_success_probability(63, 5, 500_000, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0.97 < estimate <= 1.0


def test_des_event_throughput(benchmark):
    """DES kernel throughput: a probe-heavy DRS cluster second."""
    from repro.drs import DrsConfig, install_drs
    from repro.netsim import build_dual_backplane_cluster
    from repro.protocols import install_stacks
    from repro.simkit import Simulator

    def one_second():
        sim = Simulator()
        cluster = build_dual_backplane_cluster(sim, 10)
        cluster.trace.enabled = False
        stacks = install_stacks(cluster)
        install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.1, probe_timeout_s=0.01))
        sim.run(until=1.0)
        return cluster

    cluster = benchmark.pedantic(one_second, rounds=1, iterations=1, warmup_rounds=0)
    # 10 nodes * 18 links / 0.1s sweep = 1800 probes per simulated second
    assert sum(bp.frames_carried.value for bp in cluster.backplanes) > 3000

"""Event objects and the pending-event priority queue.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees stable FIFO ordering among events that
share a timestamp and priority, which is what makes whole-simulation runs
reproducible bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-breaker among same-time events; lower fires first.  Protocol
        code uses the default (0); infrastructure (e.g. fault injection)
        may use negative priorities to act "before" the protocols in a tick.
    seq:
        Queue-assigned sequence number; guarantees FIFO among full ties.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Lazy-deletion flag; cancelled events stay in the heap but are
        skipped when popped.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy deletion."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Insert a callback at absolute time ``time`` and return its handle."""
        ev = Event(time=time, priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                self._live -= 1
                return ev
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

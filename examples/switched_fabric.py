#!/usr/bin/env python
"""Hubs vs switches: what changes when the 1999 hardware is replaced.

Runs the same DRS cluster on the paper's shared-medium hubs and on a
modern switched fabric, and measures the two things that matter:

1. failover behaviour — identical (a switch is still one shared component,
   so Equation 1 and the DRS protocol are unchanged);
2. capacity — parallel flows share one pipe on a hub but scale with ports
   on a switch, relaxing the Figure-1 probe-budget constraint.

Run:  python examples/switched_fabric.py
"""

from repro import DrsConfig, Simulator, install_drs, install_stacks
from repro.netsim import build_dual_backplane_cluster, build_dual_switched_cluster
from repro.simkit import Process
from repro.viz import render_table


def measure(build, label):
    sim = Simulator()
    cluster = build(sim, 6)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.25))
    sim.run(until=1.0)

    # three disjoint bulk flows
    delivered = []
    for i in range(3):
        src, dst = 2 * i, 2 * i + 1
        stacks[dst].tcp.listen(9000, on_message=lambda c, d, s: delivered.append(s))
        conn = stacks[src].tcp.connect(dst, 9000, window_segments=64)

        def pump(conn=conn):
            while True:
                conn.send_message(data_bytes=100_000)
                yield 0.01

        Process(sim, pump(), name=f"flow{i}")
    sim.run(until=2.0)
    goodput_mb = sum(delivered) / 1e6

    # then a failure, measured the same way on both fabrics
    t0 = sim.now
    cluster.faults.fail("nic1.0")
    sim.run(until=t0 + 1.0)
    repairs = [
        e for e in cluster.trace.entries("drs-repair")
        if e.time > t0 and e.fields["node"] == 0 and e.fields["peer"] == 1
    ]
    repair_s = repairs[0].time - t0 if repairs else float("nan")
    return [label, f"{goodput_mb:.1f}", f"{repair_s:.2f}"]


def main() -> None:
    rows = [
        measure(build_dual_backplane_cluster, "hub (paper, shared medium)"),
        measure(build_dual_switched_cluster, "switch (per-port links)"),
    ]
    print(render_table(
        ["fabric", "3-flow goodput in 1 s (MB)", "DRS repair after NIC failure (s)"],
        rows,
        title="Same cluster, same protocol, two fabrics",
    ))
    print("\nthe protocol and its survivability math carry over unchanged; only the "
          "bandwidth economics of Figure 1 improve.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: watch DRS hide a NIC failure from a server application.

Builds the paper's topology (dual-NIC servers on two hubs), starts DRS
daemons, streams TCP messages between two servers, kills a NIC mid-stream,
and prints what the application saw — nothing, because DRS rerouted within
one probe sweep.

Run:  python examples/quickstart.py
"""

from repro import DrsConfig, Simulator, build_dual_backplane_cluster, install_drs, install_stacks
from repro.simkit import Process


def main() -> None:
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n=8)      # one deployed-size cluster
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.5))

    # A server application: node 0 streams messages to node 1 over TCP-lite.
    delivered = []
    stacks[1].tcp.listen(9000, on_message=lambda conn, data, size: delivered.append((sim.now, data)))
    conn = stacks[0].tcp.connect(1, 9000)

    def app():
        seq = 0
        while True:
            conn.send_message(data=f"msg-{seq}", data_bytes=256)
            seq += 1
            yield 0.2

    Process(sim, app(), name="app")

    print("t=0.0   cluster up, DRS monitoring every link on both networks")
    sim.run(until=3.0)
    print(f"t=3.0   route 0->1: {stacks[0].table.lookup(1)}")

    cluster.faults.fail("nic1.0")
    print("t=3.0   FAILURE injected: node 1's NIC on network 0 died")
    sim.run(until=6.0)
    print(f"t=6.0   route 0->1: {stacks[0].table.lookup(1)}   (DRS swapped networks)")

    repair = cluster.trace.last("drs-repair")
    print(f"        repair took {repair.fields['repair_latency'] * 1e3:.1f} ms after detection")

    sim.run(until=10.0)
    stalls = [latency for latency in conn.message_latencies.values() if latency > 1.0]
    print(f"t=10.0  app delivered {len(delivered)} messages, "
          f"{len(stalls)} stalled beyond 1 s, "
          f"{conn.retransmissions.value:.0f} TCP retransmissions")
    print("        the failure was repaired inside the TCP retransmit window -- "
          "the application never noticed.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The deployment scenario: an MCI-style voice-mail cluster under failures.

Runs the voice-mail workload (subscriber mailboxes sharded across servers,
deposits/retrievals requiring server-to-server transfers) on a 10-server
dual-backplane cluster, twice: once with DRS and once with static routing,
while the same sequence of hardware failures strikes.  Compares how many
operations the application saw stall.

Run:  python examples/voicemail_cluster.py
"""

import numpy as np

from repro import DrsConfig, Simulator, build_dual_backplane_cluster, install_drs, install_stacks
from repro.baselines import install_static_only
from repro.cluster import VoicemailCluster, VoicemailConfig, install_messaging
from repro.netsim import FaultScenario
from repro.viz import render_table

#: The same failure script for both runs: a NIC dies, heals, then a hub dies.
FAILURES = (
    FaultScenario()
    .fail(10.0, "nic2.0")
    .repair(25.0, "nic2.0")
    .fail(40.0, "hub0")
    .repair(55.0, "hub0")
)


def run_once(protect_with_drs: bool, seed: int = 11) -> dict:
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n=10)
    stacks = install_stacks(cluster)
    if protect_with_drs:
        install_drs(cluster, stacks, DrsConfig(sweep_period_s=0.5))
    else:
        install_static_only(cluster, stacks)
    comm = install_messaging(sim, stacks)
    workload = VoicemailCluster(
        sim,
        comm,
        VoicemailConfig(call_rate_per_s=10.0, message_bytes=24_000, stall_threshold_s=1.0),
        rng=np.random.default_rng(seed),
    )
    scenario = FaultScenario(events=list(FAILURES.events))
    cluster.faults.schedule(scenario)
    workload.start()
    sim.run(until=70.0)
    workload.stop()
    sim.run(until=90.0)  # drain in-flight transfers
    workload.collect_completions()
    stats = workload.stats
    return {
        "regime": "DRS" if protect_with_drs else "static",
        "operations": stats.operations,
        "transfers": stats.transfers,
        "completed": stats.completed,
        "completion": stats.completion_rate(),
        "mean latency (s)": stats.mean_latency(),
        "p99 latency (s)": stats.p99_latency(),
        "stalled > 1s": stats.stalled,
    }


def main() -> None:
    results = [run_once(protect_with_drs=True), run_once(protect_with_drs=False)]
    headers = list(results[0])
    print(render_table(headers, [[r[h] for h in headers] for r in results],
                       title="Voice-mail cluster through a NIC failure and a hub failure"))
    drs, static = results
    print(f"\nDRS kept {drs['completion']:.1%} of transfers flowing with "
          f"{drs['stalled > 1s']} visible stalls; static routing stalled "
          f"{static['stalled > 1s']} operations and completed {static['completion']:.1%}.")


if __name__ == "__main__":
    main()

"""Tests for random frame loss and degraded-NIC gray failures."""

import numpy as np
import pytest

from repro.netsim import Backplane, Frame, InterfaceAddr, Nic, build_dual_backplane_cluster
from repro.simkit import Simulator


class _Payload:
    size_bytes = 28


def _lossy_rig(loss_rate, seed=0, n_frames=2000):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    bp = Backplane(sim, 0, loss_rate=loss_rate, rng=rng)
    a = Nic(InterfaceAddr(0, 0), bp)
    b = Nic(InterfaceAddr(1, 0), bp)
    received = []
    b.set_receiver(lambda f, nic: received.append(f))
    for _ in range(n_frames):
        a.send(Frame(a.addr, b.addr, "t", _Payload()))
    sim.run()
    return received, bp


def test_zero_loss_delivers_everything():
    received, bp = _lossy_rig(0.0)
    assert len(received) == 2000
    assert bp.frames_dropped.value == 0


def test_loss_rate_statistics():
    received, bp = _lossy_rig(0.2)
    delivered_fraction = len(received) / 2000
    assert delivered_fraction == pytest.approx(0.8, abs=0.03)
    assert bp.frames_dropped.value == 2000 - len(received)


def test_loss_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Backplane(sim, 0, loss_rate=1.0, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        Backplane(sim, 0, loss_rate=-0.1, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        Backplane(sim, 0, loss_rate=0.1)  # rng required


def test_set_loss_rate_at_runtime():
    sim = Simulator()
    bp = Backplane(sim, 0)
    with pytest.raises(ValueError):
        bp.set_loss_rate(0.5)  # no rng yet
    bp.set_loss_rate(0.5, rng=np.random.default_rng(1))
    assert bp.loss_rate == 0.5
    bp.set_loss_rate(0.0)
    assert bp.loss_rate == 0.0
    with pytest.raises(ValueError):
        bp.set_loss_rate(2.0, rng=np.random.default_rng(1))


def test_degraded_nic_drops_statistically():
    sim = Simulator()
    bp = Backplane(sim, 0)
    a = Nic(InterfaceAddr(0, 0), bp)
    b = Nic(InterfaceAddr(1, 0), bp)
    b.set_degraded(0.3, rng=np.random.default_rng(2))
    received = []
    b.set_receiver(lambda f, nic: received.append(f))
    for _ in range(2000):
        a.send(Frame(a.addr, b.addr, "t", _Payload()))
    sim.run()
    assert len(received) / 2000 == pytest.approx(0.7, abs=0.04)
    assert b.up  # degraded, not failed


def test_degraded_tx_still_reports_success():
    sim = Simulator()
    bp = Backplane(sim, 0)
    a = Nic(InterfaceAddr(0, 0), bp)
    Nic(InterfaceAddr(1, 0), bp)
    a.set_degraded(0.999, rng=np.random.default_rng(3))
    # the driver cannot tell: send still returns True
    assert a.send(Frame(a.addr, InterfaceAddr(1, 0), "t", _Payload())) is True


def test_degraded_validation_and_recovery():
    sim = Simulator()
    bp = Backplane(sim, 0)
    nic = Nic(InterfaceAddr(0, 0), bp)
    with pytest.raises(ValueError):
        nic.set_degraded(0.5)  # rng required
    with pytest.raises(ValueError):
        nic.set_degraded(1.5, rng=np.random.default_rng(0))
    nic.set_degraded(0.5, rng=np.random.default_rng(0))
    nic.set_degraded(0.0)  # healthy again
    assert nic.degraded_drop_rate == 0.0


def test_one_way_tx_degradation():
    sim = Simulator()
    bp = Backplane(sim, 0)
    a = Nic(InterfaceAddr(0, 0), bp)
    b = Nic(InterfaceAddr(1, 0), bp)
    a.set_degraded(0.995, rng=np.random.default_rng(5), direction="tx")
    got_at_b, got_at_a = [], []
    b.set_receiver(lambda f, nic: got_at_b.append(f))
    a.set_receiver(lambda f, nic: got_at_a.append(f))
    for _ in range(200):
        a.send(Frame(a.addr, b.addr, "t", _Payload()))
        b.send(Frame(b.addr, a.addr, "t", _Payload()))
    sim.run()
    # a's transmissions die; a's receptions are fine (rx path untouched)
    assert len(got_at_b) < 10
    assert len(got_at_a) == 200


def test_one_way_rx_degradation():
    sim = Simulator()
    bp = Backplane(sim, 0)
    a = Nic(InterfaceAddr(0, 0), bp)
    b = Nic(InterfaceAddr(1, 0), bp)
    a.set_degraded(0.995, rng=np.random.default_rng(6), direction="rx")
    got_at_b, got_at_a = [], []
    b.set_receiver(lambda f, nic: got_at_b.append(f))
    a.set_receiver(lambda f, nic: got_at_a.append(f))
    for _ in range(200):
        a.send(Frame(a.addr, b.addr, "t", _Payload()))
        b.send(Frame(b.addr, a.addr, "t", _Payload()))
    sim.run()
    assert len(got_at_b) == 200   # tx path untouched
    assert len(got_at_a) < 10     # receptions rot


def test_degraded_direction_validation():
    sim = Simulator()
    bp = Backplane(sim, 0)
    nic = Nic(InterfaceAddr(0, 0), bp)
    with pytest.raises(ValueError):
        nic.set_degraded(0.5, rng=np.random.default_rng(0), direction="sideways")


def test_drs_detects_one_way_gray_failure():
    """The bidirectional echo catches a NIC that only rots one direction."""
    from repro.drs import install_drs
    from repro.netsim import build_dual_backplane_cluster
    from repro.protocols import install_stacks
    from tests.drs.conftest import FAST

    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    # node 1's net-0 card stops receiving but still transmits
    cluster.nodes[1].nics[0].set_degraded(0.999, rng=np.random.default_rng(9), direction="rx")
    sim.run(until=sim.now + 2.0)
    # peers' echoes go unanswered -> link declared down -> rerouted
    route = stacks[0].table.lookup(1)
    assert route.network == 1


def test_cluster_builder_accepts_loss():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3, loss_rate=0.1, rng=np.random.default_rng(0))
    assert all(bp.loss_rate == 0.1 for bp in cluster.backplanes)

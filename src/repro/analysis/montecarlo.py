"""Vectorized Monte Carlo estimator of pair survivability.

This is the paper's validation simulation ("we have developed a computer
simulation of a networking system with N nodes and f failures implementing
the DRS algorithm") and the hot path of the reproduction, so it is fully
vectorized: one NumPy batch evaluates every iteration's failure set and the
DRS reachability predicate without Python-level loops over iterations.

Two estimator shapes ship:

* :func:`simulate_success_probability` — one (N, f) point per call, sampling
  a fresh failure matrix (:func:`sample_failure_matrix`).
* :func:`simulate_grid` — the sweep kernel: one sampling pass per (N, batch)
  serves the *entire* f-grid via common random numbers.  Each row's i.i.d.
  uniform keys are ranked once (:func:`failure_rank_matrix`); the level-``f``
  failure set is ``rank < f``, so the sets are nested in ``f`` and the whole
  family of estimates falls out of one reduction to per-row breakdown
  thresholds (:func:`connectivity_levels`).  See docs/model.md §9.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.obs.flightrecorder import flight_recorder
from repro.obs.precision import CellPrecision, publish_cell_precision
from repro.obs.profiler import publish_mc_throughput
from repro.obs.progress import heartbeat
from repro.simkit.rng import spawn_seedseq

#: hard trial ceiling per (N, f-grid) row in adaptive-stopping mode, matching
#: :func:`repro.analysis.stats.estimate_to_precision`'s default budget
DEFAULT_MAX_ADAPTIVE_TRIALS = 5_000_000


def _resolve_rng(
    rng: np.random.Generator | None, seed: int | None, *names: str
) -> np.random.Generator:
    """An explicit generator, or an independent stream spawned from ``seed``.

    Seed-based callers get a child keyed by the estimator's own grid point
    (``names``), so every point is an independent stream: running a subset
    of a sweep reproduces exactly that slice of the full run, and grid
    points can be evaluated in any order or process.

    Exactly one of ``rng`` and ``seed`` must be given.  Passing both used to
    silently drop ``seed`` (and with it the documented per-point independent
    streams); that is now a ``TypeError``.
    """
    if rng is not None and seed is not None:
        raise TypeError("pass either rng= or seed=, not both")
    if rng is not None:
        return rng
    if seed is None:
        raise TypeError("pass either rng= or seed=")
    return np.random.default_rng(spawn_seedseq(seed, *names))


def sample_failure_matrix(n: int, f: int, iterations: int, rng: np.random.Generator) -> np.ndarray:
    """Boolean matrix ``(iterations, 2n+2)``: True where a component failed.

    Each row holds exactly ``f`` True entries, uniform over all ``C(2n+2,f)``
    subsets.  Sampling uses the random-keys trick: rank i.i.d. uniforms per
    row and fail the ``f`` smallest — ``argpartition`` keeps it O(width) per
    row instead of a full sort.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    width = 2 * n + 2
    if not 0 <= f <= width:
        raise ValueError(f"f must be in [0, {width}], got {f}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    keys = rng.random((iterations, width))
    failed = np.zeros((iterations, width), dtype=bool)
    if f > 0:
        picks = np.argpartition(keys, f - 1, axis=1)[:, :f]
        np.put_along_axis(failed, picks, True, axis=1)
    return failed


def pair_connected_vec(failed: np.ndarray, two_hop: bool = True) -> np.ndarray:
    """Vectorized DRS reachability of the canonical pair (nodes 0 and 1).

    ``failed`` is the boolean matrix from :func:`sample_failure_matrix`;
    returns a boolean vector over iterations.
    """
    hub0_up = ~failed[:, 0]
    hub1_up = ~failed[:, 1]
    a0_up, a1_up = ~failed[:, 2], ~failed[:, 3]
    b0_up, b1_up = ~failed[:, 4], ~failed[:, 5]

    direct0 = hub0_up & a0_up & b0_up
    direct1 = hub1_up & a1_up & b1_up
    ok = direct0 | direct1
    if not two_hop or failed.shape[1] <= 6:
        return ok

    # An intermediate router needs both of its NICs; any one suffices.
    inter_up = (~failed[:, 6::2] & ~failed[:, 7::2]).any(axis=1)
    both_hubs = hub0_up & hub1_up
    crossed = (a0_up & b1_up) | (a1_up & b0_up)
    return ok | (both_hubs & inter_up & crossed)


def simulate_success_probability(
    n: int,
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    seed: int | None = None,
) -> float:
    """Monte Carlo estimate of Equation 1 for one (N, f) point.

    Draws from ``rng`` when given; otherwise from an independent stream
    spawned from ``seed`` and keyed by ``(n, f)``.  Batches keep peak memory
    at ``batch * (2n+2)`` booleans regardless of the requested iteration
    count.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = _resolve_rng(rng, seed, f"mc/n={n}/f={f}")
    remaining = iterations
    good = 0
    started = perf_counter()
    while remaining > 0:
        size = min(remaining, batch)
        failed = sample_failure_matrix(n, f, size, rng)
        good += int(pair_connected_vec(failed, two_hop=two_hop).sum())
        remaining -= size
        hb = heartbeat()
        if hb is not None:  # one global lookup per ≥200k-iteration batch
            hb.add(size)
        # Per-batch precision snapshot on the flight channel (same None-check
        # discipline): the Wilson interval costs a handful of scalar ops per
        # ≥200k-iteration batch, and only when a recorder is installed.
        if flight_recorder() is not None:
            publish_cell_precision(
                CellPrecision.from_counts(
                    n, f, good, iterations - remaining, elapsed_s=perf_counter() - started
                ),
                done=remaining == 0,
            )
    # One timing pair + registry update per call (not per batch): the
    # instrumentation cost is amortized over the whole iteration budget.
    publish_mc_throughput(iterations, perf_counter() - started)
    return good / iterations


def failure_rank_matrix(n: int, iterations: int, rng: np.random.Generator) -> np.ndarray:
    """Integer matrix ``(iterations, 2n+2)``: each row is a uniform failure order.

    Row ``i`` holds a uniformly random permutation rank per component — the
    position of that component in the row's i.i.d.-uniform key ordering.  The
    failure set at *any* level ``f`` is then simply ``ranks < f``, and those
    sets are nested in ``f`` by construction: the common-random-numbers basis
    of the sweep kernel.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    width = 2 * n + 2
    keys = rng.random((iterations, width))
    order = np.argsort(keys, axis=1)
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.arange(width)[None, :], axis=1)
    return ranks


def failure_matrix_at(ranks: np.ndarray, f: int) -> np.ndarray:
    """The level-``f`` failure indicator over a shared rank matrix.

    Distributionally identical to :func:`sample_failure_matrix` at the same
    ``f``; across levels the sets are nested (``f-1``'s failures are a subset
    of ``f``'s for every row), which makes sweep estimates monotone in ``f``.
    """
    width = ranks.shape[1]
    if not 0 <= f <= width:
        raise ValueError(f"f must be in [0, {width}], got {f}")
    return ranks < f


def connectivity_levels(
    component_keys: np.ndarray, two_hop: bool = True, widths: np.ndarray | None = None
) -> np.ndarray:
    """Per row: the largest failure count ``f`` at which the pair survives.

    The DRS pair predicate is monotone (failing more components never
    reconnects the pair), so each row has a single breakdown threshold
    ``S``: the pair at level ``f`` is connected iff ``f <= S``.  A route is
    usable at level ``f`` iff every component on it has rank ``>= f``, so a
    route tolerates ``min(ranks on route)`` failures and ``S`` is the rank
    of::

        critical = max(direct0, direct1, two-hop)

    with ``direct_j = min(hub_j, A_j, B_j)`` and the two-hop term the min of
    both hubs, the best surviving intermediate, and the best crossed
    endpoint orientation.

    ``component_keys`` is any row-wise comparable matrix over the component
    axis — the raw uniform key matrix (the hot path: no sort needed) or a
    :func:`failure_rank_matrix` (rank of a rank is itself).  Rank is a
    monotone transform of key order, so the min/max expression commutes with
    it: the expression picks the critical *element*, and counting the
    strictly smaller entries in its row recovers its rank, i.e. ``S``.
    This is the one-pass form of evaluating :func:`pair_connected_vec` at
    every ``f`` over the shared draw (``connectivity_levels(ranks) >= f``
    equals ``pair_connected_vec(ranks < f)`` exactly).

    ``widths`` enables the padded full-grid tensor pass
    (:func:`simulate_full_grid`): rows from clusters of different sizes are
    stacked into one matrix at the widest cluster's ``2N + 2``, each row
    right-padded past its own true width.  Padded columns are masked out of
    both the intermediate-router term and the final rank count, so each
    row's threshold is computed exactly as if it were evaluated at its own
    width — one kernel call serves every N at once.
    """
    k = component_keys
    direct0 = np.minimum(np.minimum(k[:, 0], k[:, 2]), k[:, 4])
    direct1 = np.minimum(np.minimum(k[:, 1], k[:, 3]), k[:, 5])
    critical = np.maximum(direct0, direct1)
    if two_hop and k.shape[1] > 6:
        # Best intermediate: needs both of its NICs; any one suffices.
        pair_min = np.minimum(k[:, 6::2], k[:, 7::2])
        if widths is not None:
            widths = np.asarray(widths)
            real = np.arange(pair_min.shape[1])[None, :] < (widths[:, None] - 6) // 2
            pair_min = np.where(real, pair_min, -np.inf)
        inter = pair_min.max(axis=1)
        both_hubs = np.minimum(k[:, 0], k[:, 1])
        crossed = np.maximum(np.minimum(k[:, 2], k[:, 5]), np.minimum(k[:, 3], k[:, 4]))
        critical = np.maximum(critical, np.minimum(np.minimum(both_hubs, inter), crossed))
    below = k < critical[:, None]
    if widths is not None:
        below &= np.arange(k.shape[1])[None, :] < np.asarray(widths)[:, None]
    return below.sum(axis=1)


def _grid_sweep(
    width: int,
    levels_from_keys,
    fs: tuple[int, ...],
    iterations: int,
    rng: np.random.Generator,
    batch: int,
    target_half_width: float | None,
    confidence: float,
    max_iterations: int | None,
    precision: bool,
    n: int,
    topology: str | None = None,
) -> dict[int, float] | dict[int, CellPrecision]:
    """The common-random-numbers sweep loop behind every grid estimator.

    One sampling pass per batch serves the whole f-grid: draw
    ``rng.random((size, width))``, reduce each row to its breakdown
    threshold via ``levels_from_keys``, histogram the thresholds, and read
    every level's survivor count off the reversed cumulative sum.  The
    draw shape and order are part of the reproducibility contract —
    :func:`simulate_grid` (dual-hub) and
    :func:`repro.analysis.topokernel.simulate_topology_grid` (any
    topology) both consume ``(size, width)`` uniforms per batch, so the
    dual-hub topology dispatched through the generic API replays the
    byte-identical stream of the specialized path.

    ``levels_from_keys`` maps one uniform key matrix to per-row breakdown
    thresholds in ``[0, width]`` (level ``f`` survives iff threshold
    ``>= f``); ``n`` and ``topology`` only label the published
    :class:`~repro.obs.precision.CellPrecision` records.  Fixed-count,
    ``precision=True``, and adaptive-stopping semantics are exactly those
    documented on :func:`simulate_grid`.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if len(fs) == 0:
        raise ValueError("fs must name at least one failure count")
    adaptive = target_half_width is not None
    if adaptive:
        if target_half_width <= 0:
            raise ValueError(f"target_half_width must be positive, got {target_half_width}")
        if max_iterations is None:
            max_iterations = DEFAULT_MAX_ADAPTIVE_TRIALS
        if max_iterations < iterations:
            raise ValueError(
                f"max_iterations must be >= iterations ({iterations}), got {max_iterations}"
            )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # survivors[s] accumulates rows with breakdown threshold >= s, so the
    # whole f-grid (indeed every f in [0, width]) reads off one histogram.
    survivors = np.zeros(width + 1, dtype=np.int64)
    total = 0
    budget = max_iterations if adaptive else iterations
    frozen: dict[int, CellPrecision] = {}
    started = perf_counter()

    def cell_at(f: int) -> CellPrecision:
        return CellPrecision.from_counts(
            n,
            f,
            int(survivors[f]),
            total,
            confidence=confidence,
            target_half_width=target_half_width,
            elapsed_s=perf_counter() - started,
            topology=topology,
        )

    while total < budget:
        if adaptive:
            # first round is the caller's floor, then double, capped at the
            # CRN batch size — overshoot past a cell's true stopping point
            # is at most 2x, and CI checks stay O(log trials)
            size = min(iterations if total == 0 else total, batch, budget - total)
        else:
            size = min(budget - total, batch)
        levels = levels_from_keys(rng.random((size, width)))
        counts = np.bincount(levels, minlength=width + 1)
        survivors += counts[::-1].cumsum()[::-1]
        total += size
        hb = heartbeat()
        if hb is not None:
            hb.add(size)
        recording = flight_recorder() is not None
        if adaptive:
            exhausted = total >= budget
            for f in fs:
                if f in frozen:
                    continue
                cell = cell_at(f)
                if cell.met_target or exhausted:
                    frozen[f] = cell
                if recording:
                    publish_cell_precision(cell, done=f in frozen)
            if len(frozen) == len(set(fs)):
                break
        elif recording:
            for f in fs:
                publish_cell_precision(cell_at(f), done=total >= budget)
    publish_mc_throughput(total, perf_counter() - started)
    if adaptive:
        return {f: frozen[f] for f in fs}
    if precision:
        return {f: cell_at(f) for f in fs}
    return {f: int(survivors[f]) / iterations for f in fs}


class _SweepGroup:
    """One cluster size's state inside the padded multi-N sweep engine.

    ``hists`` holds one accumulated level histogram per named *track*
    (``"surv"`` for breakdown thresholds; the stratified estimator adds
    ``"dead"`` for endpoint-death ranks); ``meta`` is free-form per-group
    state for the cell builder (exact stratum constants, topology label).
    """

    __slots__ = ("n", "width", "rng", "fs", "hists", "frozen", "trials", "meta")

    def __init__(
        self,
        n: int,
        width: int,
        rng: np.random.Generator,
        fs: tuple[int, ...],
        tracks: tuple[str, ...] = ("surv",),
        meta: dict | None = None,
    ) -> None:
        self.n = n
        self.width = width
        self.rng = rng
        self.fs = tuple(fs)
        self.hists = {track: np.zeros(width + 1, dtype=np.int64) for track in tracks}
        self.frozen: dict[int, CellPrecision] = {}
        self.trials = 0
        self.meta = meta or {}


def _padded_sweep(
    groups: list[_SweepGroup],
    levels_from_keys,
    cell_from_group,
    iterations: int,
    batch: int,
    target_half_width: float | None,
    confidence: float,
    max_iterations: int | None,
    precision: bool,
    pad_value: float = 1.5,
) -> dict[int, dict[int, float]] | dict[int, dict[int, CellPrecision]]:
    """The padded full-grid tensor loop behind :func:`simulate_full_grid`.

    Each round stacks one ``(size, width_n)`` uniform draw per still-active
    group into a single ``(len(active) * size, max_width)`` matrix (padded
    with ``pad_value``, which sorts above every real key so padded columns
    can never fall below a breakdown threshold), reduces the whole stack
    with **one** call to ``levels_from_keys(keys, widths) -> {track:
    levels}``, and folds each group's slice into its per-track histograms.
    The f-grid of every N then reads off those histograms — the entire
    (N, f) grid costs a handful of kernel calls per round instead of one
    sweep per N.

    Reproducibility: each group draws ``(size, width)`` blocks from *its
    own* stream under the same round schedule :func:`_grid_sweep` uses
    (the schedule depends only on shared totals, never on which cells are
    open), and a group stops drawing exactly when its solo run would have
    stopped — so every group's draws, counts, and frozen cells are
    byte-identical to a per-N :func:`simulate_grid` run on the same
    stream.  Adaptive stopping, ``precision=True``, flight events, and the
    validation contract mirror :func:`_grid_sweep` exactly.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    for group in groups:
        if len(group.fs) == 0:
            raise ValueError("fs must name at least one failure count")
    adaptive = target_half_width is not None
    if adaptive:
        if target_half_width <= 0:
            raise ValueError(f"target_half_width must be positive, got {target_half_width}")
        if max_iterations is None:
            max_iterations = DEFAULT_MAX_ADAPTIVE_TRIALS
        if max_iterations < iterations:
            raise ValueError(
                f"max_iterations must be >= iterations ({iterations}), got {max_iterations}"
            )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    budget = max_iterations if adaptive else iterations
    total = 0
    drawn = 0
    active = list(groups)
    started = perf_counter()
    while active and total < budget:
        if adaptive:
            size = min(iterations if total == 0 else total, batch, budget - total)
        else:
            size = min(budget - total, batch)
        width_max = max(group.width for group in active)
        keys = np.full((len(active) * size, width_max), pad_value)
        widths = np.empty(len(active) * size, dtype=np.int64)
        for i, group in enumerate(active):
            rows = slice(i * size, (i + 1) * size)
            keys[rows, : group.width] = group.rng.random((size, group.width))
            widths[rows] = group.width
        levels = levels_from_keys(keys, widths)
        for i, group in enumerate(active):
            rows = slice(i * size, (i + 1) * size)
            for track, values in levels.items():
                group.hists[track] += np.bincount(values[rows], minlength=group.width + 1)
            group.trials = total + size
        total += size
        drawn += size * len(active)
        hb = heartbeat()
        if hb is not None:
            hb.add(size * len(active))
        recording = flight_recorder() is not None
        elapsed = perf_counter() - started
        if adaptive:
            exhausted = total >= budget
            for group in active:
                for f in group.fs:
                    if f in group.frozen:
                        continue
                    cell = cell_from_group(group, f, elapsed)
                    if cell.met_target or exhausted:
                        group.frozen[f] = cell
                    if recording:
                        publish_cell_precision(cell, done=f in group.frozen)
            active = [g for g in active if len(g.frozen) < len(set(g.fs))]
        elif recording:
            for group in active:
                for f in group.fs:
                    publish_cell_precision(cell_from_group(group, f, elapsed), done=total >= budget)
    publish_mc_throughput(drawn, perf_counter() - started)
    elapsed = perf_counter() - started
    results: dict[int, dict] = {}
    for group in groups:
        if adaptive:
            results[group.n] = {f: group.frozen[f] for f in group.fs}
        elif precision:
            results[group.n] = {f: cell_from_group(group, f, elapsed) for f in group.fs}
        else:
            results[group.n] = {f: cell_from_group(group, f, elapsed).point for f in group.fs}
    return results


def _resolve_grid_streams(
    ns: tuple[int, ...],
    rng: np.random.Generator | None,
    seed: int | None,
    rngs: dict[int, np.random.Generator] | None,
    key: str,
) -> dict[int, np.random.Generator]:
    """Per-N streams for the full-grid estimators.

    ``seed`` spawns one independent child per N keyed exactly like the
    per-N estimator (``{key}/n={n}``), so any (N, f)-subset slice of the
    full grid reproduces the corresponding per-N runs byte for byte.
    ``rngs`` supplies explicit per-N generators (the convergence study
    threads its own legacy stream keys through this).  A bare ``rng`` is a
    single shared stream consumed by the active groups in N order each
    round — deterministic, but not sliceable.
    """
    given = [name for name, value in (("rng", rng), ("seed", seed), ("rngs", rngs)) if value is not None]
    if len(given) > 1:
        raise TypeError(f"pass either rng=, seed=, or rngs=, not both {given[0]}= and {given[1]}=")
    if rngs is not None:
        missing = [n for n in ns if n not in rngs]
        if missing:
            raise ValueError(f"rngs must cover every n in ns; missing n={missing[0]}")
        return {n: rngs[n] for n in ns}
    if rng is not None:
        return {n: rng for n in ns}
    if seed is None:
        raise TypeError("pass either rng= or seed=")
    return {n: np.random.default_rng(spawn_seedseq(seed, f"{key}/n={n}")) for n in ns}


def _full_grid_fs(ns: tuple[int, ...], fs) -> dict[int, tuple[int, ...]]:
    """Normalize ``fs`` (one tuple, or a per-N mapping) and validate ranges."""
    if len(ns) == 0:
        raise ValueError("ns must name at least one cluster size")
    if len(set(ns)) != len(ns):
        raise ValueError(f"ns must be unique, got {ns}")
    per_n = dict(fs) if isinstance(fs, dict) else {n: tuple(fs) for n in ns}
    for n in ns:
        if n < 2:
            raise ValueError(f"need n >= 2, got {n}")
        if n not in per_n:
            raise ValueError(f"fs must cover every n in ns; missing n={n}")
        width = 2 * n + 2
        for f in per_n[n]:
            if not 0 <= f <= width:
                raise ValueError(f"f must be in [0, {width}], got {f}")
    return {n: tuple(per_n[n]) for n in ns}


def simulate_full_grid(
    ns: tuple[int, ...],
    fs,
    iterations: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    target_half_width: float | None = None,
    confidence: float = 0.95,
    max_iterations: int | None = None,
    precision: bool = False,
    method: str = "crn",
    rngs: dict[int, np.random.Generator] | None = None,
) -> dict[int, dict[int, float]] | dict[int, dict[int, CellPrecision]]:
    """Monte Carlo P[Success] over the *entire* (N, f) grid in padded passes.

    The figure-2/figure-3 workhorse: instead of one CRN sweep per N, every
    cluster size's key matrix is stacked (right-padded to the widest
    ``2N + 2``) into one tensor per round, and a single widths-masked
    kernel call (:func:`connectivity_levels` with ``widths``) reduces the
    whole stack to breakdown thresholds — the full grid costs a handful of
    kernel calls per sampling round.

    ``fs`` is one failure-count tuple shared by every N, or a mapping
    ``{n: fs}`` for per-N domains (the paper grid's ``f < N`` restriction).
    ``method`` selects the estimator: ``"crn"`` (crude common-random-
    numbers frequency counting), ``"stratified"`` (hub-state
    stratification: the closed-form strata of Equation 1 absorb the hub
    dimension and only the both-hubs-up stratum is sampled, over NIC-only
    keys), or ``"stratified-cv"`` (stratified plus the endpoint-dead
    control variate) — see :mod:`repro.analysis.variance` and
    docs/model.md §11.

    Reproducibility: with ``seed``, stream keys match the per-N estimators
    (``mc-grid/n={n}`` for ``"crn"`` — exactly :func:`simulate_grid`'s —
    and ``mc-strat/n={n}`` for the stratified methods, matching
    :func:`repro.analysis.variance.stratified_grid`), and the shared round
    schedule consumes each stream identically to the per-N run, so any
    (N, f)-subset slice of the result is **byte-identical** to the
    corresponding per-N calls.  Adaptive stopping (``target_half_width``),
    ``precision=True``, and the returned shapes follow
    :func:`simulate_grid`, one inner dict per N: ``{n: {f: ...}}``.
    """
    ns = tuple(ns)
    per_n_fs = _full_grid_fs(ns, fs)
    if method in ("stratified", "stratified-cv"):
        from repro.analysis.variance import _stratified_full_grid

        streams = _resolve_grid_streams(ns, rng, seed, rngs, "mc-strat")
        return _stratified_full_grid(
            ns,
            per_n_fs,
            streams,
            iterations,
            two_hop,
            batch,
            method == "stratified-cv",
            target_half_width,
            confidence,
            max_iterations,
            precision,
        )
    if method != "crn":
        raise ValueError(
            f"method must be 'crn', 'stratified', or 'stratified-cv', got {method!r}"
        )
    streams = _resolve_grid_streams(ns, rng, seed, rngs, "mc-grid")
    groups = [_SweepGroup(n, 2 * n + 2, streams[n], per_n_fs[n]) for n in ns]

    def levels(keys: np.ndarray, widths: np.ndarray) -> dict[str, np.ndarray]:
        return {"surv": connectivity_levels(keys, two_hop=two_hop, widths=widths)}

    def cell(group: _SweepGroup, f: int, elapsed: float) -> CellPrecision:
        return CellPrecision.from_counts(
            group.n,
            f,
            int(group.hists["surv"][f:].sum()),
            group.trials,
            confidence=confidence,
            target_half_width=target_half_width,
            elapsed_s=elapsed,
        )

    return _padded_sweep(
        groups,
        levels,
        cell,
        iterations,
        batch,
        target_half_width,
        confidence,
        max_iterations,
        precision,
    )


def simulate_grid(
    n: int,
    fs: tuple[int, ...],
    iterations: int,
    rng: np.random.Generator | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    seed: int | None = None,
    target_half_width: float | None = None,
    confidence: float = 0.95,
    max_iterations: int | None = None,
    precision: bool = False,
    method: str = "crn",
) -> dict[int, float] | dict[int, CellPrecision]:
    """Monte Carlo P[Success] at one N for *every* ``f`` in ``fs`` at once.

    The sweep kernel: rank one i.i.d. uniform key matrix per batch
    (:func:`failure_rank_matrix`), reduce each row to its breakdown
    threshold (:func:`connectivity_levels`), and read the whole f-grid off
    that single sampling pass — common random numbers across ``f``.  Versus
    ``len(fs)`` independent :func:`simulate_success_probability` calls this
    pays the sampling cost once instead of ``len(fs)`` times, and the shared
    draws make the estimates monotone in ``f`` by construction (nested
    failure sets), so Figure 2/3 curve crossovers cannot jitter.

    Seeding follows :func:`simulate_success_probability`'s spawned-stream
    discipline: with ``seed``, the stream is keyed by ``n`` alone — never by
    ``fs`` — so any subset of the f-grid reproduces exactly that slice of
    the full sweep.

    Fixed-count mode (the default) runs exactly ``iterations`` trials and
    returns ``{f: estimate}`` in the order of ``fs`` (``precision=True``
    upgrades the values to :class:`~repro.obs.precision.CellPrecision`
    records at ``confidence``).

    Adaptive-stopping mode (``target_half_width`` set) runs the grid in
    growing common-random-numbers batches — ``iterations`` is the first
    batch, then the trial count doubles per round up to ``batch`` — and
    *freezes* each cell the first time its Wilson half-width at
    ``confidence`` reaches the target, recording the cell's (successes,
    trials) at that batch boundary.  Sampling for the row continues until
    every cell is frozen or the row hits ``max_iterations`` (default
    ``DEFAULT_MAX_ADAPTIVE_TRIALS``; remaining cells are then frozen below
    target, mirroring :func:`repro.analysis.stats.estimate_to_precision`'s
    budget semantics).  Returns ``{f: CellPrecision}``.

    Reproducibility contract: trial consumption is batching-invariant
    (NumPy fills arrays from the stream in row-major order), so a cell
    frozen at ``T`` trials is **byte-identical** to a fixed-count run at
    ``iterations=T`` with the same stream — same successes, same estimate
    — no matter how the adaptive schedule chunked the draws.  Every cell
    snapshot is published as a ``stats.cell`` flight event when a recorder
    is installed.

    ``method`` upgrades the estimator in place: ``"stratified"`` and
    ``"stratified-cv"`` dispatch to
    :func:`repro.analysis.variance.stratified_grid` (hub-state
    stratification, optionally with the endpoint-dead control variate) —
    same call shape, same return shapes, its own ``mc-strat/n={n}`` stream
    key, and stratified intervals in place of Wilson wherever a cell is no
    longer a plain binomial proportion.
    """
    if method in ("stratified", "stratified-cv"):
        from repro.analysis.variance import stratified_grid

        return stratified_grid(
            n,
            fs,
            iterations,
            rng=rng,
            seed=seed,
            two_hop=two_hop,
            batch=batch,
            control_variate=method == "stratified-cv",
            target_half_width=target_half_width,
            confidence=confidence,
            max_iterations=max_iterations,
            precision=precision,
        )
    if method != "crn":
        raise ValueError(
            f"method must be 'crn', 'stratified', or 'stratified-cv', got {method!r}"
        )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if len(fs) == 0:
        raise ValueError("fs must name at least one failure count")
    width = 2 * n + 2
    for f in fs:
        if not 0 <= f <= width:
            raise ValueError(f"f must be in [0, {width}], got {f}")
    rng = _resolve_rng(rng, seed, f"mc-grid/n={n}")
    return _grid_sweep(
        width,
        lambda keys: connectivity_levels(keys, two_hop=two_hop),
        fs,
        iterations,
        rng,
        batch,
        target_half_width,
        confidence,
        max_iterations,
        precision,
        n,
    )


def simulate_curve(
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    n_max: int = 63,
    n_min: int | None = None,
    two_hop: bool = True,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte Carlo P[Success] versus N for fixed ``f`` (simulated Figure 2).

    With ``rng``, one shared stream is threaded through the points (each
    point's draws then depend on its predecessors).  With ``seed``, every
    point gets its own spawned stream, so any sub-range of N reproduces the
    corresponding slice of the full curve.  Passing both is a ``TypeError``
    (it used to silently drop ``seed``), and an empty N range raises
    ``ValueError`` exactly like :func:`repro.analysis.exact.success_curve`.
    """
    if rng is not None and seed is not None:
        raise TypeError("pass either rng= or seed=, not both")
    if n_min is None:
        n_min = max(2, f + 1)
    if n_min > n_max:
        raise ValueError(f"empty N range [{n_min}, {n_max}]")
    ns = np.arange(n_min, n_max + 1)
    ps = np.array(
        [
            simulate_success_probability(int(n), f, iterations, rng, two_hop=two_hop, seed=seed)
            for n in ns
        ]
    )
    return ns, ps

"""Tests for the outage timeline renderer."""

import pytest

from repro.drs import install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator
from repro.viz import render_timeline

from tests.drs.conftest import FAST


def _trace_with_failure():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    sim.schedule(1.0, lambda: cluster.faults.fail("nic1.0"))
    sim.schedule(4.0, lambda: cluster.faults.repair("nic1.0"))
    sim.run(until=6.0)
    return cluster.trace.entries()


def test_timeline_shows_fault_window_and_repairs():
    text = render_timeline(_trace_with_failure(), t_end=6.0)
    lines = text.splitlines()
    nic_lane = next(l for l in lines if l.startswith("nic1.0"))
    assert "X" in nic_lane
    assert nic_lane.index("X") > 12  # failure starts mid-lane, not at t=0
    pair_lane = next(l for l in lines if l.startswith("node0->1"))
    assert "r" in pair_lane
    # repair lands inside the component's down-window
    nic_window = range(nic_lane.index("X"), len(nic_lane.rstrip()))
    assert pair_lane.index("r") in nic_window
    assert "legend" in lines[-1]


def test_timeline_restore_glyph_after_two_hop_heal():
    # a two-hop repair whose direct link heals produces a drs-restore (R)
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 4)
    stacks = install_stacks(cluster)
    install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=3.0)
    cluster.faults.repair("nic1.0")
    sim.run(until=5.0)
    text = render_timeline(cluster.trace.entries(), t_end=5.0, node=0)
    pair_lane = next(l for l in text.splitlines() if l.startswith("node0->1"))
    assert "R" in pair_lane


def test_timeline_open_ended_failure_runs_to_edge():
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, 3)
    cluster.faults.fail("hub0")
    sim.run(until=2.0)
    text = render_timeline(cluster.trace.entries(), t_end=2.0)
    hub_lane = next(l for l in text.splitlines() if l.startswith("hub0"))
    assert hub_lane.rstrip().endswith("X")


def test_timeline_node_filter():
    entries = _trace_with_failure()
    text = render_timeline(entries, t_end=6.0, node=2)
    lanes = [l for l in text.splitlines() if l.startswith("node")]
    assert lanes and all(l.startswith("node2->") for l in lanes)


def test_timeline_validation():
    with pytest.raises(ValueError):
        render_timeline([], width=5)
    with pytest.raises(ValueError):
        render_timeline([], t_start=5.0, t_end=5.0)


def test_timeline_empty_trace_renders_axis():
    text = render_timeline([], t_end=10.0)
    assert "time" in text and "legend" in text


def test_component_lane_clamped_to_t_end():
    from repro.viz.timeline import _component_lanes
    from repro.simkit.trace import TraceEntry

    entries = [
        TraceEntry(2.0, "fault", {"component": "hub0", "action": "fail"}),
        TraceEntry(50.0, "fault", {"component": "hub0", "action": "repair"}),
        TraceEntry(8.0, "fault", {"component": "nic1.0", "action": "fail"}),  # never repaired
        TraceEntry(99.0, "fault", {"component": "late", "action": "fail"}),  # after horizon
    ]
    lanes = _component_lanes(entries, t_end=10.0)
    (hub,) = lanes["hub0"]
    assert hub.start == 2.0 and hub.end == 10.0  # repair past horizon: clamped
    (nic,) = lanes["nic1.0"]
    assert nic.end == 10.0  # open interval closed at the horizon
    assert "late" not in lanes


def test_render_timeline_accepts_spans():
    from repro.obs.spans import Span

    spans = [
        Span(1, "incident:hub0", "fault", 2.0, 8.0, attrs={"component": "hub0"}),
        Span(2, "failover", "failover", 3.0, 4.0, parent_id=1, incident_id=1,
             node=0, attrs={"peer": 1, "outcome": "direct-swap"}),
        Span(3, "restore", "restore", 8.5, 8.5, node=0, attrs={"peer": 1}),
    ]
    text = render_timeline(spans, t_end=10.0)
    lines = text.splitlines()
    hub_lane = next(l for l in lines if l.startswith("hub0"))
    assert "X" in hub_lane
    pair_lane = next(l for l in lines if l.startswith("node0->1"))
    assert "D" in pair_lane and "r" in pair_lane and "R" in pair_lane
    assert pair_lane.index("D") <= pair_lane.index("r") <= pair_lane.index("R")


def test_render_timeline_accepts_mixed_spans_and_entries():
    from repro.obs.spans import Span
    from repro.simkit.trace import TraceEntry

    mixed = [
        TraceEntry(1.0, "fault", {"component": "nic0.0", "action": "fail"}),
        Span(1, "failover", "failover", 2.0, None, node=1, attrs={"peer": 0}),  # open
    ]
    text = render_timeline(mixed, t_end=5.0)
    assert "nic0.0" in text and "node1->0" in text
    with pytest.raises(TypeError):
        render_timeline([object()], t_end=5.0)


def test_unfinished_incident_span_stays_open():
    from repro.obs.spans import Span

    spans = [
        Span(1, "incident:hub0", "fault", 2.0, 6.0,
             attrs={"component": "hub0", "unfinished": True}),
    ]
    text = render_timeline(spans, t_end=10.0)
    hub_lane = next(l for l in text.splitlines() if l.startswith("hub0"))
    # flushed-but-unrepaired: the down-window runs to the horizon
    assert hub_lane.rstrip().endswith("X")
    assert "." in hub_lane  # but starts after t=0

"""``python -m repro``: package banner, version, and tool index."""

import sys

from repro import __version__, crossover_n, success_probability


def main() -> int:
    """Print what this package is and how to drive it."""
    print(f"repro {__version__} — DRS network-survivability reproduction")
    print("(Chowdhury, Frieder, Luse, Wan — IPDPS 2000 Workshops)")
    print()
    print(f"sanity: Equation 1 P[S](18, 2) = {success_probability(18, 2):.6f} "
          f"(paper: first exceeds 0.99 at N=18; crossover_n(2) = {crossover_n(2)})")
    print()
    print("tools:")
    print("  drs-experiments [--quick] [--html]   regenerate every figure/table")
    print("  drs-sim SPEC.json [--compare]        run declarative scenarios")
    print("  drs-analyze report N                 survivability calculator")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md, docs/")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Vectorized Monte Carlo estimator of pair survivability.

This is the paper's validation simulation ("we have developed a computer
simulation of a networking system with N nodes and f failures implementing
the DRS algorithm") and the hot path of the reproduction, so it is fully
vectorized: one NumPy batch evaluates every iteration's failure set and the
DRS reachability predicate without Python-level loops over iterations.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.obs.profiler import publish_mc_throughput
from repro.obs.progress import heartbeat
from repro.simkit.rng import spawn_seedseq


def _resolve_rng(
    rng: np.random.Generator | None, seed: int | None, *names: str
) -> np.random.Generator:
    """An explicit generator, or an independent stream spawned from ``seed``.

    Seed-based callers get a child keyed by the estimator's own grid point
    (``names``), so every point is an independent stream: running a subset
    of a sweep reproduces exactly that slice of the full run, and grid
    points can be evaluated in any order or process.
    """
    if rng is not None:
        return rng
    if seed is None:
        raise TypeError("pass either rng= or seed=")
    return np.random.default_rng(spawn_seedseq(seed, *names))


def sample_failure_matrix(n: int, f: int, iterations: int, rng: np.random.Generator) -> np.ndarray:
    """Boolean matrix ``(iterations, 2n+2)``: True where a component failed.

    Each row holds exactly ``f`` True entries, uniform over all ``C(2n+2,f)``
    subsets.  Sampling uses the random-keys trick: rank i.i.d. uniforms per
    row and fail the ``f`` smallest — ``argpartition`` keeps it O(width) per
    row instead of a full sort.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    width = 2 * n + 2
    if not 0 <= f <= width:
        raise ValueError(f"f must be in [0, {width}], got {f}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    keys = rng.random((iterations, width))
    failed = np.zeros((iterations, width), dtype=bool)
    if f > 0:
        picks = np.argpartition(keys, f - 1, axis=1)[:, :f]
        np.put_along_axis(failed, picks, True, axis=1)
    return failed


def pair_connected_vec(failed: np.ndarray, two_hop: bool = True) -> np.ndarray:
    """Vectorized DRS reachability of the canonical pair (nodes 0 and 1).

    ``failed`` is the boolean matrix from :func:`sample_failure_matrix`;
    returns a boolean vector over iterations.
    """
    hub0_up = ~failed[:, 0]
    hub1_up = ~failed[:, 1]
    a0_up, a1_up = ~failed[:, 2], ~failed[:, 3]
    b0_up, b1_up = ~failed[:, 4], ~failed[:, 5]

    direct0 = hub0_up & a0_up & b0_up
    direct1 = hub1_up & a1_up & b1_up
    ok = direct0 | direct1
    if not two_hop or failed.shape[1] <= 6:
        return ok

    # An intermediate router needs both of its NICs; any one suffices.
    inter_up = (~failed[:, 6::2] & ~failed[:, 7::2]).any(axis=1)
    both_hubs = hub0_up & hub1_up
    crossed = (a0_up & b1_up) | (a1_up & b0_up)
    return ok | (both_hubs & inter_up & crossed)


def simulate_success_probability(
    n: int,
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    two_hop: bool = True,
    batch: int = 200_000,
    seed: int | None = None,
) -> float:
    """Monte Carlo estimate of Equation 1 for one (N, f) point.

    Draws from ``rng`` when given; otherwise from an independent stream
    spawned from ``seed`` and keyed by ``(n, f)``.  Batches keep peak memory
    at ``batch * (2n+2)`` booleans regardless of the requested iteration
    count.
    """
    rng = _resolve_rng(rng, seed, f"mc/n={n}/f={f}")
    remaining = iterations
    good = 0
    started = perf_counter()
    while remaining > 0:
        size = min(remaining, batch)
        failed = sample_failure_matrix(n, f, size, rng)
        good += int(pair_connected_vec(failed, two_hop=two_hop).sum())
        remaining -= size
        hb = heartbeat()
        if hb is not None:  # one global lookup per ≥200k-iteration batch
            hb.add(size)
    # One timing pair + registry update per call (not per batch): the
    # instrumentation cost is amortized over the whole iteration budget.
    publish_mc_throughput(iterations, perf_counter() - started)
    return good / iterations


def simulate_curve(
    f: int,
    iterations: int,
    rng: np.random.Generator | None = None,
    n_max: int = 63,
    n_min: int | None = None,
    two_hop: bool = True,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte Carlo P[Success] versus N for fixed ``f`` (simulated Figure 2).

    With ``rng``, one shared stream is threaded through the points (each
    point's draws then depend on its predecessors).  With ``seed``, every
    point gets its own spawned stream, so any sub-range of N reproduces the
    corresponding slice of the full curve.
    """
    if n_min is None:
        n_min = max(2, f + 1)
    ns = np.arange(n_min, n_max + 1)
    ps = np.array(
        [
            simulate_success_probability(int(n), f, iterations, rng, two_hop=two_hop, seed=seed)
            for n in ns
        ]
    )
    return ns, ps

"""Generator-based cooperative processes.

A :class:`Process` wraps a Python generator that ``yield``\\ s either

* a ``float``/``int`` delay (sleep for that many simulated seconds),
* a :class:`Timeout` (explicit form of the same), or
* a :class:`Signal` (block until another component fires it).

This is the idiom the DRS daemon loop is written in: an infinite generator
alternating probe rounds and sleeps, interruptible via signals when a link
state change demands immediate repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterable

from repro.simkit.errors import SimulationError
from repro.simkit.simulator import Simulator

ProcessGenerator = Generator[Any, Any, Any]


@dataclass
class Timeout:
    """Explicit sleep request: ``yield Timeout(0.25)``."""

    delay: float


class Signal:
    """A one-to-many wakeup primitive.

    Processes block on a signal by yielding it; :meth:`fire` wakes every
    waiter at the current simulation time and passes them ``value``.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def fire(self, value: Any = None) -> int:
        """Wake all waiters; return how many were woken."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(value)
        return len(waiters)


@dataclass
class _ProcState:
    finished: bool = False
    value: Any = None
    error: BaseException | None = None
    watchers: list[Signal] = field(default_factory=list)


class Process:
    """A running generator coupled to a :class:`Simulator`.

    The process starts on the next simulator tick at the current time (so
    constructing one inside an event callback is safe).
    """

    def __init__(self, sim: Simulator, gen: ProcessGenerator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._state = _ProcState()
        self._pending_event = sim.schedule(0.0, lambda: self._resume(None))
        self._interrupted_with: Any = None

    # --------------------------------------------------------------- status
    @property
    def finished(self) -> bool:
        """True once the generator has returned or raised."""
        return self._state.finished

    @property
    def value(self) -> Any:
        """The generator's return value (``None`` until finished)."""
        return self._state.value

    @property
    def error(self) -> BaseException | None:
        """The exception that terminated the process, if any."""
        return self._state.error

    def done_signal(self) -> Signal:
        """Return a signal fired (with the return value) when this process ends."""
        sig = Signal(f"{self.name}.done")
        if self._state.finished:
            # Fire on next tick so the caller can register a waiter first.
            self.sim.schedule(0.0, lambda: sig.fire(self._state.value))
        else:
            self._state.watchers.append(sig)
        return sig

    # ---------------------------------------------------------------- drive
    def _resume(self, value: Any) -> None:
        if self._state.finished:
            return
        self._pending_event = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # model bug: surface, don't swallow
            self._finish(error=exc)
            raise
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_event = self.sim.schedule(yielded.delay, lambda: self._resume(None))
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._fail(SimulationError(f"process {self.name!r} yielded negative delay {yielded!r}"))
                return
            self._pending_event = self.sim.schedule(float(yielded), lambda: self._resume(None))
        elif isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done_signal()._add_waiter(self)
        else:
            self._fail(SimulationError(f"process {self.name!r} yielded unsupported {yielded!r}"))

    def _fail(self, exc: BaseException) -> None:
        try:
            self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(value=stop.value)
        except BaseException as err:
            self._finish(error=err)
            raise

    def _finish(self, value: Any = None, error: BaseException | None = None) -> None:
        self._state.finished = True
        self._state.value = value
        self._state.error = error
        for sig in self._state.watchers:
            sig.fire(value)
        self._state.watchers.clear()

    # ---------------------------------------------------------------- admin
    def interrupt(self, value: Any = None) -> None:
        """Wake the process now, cancelling whatever it was waiting on.

        The interrupted ``yield`` expression evaluates to ``value``.
        """
        if self._state.finished:
            return
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        self.sim.schedule(0.0, lambda: self._resume(value))

    def kill(self) -> None:
        """Terminate the process without running any more of its body."""
        if self._state.finished:
            return
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        self._gen.close()
        self._finish(value=None)


def all_finished(procs: Iterable[Process]) -> bool:
    """True iff every process in ``procs`` has finished."""
    return all(p.finished for p in procs)

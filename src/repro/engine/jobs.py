"""Job plans: sweep experiments decomposed into independent units of work.

A sweep-style experiment (a Monte Carlo grid, a replicate batch, a DES size
sweep) is embarrassingly parallel across its grid points.  The experiment
module expresses that by building a :class:`JobPlan`: a list of
:class:`Job` entries — each a picklable module-level function plus a params
dict — and a ``reduce`` callable that assembles the finished values into the
:class:`~repro.experiments.base.ExperimentResult`.

Granularity
-----------

A job should be the *cheapest independently reproducible* unit, not the
smallest expressible one.  The Monte Carlo sweeps used to ship one job per
(N, f) grid point; the common-random-numbers kernel
(:func:`repro.analysis.montecarlo.simulate_grid`) evaluates the entire
f-family at one N from a single sampling pass, so those plans now emit one
*curve-level* job per N whose value is a ``{str(f): estimate}`` row — an
order of magnitude fewer jobs to pickle, schedule, and checkpoint, with the
f-dimension's sampling cost paid once in-kernel.  :func:`curve_value` is the
reduction-side accessor for such row values.

Seeding contract
----------------

A job never carries a generator.  Its random stream is derived at execution
time from the plan's root seed via
:func:`repro.simkit.rng.spawn_seedseq(root_seed, experiment, job_name)
<repro.simkit.rng.spawn_seedseq>`, so a job's draws depend only on
``(root seed, experiment name, job name)`` — never on the executor backend,
the worker count, scheduling order, or which other jobs ran.  Running a
subset of the grid therefore reproduces exactly the corresponding slice of
the full run, and serial and process-pool backends produce byte-identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.simkit.rng import seed_fingerprint, spawn_seedseq

#: Signature every job function implements: ``fn(params, seed_seq) -> value``.
#: ``params`` is the job's own params dict; ``seed_seq`` is its spawned child
#: :class:`numpy.random.SeedSequence` (deterministic jobs may ignore it).
JobFn = Callable[[dict[str, Any], np.random.SeedSequence], Any]


def curve_value(
    values: dict[str, Any], job_name: str, key: str, default: float = float("nan")
) -> Any:
    """One entry of a curve-level job's row value, quarantine-tolerant.

    Curve-level jobs return ``{key: value}`` rows (string keys — the
    checkpoint codec round-trips only string-keyed dicts).  A quarantined
    job is absent from ``values`` entirely; a key outside the job's grid
    slice is absent from its row.  Both read as ``default`` so sweep
    reducers keep their grid shape with NaN holes.
    """
    row = values.get(job_name)
    if not isinstance(row, dict):
        return default
    return row.get(key, default)


def cell_point(
    values: dict[str, Any], job_name: str, key: str, default: float = float("nan")
) -> float:
    """The point estimate of a curve-level row entry, precision-row tolerant.

    Plain sweep jobs store a bare float per key; precision-aware jobs
    (``--target-ci`` runs) store the cell's full
    :meth:`~repro.obs.precision.CellPrecision.to_row` dict with the point
    under ``"p"``.  Reducers that only need the estimate read through this
    accessor so one reduction serves both row shapes, with the same
    quarantine-tolerant ``default`` semantics as :func:`curve_value`.
    """
    value = curve_value(values, job_name, key, default)
    if isinstance(value, dict):
        return value.get("p", default)
    return value


@dataclass(frozen=True)
class Job:
    """One independent unit of work inside a plan.

    ``fn`` must be a module-level function (process-pool executors pickle
    jobs); ``name`` must be unique within the plan — it keys both the result
    and the job's spawned seed.
    """

    name: str
    fn: JobFn
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class JobPlan:
    """An experiment decomposed into jobs plus the reduction over their values.

    ``reduce`` receives ``{job.name: value}`` with every job present and runs
    in the coordinating process (it may close over local state; only jobs
    cross process boundaries).
    """

    experiment: str
    seed: int
    jobs: list[Job]
    reduce: Callable[[dict[str, Any]], Any]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"plan {self.experiment!r} has duplicate job names: {dupes}")

    def job_seedseq(self, job: Job) -> np.random.SeedSequence:
        """The deterministic child seed sequence for one job."""
        return spawn_seedseq(self.seed, self.experiment, job.name)

    def job_seeds(self) -> dict[str, int]:
        """Manifest payload: 64-bit seed fingerprint per job name."""
        return {job.name: seed_fingerprint(self.job_seedseq(job)) for job in self.jobs}

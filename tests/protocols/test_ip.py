"""Unit tests for the network layer: routed send, forwarding, TTL."""

from repro.protocols import Route, RouteSource
from repro.protocols.packet import Packet


class _Blob:
    def __init__(self, size_bytes=10):
        self.size_bytes = size_bytes


def test_routed_send_delivers_to_protocol_handler(rig):
    sim, cluster, stacks = rig
    got = []
    stacks[1].net.register_protocol("blob", lambda pkt, net: got.append((pkt.src_node, net)))
    assert stacks[0].net.send(1, "blob", _Blob())
    sim.run()
    assert got == [(0, 0)]  # default static routes use network 0


def test_send_direct_uses_named_network(rig):
    sim, cluster, stacks = rig
    got = []
    stacks[1].net.register_protocol("blob", lambda pkt, net: got.append(net))
    stacks[0].net.send_direct(1, 1, "blob", _Blob())
    sim.run()
    assert got == [1]


def test_no_route_returns_false_and_counts(rig):
    sim, cluster, stacks = rig
    stacks[0].table.withdraw(1, RouteSource.STATIC)
    assert stacks[0].net.send(1, "blob", _Blob()) is False
    assert stacks[0].net.dropped_no_route.value == 1


def test_two_hop_forwarding_via_intermediate(rig):
    sim, cluster, stacks = rig
    # Route 0->1 via intermediate 2: leg one on net 0, then 2's own route to 1.
    stacks[0].table.install(Route(dst=1, network=0, next_hop=2, source=RouteSource.DRS))
    stacks[2].table.install(Route(dst=1, network=1, next_hop=1, source=RouteSource.DRS))
    got = []
    stacks[1].net.register_protocol("blob", lambda pkt, net: got.append((pkt.src_node, net)))
    stacks[0].net.send(1, "blob", _Blob())
    sim.run()
    assert got == [(0, 1)]
    assert stacks[2].net.forwarded.value == 1


def test_forwarding_decrements_ttl_and_drops_at_zero(rig):
    sim, cluster, stacks = rig
    # Deliberate loop: 0 routes to 1 via 2, and 2 routes to 1 via 0.
    stacks[0].table.install(Route(dst=1, network=0, next_hop=2, source=RouteSource.DRS))
    stacks[2].table.install(Route(dst=1, network=0, next_hop=0, source=RouteSource.DRS))
    stacks[0].net.send(1, "blob", _Blob(), ttl=4)
    sim.run()
    dropped = stacks[0].net.dropped_ttl.value + stacks[2].net.dropped_ttl.value
    assert dropped == 1  # the loop terminates via TTL, not by hanging


def test_broadcast_reaches_all_other_stacks(rig):
    sim, cluster, stacks = rig
    got = []
    for nid, stack in stacks.items():
        stack.net.register_protocol("blob", lambda pkt, net, nid=nid: got.append(nid))
    stacks[0].net.broadcast(0, "blob", _Blob())
    sim.run()
    assert sorted(got) == [1, 2, 3]


def test_counters_track_send_and_delivery(rig):
    sim, cluster, stacks = rig
    stacks[1].net.register_protocol("blob", lambda pkt, net: None)
    stacks[0].net.send(1, "blob", _Blob())
    sim.run()
    assert stacks[0].net.sent.value == 1
    assert stacks[1].net.delivered.value == 1


def test_packet_size_includes_ip_header():
    pkt = Packet(src_node=0, dst_node=1, protocol="x", payload=_Blob(8))
    assert pkt.size_bytes == 28
    assert "ttl" in str(pkt)


def test_unknown_l4_protocol_ignored(rig):
    sim, cluster, stacks = rig
    stacks[0].net.send(1, "nothing-registered", _Blob())
    sim.run()  # delivered but silently discarded at demux
    assert stacks[1].net.delivered.value == 1

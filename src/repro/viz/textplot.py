"""ASCII line charts with optional log axes."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Marker glyphs assigned to series in insertion order.
MARKERS = "ox+*#@%&^~"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError(f"log axis requires positive values, got {v}")
        out.append(math.log10(v))
    return out


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    x_log: bool = False,
    y_log: bool = False,
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker from :data:`MARKERS`; the legend maps markers
    back to names.  Axes are annotated with min/max (pre-transform values).
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to render")

    points: dict[str, tuple[list[float], list[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x and y lengths differ")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")
        points[name] = (_transform(xs, x_log), _transform(ys, y_log))

    all_x = [x for xs, _ in points.values() for x in xs]
    all_y = [y for _, ys in points.values() for y in ys]
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(points.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(xs, ys):
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(value: float, log: bool) -> str:
        raw = 10**value if log else value
        return f"{raw:.4g}"

    lines: list[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = fmt(y_max, y_log)
    bottom_label = fmt(y_min, y_log)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = fmt(x_min, x_log) + (" " * max(1, width - 12)) + fmt(x_max, x_log)
    lines.append(" " * label_width + "  " + x_axis)
    footer = []
    if x_label:
        footer.append(f"x: {x_label}" + (" (log10)" if x_log else ""))
    if y_label:
        footer.append(f"y: {y_label}" + (" (log10)" if y_log else ""))
    if footer:
        lines.append("  ".join(footer))
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}" for i, name in enumerate(points)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)

"""Builder catalog: the shipped topology families.

Every builder returns a :class:`~repro.topology.model.Topology` whose
failure-site order is canonical and documented (it is part of the CRN
reproducibility contract), scaled by one primary ``size`` parameter so the
``topologysweep`` experiment can sweep any family over a size grid:

* :func:`dual_hub_cluster` — the paper's 2-backplane/2-NIC cluster, with
  the Equation 1 closed form and the hand-derived vectorized kernels
  attached as fast paths.  Size = N (nodes).
* :func:`k_hub_cluster` — the generalized k-backplane/k-NIC cluster
  (``hubs=2`` reproduces the paper's graph *without* the fast paths, which
  is what the equivalence tests and the kernel benchmark lean on).
  Size = N (nodes).
* :func:`fat_tree_two_level` — a leaf/spine fabric with per-host NICs
  (Couto et al. / Gliksberg et al. in PAPERS.md motivate the family).
  Size = hosts.
* :func:`fat_tree_three_level` — a pod-structured leaf/agg/core fabric;
  the default pair predicate spans pods so core survivability matters.
  Size = hosts.
* :func:`multi_cluster_wan` — dual-hub clusters joined by fragile WAN
  routers in a ring; the default pair crosses clusters.  Size = nodes per
  cluster.

``build_topology`` parses CLI-friendly spec strings
(``"khub"``, ``"khub:hubs=3"``, ``"fattree2:spines=4"``) against
:data:`TOPOLOGY_FAMILIES`, which is also what ``drs-experiments
--topology`` validates against.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.topology.model import PairConnected, Topology

#: spec-string parameter types accepted by :func:`build_topology`
_INT_PARAMS = frozenset(
    {"hubs", "nics", "leaves", "spines", "pods", "leaves_per_pod", "aggs_per_pod",
     "cores", "hosts_per_leaf", "clusters"}
)


def dual_hub_cluster(size: int = 8) -> Topology:
    """The paper's cluster: N nodes, 2 hubs, one NIC per node per hub.

    Vertex layout: hubs ``0, 1``; NIC of node ``i`` on network ``j`` at
    ``2 + 2i + j`` (identical to
    :func:`repro.netsim.faults.component_universe` and to every existing
    failure-matrix consumer); node terminals after the NICs.  Failure sites
    are the hubs then the NICs in vertex order — the exact component
    indexing of :func:`repro.analysis.montecarlo.sample_failure_matrix` —
    so failure matrices and rank matrices are interchangeable between the
    specialized and generic kernels.

    Graph connectivity of terminals 0 and 1 on this graph is *provably*
    the DRS "direct or two-hop" predicate: with only two hubs, any longer
    path revisits a hub, and a revisited hub shortcuts to a direct or
    one-intermediate route.  The oracle test checks the equivalence
    exhaustively; the attached fast paths make the generic API dispatch to
    the existing hand-derived kernels (byte-identical streams).
    """
    from repro.analysis import exact
    from repro.analysis.montecarlo import connectivity_levels, pair_connected_vec

    n = size
    if n < 2:
        raise ValueError(f"dual-hub cluster needs size >= 2 nodes, got {n}")
    roles = ["hub", "hub"] + ["nic"] * (2 * n) + ["node"] * n
    node0 = 2 + 2 * n
    edges: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(2):
            nic = 2 + 2 * i + j
            edges.append((node0 + i, nic))
            edges.append((nic, j))
    name = f"dual-hub(n={n})"

    def stratified(**kwargs: Any):
        # hub-state stratification with closed-form strata (and optionally
        # the endpoint-dead control variate) — docs/model.md §11
        from repro.analysis.variance import stratified_grid

        return stratified_grid(n, topology=name, **kwargs)

    return Topology(
        name=name,
        family="dual-hub",
        roles=tuple(roles),
        edges=tuple(edges),
        failure_sites=tuple(range(2 + 2 * n)),
        terminals=tuple(range(node0, node0 + n)),
        predicate=PairConnected(0, 1),
        meta={"n": n},
        connected_fn=pair_connected_vec,
        levels_fn=connectivity_levels,
        exact_fn=lambda f: exact.success_probability(n, f),
        strata_sites=(0, 1),
        stratified_fn=stratified,
    )


def k_hub_cluster(size: int = 8, hubs: int = 3, nics: int | None = None) -> Topology:
    """Generalized cluster: N nodes, k hubs, one NIC per node per hub.

    ``nics`` (per node) defaults to ``hubs``; NIC ``j`` of a node attaches
    to hub ``j`` (``j < hubs``).  Failure sites: hubs ``0..k-1``, then NIC
    ``hubs + nics*i + j`` — the natural extension of the dual-hub order.
    """
    n = size
    if n < 2:
        raise ValueError(f"k-hub cluster needs size >= 2 nodes, got {n}")
    if hubs < 1:
        raise ValueError(f"need hubs >= 1, got {hubs}")
    nics = hubs if nics is None else nics
    if not 1 <= nics <= hubs:
        raise ValueError(f"nics per node must be in [1, hubs={hubs}], got {nics}")
    roles = ["hub"] * hubs + ["nic"] * (nics * n) + ["node"] * n
    node0 = hubs + nics * n
    edges: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(nics):
            nic = hubs + nics * i + j
            edges.append((node0 + i, nic))
            edges.append((nic, j))
    return Topology(
        name=f"khub(n={n},hubs={hubs},nics={nics})",
        family="khub",
        roles=tuple(roles),
        edges=tuple(edges),
        failure_sites=tuple(range(hubs + nics * n)),
        terminals=tuple(range(node0, node0 + n)),
        predicate=PairConnected(0, 1),
        meta={"n": n, "hubs": hubs, "nics": nics},
        strata_sites=tuple(range(hubs)),
    )


def fat_tree_two_level(size: int = 8, leaves: int = 4, spines: int = 2) -> Topology:
    """Two-level leaf/spine fabric with fragile per-host NICs.

    Hosts (terminals) round-robin over the leaves, each through its own
    fragile NIC; every leaf uplinks to every spine.  Failure sites: host
    NICs in host order, then leaves, then spines.  The default pair is
    hosts 0 and 1, which land on *different* leaves, so the spine layer is
    on the success path.
    """
    hosts = size
    if hosts < 2:
        raise ValueError(f"fat tree needs size >= 2 hosts, got {hosts}")
    if leaves < 2 or spines < 1:
        raise ValueError(f"need leaves >= 2 and spines >= 1, got {leaves}/{spines}")
    roles = ["nic"] * hosts + ["leaf"] * leaves + ["spine"] * spines + ["host"] * hosts
    leaf0, spine0, host0 = hosts, hosts + leaves, hosts + leaves + spines
    edges: list[tuple[int, int]] = []
    for h in range(hosts):
        edges.append((host0 + h, h))                 # host -- its NIC
        edges.append((h, leaf0 + h % leaves))        # NIC -- leaf (round-robin)
    for leaf in range(leaves):
        for spine in range(spines):
            edges.append((leaf0 + leaf, spine0 + spine))
    return Topology(
        name=f"fattree2(hosts={hosts},leaves={leaves},spines={spines})",
        family="fattree2",
        roles=tuple(roles),
        edges=tuple(edges),
        failure_sites=tuple(range(hosts + leaves + spines)),
        terminals=tuple(range(host0, host0 + hosts)),
        predicate=PairConnected(0, 1),
        meta={"hosts": hosts, "leaves": leaves, "spines": spines},
        strata_sites=tuple(range(spine0, spine0 + spines)),
    )


def fat_tree_three_level(
    size: int = 8,
    pods: int = 2,
    leaves_per_pod: int = 2,
    aggs_per_pod: int = 2,
    cores: int = 2,
) -> Topology:
    """Three-level fat tree: pods of leaf+agg switches under a core layer.

    Hosts round-robin over all leaves (pod-major), each through a fragile
    NIC; within a pod every leaf connects to every agg; every agg connects
    to every core.  Failure sites: host NICs, then leaves (pod-major),
    aggs, cores.  The default pair is host 0 and the *last* host, which
    live in different pods, so survivability exercises the full
    leaf-agg-core-agg-leaf path.
    """
    hosts = size
    if hosts < 2:
        raise ValueError(f"fat tree needs size >= 2 hosts, got {hosts}")
    if pods < 2 or leaves_per_pod < 1 or aggs_per_pod < 1 or cores < 1:
        raise ValueError(
            f"need pods >= 2 and positive switch counts, got pods={pods}, "
            f"leaves_per_pod={leaves_per_pod}, aggs_per_pod={aggs_per_pod}, cores={cores}"
        )
    leaves = pods * leaves_per_pod
    aggs = pods * aggs_per_pod
    roles = (
        ["nic"] * hosts + ["leaf"] * leaves + ["agg"] * aggs + ["core"] * cores
        + ["host"] * hosts
    )
    leaf0, agg0 = hosts, hosts + leaves
    core0, host0 = hosts + leaves + aggs, hosts + leaves + aggs + cores
    edges: list[tuple[int, int]] = []
    for h in range(hosts):
        edges.append((host0 + h, h))
        edges.append((h, leaf0 + h % leaves))
    for pod in range(pods):
        for leaf in range(leaves_per_pod):
            for agg in range(aggs_per_pod):
                edges.append((leaf0 + pod * leaves_per_pod + leaf, agg0 + pod * aggs_per_pod + agg))
    for agg in range(aggs):
        for core in range(cores):
            edges.append((agg0 + agg, core0 + core))
    # hosts round-robin pod-major over leaves: host 0 sits in pod 0 and host
    # hosts-1 in the last leaf touched, so the default pair crosses pods
    # whenever hosts >= leaves is not required — pick the last host's leaf
    # explicitly to guarantee distinct pods for any hosts >= 2.
    return Topology(
        name=(
            f"fattree3(hosts={hosts},pods={pods},leaves={leaves_per_pod},"
            f"aggs={aggs_per_pod},cores={cores})"
        ),
        family="fattree3",
        roles=tuple(roles),
        edges=tuple(edges),
        failure_sites=tuple(range(hosts + leaves + aggs + cores)),
        terminals=tuple(range(host0, host0 + hosts)),
        predicate=PairConnected(0, min(leaves - 1, hosts - 1)),
        meta={
            "hosts": hosts,
            "pods": pods,
            "leaves_per_pod": leaves_per_pod,
            "aggs_per_pod": aggs_per_pod,
            "cores": cores,
        },
        strata_sites=tuple(range(core0, core0 + cores)),
    )


def multi_cluster_wan(size: int = 4, clusters: int = 3, hubs: int = 2) -> Topology:
    """Dual-hub clusters joined by per-cluster WAN routers in a ring.

    Each cluster is a ``hubs``-backplane cluster of ``size`` nodes; each
    cluster's hubs all attach to one fragile WAN router, and the routers
    form a ring (a chord-free WAN backbone — two router-disjoint paths
    between any cluster pair once ``clusters >= 3``).  Failure sites:
    cluster 0's hubs and NICs, cluster 1's, ..., then the WAN routers.
    The default pair spans clusters 0 and 1, so survivability compounds
    intra-cluster and WAN failures.
    """
    n = size
    if n < 1:
        raise ValueError(f"multi-cluster needs size >= 1 node per cluster, got {n}")
    if clusters < 2:
        raise ValueError(f"need clusters >= 2, got {clusters}")
    if hubs < 1:
        raise ValueError(f"need hubs >= 1, got {hubs}")
    per_cluster = hubs + hubs * n  # hubs then one NIC per node per hub
    roles: list[str] = []
    for _ in range(clusters):
        roles += ["hub"] * hubs + ["nic"] * (hubs * n)
    wan0 = clusters * per_cluster
    roles += ["wan"] * clusters
    node0 = wan0 + clusters
    roles += ["node"] * (clusters * n)
    edges: list[tuple[int, int]] = []
    for c in range(clusters):
        base = c * per_cluster
        for i in range(n):
            for j in range(hubs):
                nic = base + hubs + hubs * i + j
                edges.append((node0 + c * n + i, nic))
                edges.append((nic, base + j))
        for j in range(hubs):
            edges.append((base + j, wan0 + c))
    for c in range(clusters):
        peer = (c + 1) % clusters
        if peer != c and (wan0 + peer, wan0 + c) not in edges:
            edges.append((wan0 + c, wan0 + peer))
    return Topology(
        name=f"multicluster(clusters={clusters},n={n},hubs={hubs})",
        family="multicluster",
        roles=tuple(roles),
        edges=tuple(edges),
        failure_sites=tuple(range(wan0 + clusters)),
        terminals=tuple(range(node0, node0 + clusters * n)),
        predicate=PairConnected(0, n),  # first node of cluster 0 vs of cluster 1
        meta={"n": n, "clusters": clusters, "hubs": hubs},
        strata_sites=tuple(range(wan0, wan0 + clusters)),
    )


#: family name -> size-parameterized builder (the ``--topology`` universe)
TOPOLOGY_FAMILIES: dict[str, Callable[..., Topology]] = {
    "dual-hub": dual_hub_cluster,
    "khub": k_hub_cluster,
    "fattree2": fat_tree_two_level,
    "fattree3": fat_tree_three_level,
    "multicluster": multi_cluster_wan,
}


def topology_catalog() -> list[str]:
    """The family names ``build_topology`` accepts, in listing order."""
    return list(TOPOLOGY_FAMILIES)


def parse_topology_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``"family:key=value,key=value"`` into (family, params).

    Raises ``ValueError`` with the known families for an unknown family or
    a malformed parameter list — the validation behind ``--topology``.
    """
    family, _, raw = spec.partition(":")
    family = family.strip()
    if family not in TOPOLOGY_FAMILIES:
        raise ValueError(
            f"unknown topology family {family!r}; have {', '.join(topology_catalog())}"
        )
    params: dict[str, Any] = {}
    if raw:
        for item in raw.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(f"malformed topology parameter {item!r} in {spec!r}")
            if key not in _INT_PARAMS and key != "size":
                raise ValueError(
                    f"unknown topology parameter {key!r} in {spec!r}; "
                    f"have size, {', '.join(sorted(_INT_PARAMS))}"
                )
            try:
                params[key] = int(value)
            except ValueError:
                raise ValueError(f"topology parameter {key!r} needs an integer, got {value!r}")
    return family, params


def build_topology(spec: str, size: int | None = None) -> Topology:
    """Build one topology from a spec string, optionally overriding size.

    ``size`` (when given) wins over a ``size=`` in the spec — the sweep
    experiments hold the family spec fixed and vary size per grid point.
    """
    family, params = parse_topology_spec(spec)
    if size is not None:
        params["size"] = size
    builder = TOPOLOGY_FAMILIES[family]
    try:
        return builder(**params)
    except TypeError as exc:
        raise ValueError(f"topology spec {spec!r}: {exc}") from None

"""End-to-end --resume: SIGKILL a quick sweep mid-run, resume, diff the bytes."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import runner

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

FIGURE2_ARGS = ["figure2", "--quick", "--heartbeat", "0"]


def _run_killed(out_dir, crash_after=50):
    """Run quick figure2 in a subprocess that SIGKILLs itself mid-checkpoint."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["DRS_ENGINE_CRASH_AFTER"] = str(crash_after)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *FIGURE2_ARGS, "--out", str(out_dir)],
        env=env,
        capture_output=True,
        timeout=300,
    )
    return proc


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    out = tmp_path_factory.mktemp("baseline")
    assert runner.main([*FIGURE2_ARGS, "--out", str(out)]) == 0
    return out


def test_killed_then_resumed_run_is_byte_identical(tmp_path, baseline):
    out = tmp_path / "interrupted"
    proc = _run_killed(out)
    assert proc.returncode != 0  # SIGKILL'd (-9, or 137 through a shell)
    checkpoint = out / "figure2.checkpoint.jsonl"
    assert checkpoint.exists()
    completed_before = len(checkpoint.read_text().splitlines())
    assert completed_before == 50  # died exactly at the injection point
    assert not (out / "figure2_montecarlo.csv").exists()  # reduce never ran

    assert runner.main(["--resume", str(out), "--heartbeat", "0"]) == 0
    for artifact in ("figure2_montecarlo.csv", "figure2_equation1.csv", "figure2_endpoints.csv"):
        assert (out / artifact).read_bytes() == (baseline / artifact).read_bytes()

    manifest = json.loads((out / "figure2.manifest.json").read_text())
    fault = manifest["extra"]["fault_tolerance"]
    assert len(fault["resumed"]) == completed_before
    assert fault["quarantined"] == []


def test_resume_requires_run_json(tmp_path):
    with pytest.raises(SystemExit):
        runner.main(["--resume", str(tmp_path / "nothing-here")])


def test_resume_rejects_conflicting_overrides(tmp_path):
    with pytest.raises(SystemExit):
        runner.main(["--resume", str(tmp_path), "figure2"])
    with pytest.raises(SystemExit):
        runner.main(["--resume", str(tmp_path), "--seed", "4"])


def test_run_json_records_the_invocation(tmp_path, baseline):
    state = json.loads((baseline / "run.json").read_text())
    assert state["names"] == ["figure2"]
    assert state["quick"] is True
    assert state["fail_fast"] is False
    assert state["retries"] == 2


def test_no_checkpoint_skips_the_stream(tmp_path):
    out = tmp_path / "nochk"
    assert runner.main([*FIGURE2_ARGS, "--out", str(out), "--no-checkpoint"]) == 0
    assert not (out / "figure2.checkpoint.jsonl").exists()
    # and resuming from it is refused
    with pytest.raises(SystemExit):
        runner.main(["--resume", str(out)])


def test_retries_flag_validation(tmp_path):
    with pytest.raises(SystemExit):
        runner.main(["--retries", "-1", "--out", str(tmp_path), "figure2"])
    with pytest.raises(SystemExit):
        runner.main(["--job-timeout", "0", "--out", str(tmp_path), "figure2"])

"""Per-job fault tolerance: retry policies, timeouts, and quarantine.

A multi-hour sweep must not lose everything to one flaky job.  This module
gives the executors a :class:`RetryPolicy` — per-job attempt budget,
exponential backoff with deterministic jitter, and a per-job wall-clock
timeout — and :func:`execute_job`, the single code path both the serial
executor and the process-pool workers run a job through.

Determinism contract
--------------------

Retrying never changes results: a job's random stream is its spawned
``SeedSequence`` (see :mod:`repro.engine.jobs`), recreated identically on
every attempt, so a job that succeeds on attempt 3 returns byte-identical
output to one that succeeds on attempt 1.  Backoff jitter draws from a
*separate* stream spawned from ``(root seed, experiment, job name,
"backoff")`` — it shapes sleep times, never values.

Jobs that fail beyond the retry budget are **quarantined**: they come back
as failed :class:`JobOutcome` records instead of killing the run, and the
manifest plus the ``engine_*`` metrics record what happened.  A policy
with ``quarantine=False`` restores the legacy fail-fast behavior
(:data:`FAIL_FAST` is exactly that, with a single attempt).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Any, Callable

import numpy as np

from repro.obs.flightrecorder import flight_recorder
from repro.obs.metrics import current_registry
from repro.obs.progress import heartbeat
from repro.simkit.rng import seed_fingerprint, spawn_seedseq


class JobError(RuntimeError):
    """A job failed; carries the job name for attribution across processes."""

    def __init__(self, experiment: str, job_name: str, cause: BaseException | str) -> None:
        super().__init__(f"job {job_name!r} of experiment {experiment!r} failed: {cause!r}")
        self.experiment = experiment
        self.job_name = job_name
        self.cause = cause if isinstance(cause, str) else repr(cause)

    def __reduce__(self):
        # default exception pickling replays __init__ with ``args`` (the
        # formatted message) — a signature mismatch that would kill the pool's
        # result pipe; rebuild from the stored fields instead
        return (type(self), (self.experiment, self.job_name, self.cause))


class JobTimeoutError(JobError):
    """A job exceeded its per-attempt wall-clock budget."""

    def __init__(self, experiment: str, job_name: str, timeout_s: float) -> None:
        super().__init__(experiment, job_name, f"timed out after {timeout_s:g}s")
        self.timeout_s = timeout_s

    def __reduce__(self):
        return (type(self), (self.experiment, self.job_name, self.timeout_s))


@dataclass(frozen=True)
class RetryPolicy:
    """How hard an executor tries before giving a job up.

    ``max_attempts`` bounds total attempts (1 = no retries).  A failed
    attempt ``k`` sleeps ``min(backoff_max_s, backoff_base_s *
    backoff_factor**(k-1))`` scaled by ``1 + jitter_frac * u`` where ``u``
    is drawn from the job's deterministic backoff stream.  ``timeout_s``
    caps each attempt's wall clock (``None`` = unlimited).  With
    ``quarantine`` the run continues past exhausted jobs; without it the
    final failure raises :class:`JobError` (legacy fail-fast).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter_frac: float = 0.5
    timeout_s: float | None = None
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.jitter_frac < 0:
            raise ValueError(f"jitter_frac must be non-negative, got {self.jitter_frac}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")

    def backoff_s(self, failures: int, rng: np.random.Generator) -> float:
        """Sleep before the next attempt, after ``failures`` failed ones."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        base = min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor ** (failures - 1))
        return base * (1.0 + self.jitter_frac * float(rng.random()))


#: Legacy executor semantics: one attempt, first failure raises.
FAIL_FAST = RetryPolicy(max_attempts=1, backoff_base_s=0.0, jitter_frac=0.0, quarantine=False)


@dataclass
class JobOutcome:
    """What running one job under a policy produced (picklable)."""

    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 1
    timed_out: bool = False
    elapsed_s: float = 0.0


def _call_with_timeout(
    fn: Callable[[dict[str, Any], np.random.SeedSequence], Any],
    params: dict[str, Any],
    seed_seq: np.random.SeedSequence,
    timeout_s: float | None,
    experiment: str,
    job_name: str,
) -> Any:
    """Run ``fn`` with an optional wall-clock budget.

    The timeout runs the call on a daemon thread and abandons it on expiry
    — the thread keeps running until it returns on its own (Python cannot
    kill threads), but the caller regains control and can retry or
    quarantine.  Workers recycled at pool shutdown clean the strays up.
    """
    if timeout_s is None:
        return fn(params, seed_seq)
    box: dict[str, Any] = {}

    def target() -> None:
        try:
            box["value"] = fn(params, seed_seq)
        except BaseException as exc:  # re-raised on the calling thread below
            box["error"] = exc

    thread = threading.Thread(target=target, name=f"job-{job_name}", daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise JobTimeoutError(experiment, job_name, timeout_s)
    if "error" in box:
        raise box["error"]
    return box["value"]


def execute_job(
    experiment: str,
    root_seed: int,
    job: Any,
    seed_seq: np.random.SeedSequence,
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> JobOutcome:
    """Run one job under ``policy``; the shared serial/worker code path.

    Every attempt recreates the job's stream from the same ``seed_seq``,
    so retried successes are byte-identical to first-try successes.
    Publishes ``engine_job_attempts_total`` / ``engine_job_retries_total``
    / ``engine_job_timeouts_total`` / ``engine_jobs_quarantined_total``
    into the current registry, retry/quarantine incident counts into
    the current heartbeat, and per-attempt lifecycle events — with wall/CPU
    time and the job's seed fingerprint — into the current flight recorder
    (:mod:`repro.obs.flightrecorder`), when one is installed.
    """
    registry = current_registry()
    recorder = flight_recorder()
    backoff_rng: np.random.Generator | None = None
    started = perf_counter()
    started_cpu = process_time()
    last_error = ""
    timed_out = False
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            registry.counter("engine_job_retries_total").add(1)
            hb = heartbeat()
            if hb is not None:
                hb.add(0, retries=1)
            if backoff_rng is None:
                backoff_rng = np.random.default_rng(
                    spawn_seedseq(root_seed, experiment, job.name, "backoff")
                )
            backoff = policy.backoff_s(attempt - 1, backoff_rng)
            if recorder is not None:
                recorder.emit("job.retry", job=job.name, attempt=attempt, backoff_s=backoff)
            sleep(backoff)
        registry.counter("engine_job_attempts_total").add(1)
        if recorder is not None:
            recorder.emit("job.attempt", job=job.name, attempt=attempt)
        try:
            value = _call_with_timeout(
                job.fn, job.params, seed_seq, policy.timeout_s, experiment, job.name
            )
            elapsed = perf_counter() - started
            if recorder is not None:
                recorder.emit(
                    "job.completed",
                    job=job.name,
                    ok=True,
                    attempts=attempt,
                    wall_s=round(elapsed, 6),
                    cpu_s=round(process_time() - started_cpu, 6),
                    seed_fingerprint=seed_fingerprint(seed_seq),
                )
            return JobOutcome(
                name=job.name, ok=True, value=value, attempts=attempt,
                elapsed_s=elapsed,
            )
        except JobTimeoutError as exc:
            timed_out = True
            last_error = str(exc)
            registry.counter("engine_job_timeouts_total").add(1)
            if recorder is not None:
                recorder.emit(
                    "job.timeout", job=job.name, attempt=attempt, timeout_s=policy.timeout_s
                )
        except Exception as exc:
            timed_out = False
            last_error = repr(exc)
    if not policy.quarantine:
        raise JobError(experiment, job.name, last_error)
    registry.counter("engine_jobs_quarantined_total").add(1)
    hb = heartbeat()
    if hb is not None:
        hb.add(0, quarantined=1)
    elapsed = perf_counter() - started
    if recorder is not None:
        recorder.emit(
            "job.quarantined",
            job=job.name,
            attempts=policy.max_attempts,
            timed_out=timed_out,
            error=last_error,
            wall_s=round(elapsed, 6),
            cpu_s=round(process_time() - started_cpu, 6),
        )
    return JobOutcome(
        name=job.name, ok=False, error=last_error, attempts=policy.max_attempts,
        timed_out=timed_out, elapsed_s=elapsed,
    )

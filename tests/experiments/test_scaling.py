"""Tests for the deployed-range scaling experiment and the config solver."""

import pytest

from repro.drs import DrsConfig
from repro.experiments import scaling


def test_for_deployment_meets_target():
    cfg = DrsConfig.for_deployment(10, detection_target_s=1.0)
    assert cfg.detection_bound_s() <= 1.0 + 1e-9
    assert cfg.bandwidth_budget <= 0.15


def test_for_deployment_infeasible_explains():
    with pytest.raises(ValueError, match="infeasible"):
        DrsConfig.for_deployment(200, detection_target_s=0.5, budget_cap=0.10)


def test_for_deployment_floor_and_cap_validation():
    with pytest.raises(ValueError, match="floor"):
        DrsConfig.for_deployment(10, detection_target_s=0.01)
    with pytest.raises(ValueError, match="budget_cap"):
        DrsConfig.for_deployment(10, detection_target_s=1.0, budget_cap=0)


def test_for_deployment_boundary_matches_figure1():
    # the solver's largest feasible N should track the Figure-1 read-off:
    # detection 1s at retries=2 means sweep (1-0.02)/2 = 0.49s, so the
    # comparable max_nodes_within(0.49, 0.15)
    from repro.analysis import max_nodes_within

    n = 2
    while True:
        try:
            DrsConfig.for_deployment(n, 1.0, budget_cap=0.15)
            n += 1
        except ValueError:
            break
    largest = n - 1
    assert largest == max_nodes_within(0.49, 0.15)


def test_scaling_experiment_shape():
    result = scaling.run(n_values=(4, 8), sweep_period_s=0.3)
    rows = result.tables["scaling"].rows
    assert len(rows) == 2
    latencies = [r[1] for r in rows]
    loads = [r[2] for r in rows]
    # latency roughly constant; load grows superlinearly with N
    assert abs(latencies[0] - latencies[1]) < 0.6
    assert loads[1] > loads[0] * 2.5
    feasible = result.tables["feasibility"].rows[0]
    assert feasible[2] > 12  # the deployed range is comfortably feasible

"""DRS tunables.

The deployment-relevant trade-off lives here: ``sweep_period_s`` (how often
every link is checked) against ``bandwidth_budget`` (how much of the segment
DRS probing may consume).  Figure 1 of the paper is exactly this trade-off;
:func:`DrsConfig.paced_for` derives the sweep period from a budget using the
same calibration as :mod:`repro.analysis.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.netsim.frames import wire_bytes
from repro.protocols.packet import ICMP_HEADER_BYTES, IP_HEADER_BYTES

#: Wire bytes of one echo request (and of its reply): the 84-byte constant.
PROBE_WIRE_BYTES = wire_bytes(IP_HEADER_BYTES + ICMP_HEADER_BYTES)


@dataclass(frozen=True)
class DrsConfig:
    """Configuration for one cluster's DRS daemons.

    Attributes
    ----------
    sweep_period_s:
        Target time to check every monitored link once.  Each link is
        probed once per sweep and DOWN requires ``probe_retries``
        consecutive misses, so worst-case detection latency is roughly
        ``probe_retries * sweep_period_s + probe_timeout_s``.
    probe_timeout_s:
        How long the monitor waits for one echo reply.
    probe_retries:
        Consecutive probe failures required to declare a link DOWN
        (guards against a single lost frame on a healthy link).
    discovery_timeout_s:
        How long the failover engine collects route offers after
        broadcasting a discovery request.
    path_check_period_s:
        While a two-hop repair route is active, the daemon re-validates it
        end-to-end this often (routed ping); a failed check re-triggers
        discovery.
    bandwidth_budget:
        Informational record of the probe budget this config was derived
        from (None when the sweep period was set directly).
    notify_peers:
        Triggered-update extension: the first daemon to declare a link DOWN
        broadcasts a :class:`~repro.drs.messages.LinkDownNotification`, and
        recipients recheck that link immediately instead of waiting for
        their own sweep.  Off by default (the published protocol relies on
        independent detection); the ablation benchmarks quantify the gain.
    """

    sweep_period_s: float = 1.0
    probe_timeout_s: float = 0.02
    probe_retries: int = 2
    discovery_timeout_s: float = 0.05
    path_check_period_s: float = 1.0
    bandwidth_budget: float | None = None
    notify_peers: bool = False

    def __post_init__(self) -> None:
        if self.sweep_period_s <= 0:
            raise ValueError("sweep_period_s must be positive")
        if self.probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive")
        if self.probe_retries < 1:
            raise ValueError("probe_retries must be >= 1")
        if self.discovery_timeout_s <= 0:
            raise ValueError("discovery_timeout_s must be positive")

    @staticmethod
    def paced_for(
        n_nodes: int,
        bandwidth_budget: float,
        bandwidth_bps: float = 100e6,
        **overrides,
    ) -> "DrsConfig":
        """Derive the sweep period from a probe-bandwidth budget.

        One sweep exchanges an echo request + reply between every ordered
        node pair on each network: ``n(n-1)`` transactions of
        ``2 * PROBE_WIRE_BYTES`` per segment.  Budgeting a fraction ``rho``
        of the segment gives ``sweep = n(n-1) * 2 * probe_bits / (rho * bw)``
        — the Figure-1 response-time model.
        """
        if not 0 < bandwidth_budget <= 1:
            raise ValueError(f"bandwidth_budget must be in (0, 1], got {bandwidth_budget}")
        if n_nodes < 2:
            raise ValueError("n_nodes must be >= 2")
        probe_bits = 2 * PROBE_WIRE_BYTES * 8
        sweep = n_nodes * (n_nodes - 1) * probe_bits / (bandwidth_budget * bandwidth_bps)
        cfg = DrsConfig(sweep_period_s=sweep, bandwidth_budget=bandwidth_budget)
        return replace(cfg, **overrides) if overrides else cfg

    @staticmethod
    def for_deployment(
        n_nodes: int,
        detection_target_s: float,
        budget_cap: float = 0.15,
        bandwidth_bps: float = 100e6,
        probe_retries: int = 2,
        probe_timeout_s: float = 0.02,
    ) -> "DrsConfig":
        """Solve for a config meeting a detection-latency target under a budget.

        Inverts the Figure-1 trade-off: the target fixes the sweep period
        (``(target - timeout) / retries``), which fixes the probe bandwidth;
        if that exceeds ``budget_cap`` (the paper allows up to 15%), the
        deployment is infeasible at this cluster size and a ``ValueError``
        explains by how much.
        """
        if detection_target_s <= probe_retries * probe_timeout_s:
            raise ValueError(
                f"detection target {detection_target_s}s is below the floor "
                f"{probe_retries * probe_timeout_s}s set by probe timeouts alone"
            )
        if not 0 < budget_cap <= 1:
            raise ValueError(f"budget_cap must be in (0, 1], got {budget_cap}")
        sweep = (detection_target_s - probe_timeout_s) / probe_retries
        probe_bits = 2 * PROBE_WIRE_BYTES * 8
        required_budget = n_nodes * (n_nodes - 1) * probe_bits / (sweep * bandwidth_bps)
        if required_budget > budget_cap:
            raise ValueError(
                f"infeasible: detecting within {detection_target_s}s on {n_nodes} nodes "
                f"needs {required_budget:.1%} of bandwidth (cap {budget_cap:.0%}); "
                f"shrink the cluster, relax the target, or raise the cap"
            )
        return DrsConfig(
            sweep_period_s=sweep,
            probe_timeout_s=probe_timeout_s,
            probe_retries=probe_retries,
            bandwidth_budget=required_budget,
        )

    def detection_bound_s(self) -> float:
        """Worst-case time from failure to DOWN declaration.

        A failure just after a link's probe waits almost a full sweep for
        the next probe, and each of the ``probe_retries`` confirming misses
        is one sweep apart; the last miss is declared after its timeout.
        """
        return self.probe_retries * self.sweep_period_s + self.probe_timeout_s

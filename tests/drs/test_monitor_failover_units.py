"""Unit-level tests for monitor internals and failover edge paths."""

import pytest

from repro.drs import LinkState, install_drs
from repro.netsim import build_dual_backplane_cluster
from repro.protocols import install_stacks
from repro.simkit import Simulator

from tests.drs.conftest import FAST, routed_ping_ok


def _rig(n=5):
    sim = Simulator()
    cluster = build_dual_backplane_cluster(sim, n)
    stacks = install_stacks(cluster)
    deployment = install_drs(cluster, stacks, FAST)
    sim.run(until=1.0)
    return sim, cluster, stacks, deployment


def test_monitor_start_twice_raises():
    sim, cluster, stacks, deployment = _rig()
    with pytest.raises(RuntimeError):
        deployment.daemons[0].monitor.start()


def test_daemon_start_is_idempotent_after_stop():
    sim, cluster, stacks, deployment = _rig()
    daemon = deployment.daemons[0]
    daemon.stop()
    assert not daemon.running
    daemon.start()
    assert daemon.running
    sim.run(until=sim.now + 0.5)
    assert daemon.monitor.probes_sent.value > 0


def test_immediate_recheck_confirms_up_link():
    sim, cluster, stacks, deployment = _rig()
    results = []
    deployment.daemons[0].monitor.immediate_recheck(1, 0, results.append)
    sim.run(until=sim.now + 0.1)
    assert results == [True]
    assert deployment.daemons[0].table.is_up(1, 0)


def test_immediate_recheck_detects_down_link_at_threshold_one():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic1.0")
    # stop the periodic monitor so only the recheck observes the failure
    deployment.daemons[0].monitor.stop()
    results = []
    deployment.daemons[0].monitor.immediate_recheck(1, 0, results.append)
    sim.run(until=sim.now + 0.1)
    assert results == [False]
    assert deployment.daemons[0].table.link(1, 0).state is LinkState.DOWN


def test_path_check_catches_silent_blackhole():
    sim, cluster, stacks, deployment = _rig()
    # force a two-hop repair 0 -> 1
    cluster.faults.fail("nic0.1")
    cluster.faults.fail("nic1.0")
    sim.run(until=sim.now + 2.0)
    engine = deployment.daemons[0].failover
    assert 1 in engine.repaired_via
    router = engine.repaired_via[1]
    # sabotage: silently remove the volunteer's pinned leg and freeze its
    # daemon, so only the origin's path checker can notice the black hole
    deployment.daemons[router].stop()
    from repro.protocols import RouteSource

    stacks[router].table.withdraw(1, RouteSource.DRS)
    stacks[router].table.withdraw(1, RouteSource.STATIC)
    sim.run(until=sim.now + 3 * FAST.path_check_period_s + 1.0)
    assert cluster.trace.count("drs-path-check-failed") >= 1
    # rediscovery restored connectivity (possibly re-pinning the same
    # volunteer's leg via a fresh RouteInstallRequest)
    assert stacks[0].table.lookup(1) is not None
    assert routed_ping_ok(sim, stacks, 0, 1)


def test_probe_bytes_accounting_matches_probe_count():
    sim, cluster, stacks, deployment = _rig()
    daemon = deployment.daemons[0]
    assert daemon.monitor.probe_bytes.value == 84 * daemon.monitor.probes_sent.value


def test_detect_trace_has_network_field():
    sim, cluster, stacks, deployment = _rig()
    cluster.faults.fail("nic2.0")  # primary network: breaks active routes
    sim.run(until=sim.now + 1.0)
    detects = cluster.trace.entries("drs-detect")
    assert detects
    assert all(e.fields["network"] == 0 for e in detects)


def test_secondary_network_failure_needs_no_repair():
    # a DOWN link on the idle second network updates state but must not
    # generate detect/repair traffic (the active route is unaffected)
    sim, cluster, stacks, deployment = _rig()
    before = cluster.trace.count("drs-repair")
    cluster.faults.fail("nic2.1")
    sim.run(until=sim.now + 1.0)
    assert deployment.daemons[0].table.link(2, 1).state.value == "down"
    assert cluster.trace.count("drs-detect") == 0
    assert cluster.trace.count("drs-repair") == before
    # the active route is untouched and still works
    assert stacks[0].table.lookup(2).network == 0
    assert routed_ping_ok(sim, stacks, 0, 2)

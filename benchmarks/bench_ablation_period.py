"""Ablation bench — the proactive continuum: sweep period vs detection.

"If the links were not checked frequently, the DRS would become equivalent
to a reactive routing protocol."  Measured on the live DES: longer sweep
periods cost less probe bandwidth and detect failures later, tracing the
trade-off Figure 1 prices.
"""

from repro.experiments.ablations import measured_detection_latency


def test_sweep_period_tradeoff(once, capsys):
    def sweep():
        return {period: measured_detection_latency(period, n=5, repeats=3) for period in (0.25, 1.0, 4.0)}

    results = once(sweep)
    with capsys.disabled():
        print()
        for period, (latency, overhead) in results.items():
            print(f"  sweep={period:.2f}s: detect+repair={latency:.2f}s probe={overhead / 1e3:.1f}kb/s")
    latencies = [results[p][0] for p in (0.25, 1.0, 4.0)]
    overheads = [results[p][1] for p in (0.25, 1.0, 4.0)]
    assert latencies == sorted(latencies)                 # check less -> detect later
    assert overheads == sorted(overheads, reverse=True)   # check less -> cheaper
    # detection stays within the configured bound: retries * sweep + timeout
    for period in (0.25, 1.0, 4.0):
        assert results[period][0] <= 2 * period + 0.3

"""Curve-level job granularity: one sweep-kernel job per N, not per (N, f).

The Monte Carlo sweeps decompose into jobs whose values are whole
``{str(f): estimate}`` rows served by the common-random-numbers kernel, so
the plans shrink by the length of the f-grid while every CSV keeps its
schema and the per-job seeding contract keeps subsets reproducible.
"""

import math

import numpy as np

from repro.engine import ParallelExecutor, curve_value
from repro.experiments import crossovers, figure2, figure3


def test_curve_value_reads_rows_and_tolerates_quarantine():
    values = {"mc/n=5": {"2": 0.75, "3": 0.5}, "mc/n=6": "not-a-row"}
    assert curve_value(values, "mc/n=5", "2") == 0.75
    assert math.isnan(curve_value(values, "mc/n=5", "9"))  # f outside the row
    assert math.isnan(curve_value(values, "mc/n=7", "2"))  # quarantined job
    assert math.isnan(curve_value(values, "mc/n=6", "2"))  # malformed value
    assert curve_value(values, "mc/n=7", "2", default=0.0) == 0.0


def test_figure2_plan_is_one_job_per_n():
    plan = figure2.build_plan(f_values=(2, 3, 5), n_max=20, mc_iterations=100)
    assert [job.name for job in plan.jobs] == [f"mc/n={n}" for n in range(3, 21)]
    # each job carries only the f values valid at its N (f < N)
    by_name = {job.name: job.params for job in plan.jobs}
    assert by_name["mc/n=3"]["fs"] == [2]
    assert by_name["mc/n=5"]["fs"] == [2, 3]
    assert by_name["mc/n=20"]["fs"] == [2, 3, 5]


def test_figure2_job_count_shrank_by_the_f_grid():
    plan = figure2.build_plan(mc_iterations=100)  # paper grid: f=2..10, N<64
    per_point = sum(63 - max(2, f + 1) + 1 for f in range(2, 11))
    assert len(plan.jobs) == 61  # one per N in [3, 63]
    assert per_point / len(plan.jobs) > 8  # was 519 jobs before the kernel


def test_figure3_plan_is_one_job_per_iteration_count():
    plan = figure3.build_plan(f_values=(2, 3), iteration_grid=(10, 100), n_max=20)
    assert [job.name for job in plan.jobs] == ["mad/iters=10", "mad/iters=100"]


def test_figure2_montecarlo_row_values_are_checkpointable():
    from repro.engine.checkpoint import decode_value, encode_value

    plan = figure2.build_plan(f_values=(2, 3), n_max=8, mc_iterations=50)
    job = plan.jobs[0]
    row = job.fn(job.params, plan.job_seedseq(job))
    assert decode_value(encode_value(row)) == row
    assert all(isinstance(k, str) for k in row)


def test_figure2_serial_and_pool_rows_byte_identical():
    serial = figure2.run(f_values=(2, 3), n_max=12, mc_iterations=300, seed=9)
    pooled = figure2.run(
        f_values=(2, 3), n_max=12, mc_iterations=300, seed=9, executor=ParallelExecutor(workers=2)
    )
    for key in ("sim f=2", "sim f=3"):
        assert (
            serial.series["montecarlo"].curves[key][1].tolist()
            == pooled.series["montecarlo"].curves[key][1].tolist()
        )


def test_figure2_overlay_curves_monotone_in_f_at_every_n():
    # common random numbers: at each N the overlay cannot cross between f's
    result = figure2.run(f_values=(2, 4, 6), n_max=16, mc_iterations=400, seed=3)
    curves = result.series["montecarlo"].curves
    for lo, hi in ((2, 4), (4, 6)):
        ns_lo, ps_lo = curves[f"sim f={lo}"]
        ns_hi, ps_hi = curves[f"sim f={hi}"]
        shared = np.isin(ns_lo, ns_hi)
        assert (ps_lo[shared] >= ps_hi[: shared.sum()]).all()


def test_crossovers_mc_table_monotone_and_near_analytic():
    result = crossovers.run(f_values=(2, 3, 4), mc_iterations=4_000, seed=5)
    rows = result.tables["mc_crossovers"].rows
    assert [row[0] for row in rows] == [2, 3, 4]
    simulated = [row[2] for row in rows]
    assert all(a <= b for a, b in zip(simulated, simulated[1:]))
    for f, analytic, mc in rows:
        assert abs(mc - analytic) <= 6, (f, analytic, mc)


def test_crossovers_without_mc_keeps_legacy_shape():
    result = crossovers.run(f_values=(2, 3, 4))
    assert {row[0]: row[1] for row in result.tables["crossovers"].rows} == {2: 18, 3: 32, 4: 45}
    assert "mc_crossovers" not in result.tables

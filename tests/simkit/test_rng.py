"""Unit tests for the RNG registry."""

import numpy as np

from repro.simkit import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(seed=7)
    assert reg.stream("a") is reg.stream("a")


def test_different_names_independent_draws():
    reg = RngRegistry(seed=7)
    a = reg.stream("a").random(8)
    b = reg.stream("b").random(8)
    assert not np.allclose(a, b)


def test_reproducible_across_registries():
    a = RngRegistry(seed=123).stream("node0").random(16)
    b = RngRegistry(seed=123).stream("node0").random(16)
    np.testing.assert_array_equal(a, b)


def test_adding_consumer_does_not_perturb_existing():
    reg1 = RngRegistry(seed=5)
    draws1 = reg1.stream("x").random(4)

    reg2 = RngRegistry(seed=5)
    reg2.stream("brand-new-consumer").random(100)  # interleaved new consumer
    draws2 = reg2.stream("x").random(4)
    np.testing.assert_array_equal(draws1, draws2)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(8)
    b = RngRegistry(seed=2).stream("x").random(8)
    assert not np.allclose(a, b)


def test_spawn_is_deterministic_and_distinct():
    root = RngRegistry(seed=9)
    child_a1 = root.spawn("rep-1").stream("x").random(4)
    child_a2 = RngRegistry(seed=9).spawn("rep-1").stream("x").random(4)
    child_b = root.spawn("rep-2").stream("x").random(4)
    np.testing.assert_array_equal(child_a1, child_a2)
    assert not np.allclose(child_a1, child_b)


def test_contains_and_len():
    reg = RngRegistry()
    assert "x" not in reg and len(reg) == 0
    reg.stream("x")
    assert "x" in reg and len(reg) == 1
